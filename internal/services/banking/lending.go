package banking

import (
	"fmt"
	"math"
	"sync/atomic"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// LoanApplicationReq applies for a personal or business loan.
type LoanApplicationReq struct {
	Token            string
	AmountCents      int64
	TermMonths       int64
	MonthlyDebtCents int64 // existing obligations
	// Business loans only:
	AnnualRevenueCents int64
	YearsInBusiness    int64
}

// LoanApplicationResp returns the decision.
type LoanApplicationResp struct{ Decision LoanDecision }

// monthlyPayment computes the standard amortized monthly payment for
// principal at annual rate rateBps over termMonths.
func monthlyPayment(principalCents, rateBps, termMonths int64) int64 {
	if termMonths <= 0 {
		return principalCents
	}
	r := float64(rateBps) / 10000 / 12
	p := float64(principalCents)
	if r == 0 {
		return int64(math.Ceil(p / float64(termMonths)))
	}
	factor := math.Pow(1+r, float64(termMonths))
	return int64(math.Ceil(p * r * factor / (factor - 1)))
}

// underwrite applies the debt-to-income rule shared by the lending tiers:
// approve when (existing debt + new payment) stays under the cap fraction
// of monthly income.
func underwrite(monthlyIncomeCents, monthlyDebtCents, paymentCents int64, capPct int64) (bool, string) {
	if monthlyIncomeCents <= 0 {
		return false, "no verifiable income"
	}
	load := (monthlyDebtCents + paymentCents) * 100 / monthlyIncomeCents
	if load > capPct {
		return false, fmt.Sprintf("debt-to-income %d%% exceeds %d%% cap", load, capPct)
	}
	return true, ""
}

// registerPersonalLending installs the personalLending service: rate by
// term, amortized payment, 40% DTI cap against customerInfo income.
func registerPersonalLending(srv *rpc.Server, auth, customer svcutil.Caller) {
	svcutil.Handle(srv, "Apply", func(ctx *rpc.Ctx, req *LoanApplicationReq) (*LoanApplicationResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		if req.AmountCents <= 0 || req.TermMonths <= 0 || req.TermMonths > 84 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "personalLending: bad amount/term")
		}
		var cust CustomerResp
		if err := customer.Call(ctx, "Get", CustomerReq{Username: username}, &cust); err != nil {
			return nil, err
		}
		if !cust.Found {
			return nil, rpc.NotFoundf("personalLending: no customer %q", username)
		}
		rateBps := int64(799)
		if req.TermMonths > 36 {
			rateBps = 999
		}
		payment := monthlyPayment(req.AmountCents, rateBps, req.TermMonths)
		ok, reason := underwrite(cust.Customer.AnnualIncomeCents/12, req.MonthlyDebtCents, payment, 40)
		d := LoanDecision{Approved: ok, Reason: reason, AmountCents: req.AmountCents, RateBps: rateBps, TermMonths: req.TermMonths, MonthlyCents: payment}
		return &LoanApplicationResp{Decision: d}, nil
	})
}

// registerBusinessLending installs the businessLending service: revenue
// coverage plus operating-history requirements.
func registerBusinessLending(srv *rpc.Server, auth svcutil.Caller) {
	svcutil.Handle(srv, "Apply", func(ctx *rpc.Ctx, req *LoanApplicationReq) (*LoanApplicationResp, error) {
		if _, err := verifyBank(ctx, auth, req.Token); err != nil {
			return nil, err
		}
		if req.AmountCents <= 0 || req.TermMonths <= 0 || req.TermMonths > 120 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "businessLending: bad amount/term")
		}
		rateBps := int64(650)
		payment := monthlyPayment(req.AmountCents, rateBps, req.TermMonths)
		d := LoanDecision{AmountCents: req.AmountCents, RateBps: rateBps, TermMonths: req.TermMonths, MonthlyCents: payment}
		switch {
		case req.YearsInBusiness < 2:
			d.Reason = "less than two years in business"
		case payment*12 > req.AnnualRevenueCents/4:
			d.Reason = "annual debt service exceeds 25% of revenue"
		default:
			d.Approved = true
		}
		return &LoanApplicationResp{Decision: d}, nil
	})
}

// MortgageQuoteReq quotes a mortgage.
type MortgageQuoteReq struct {
	Token            string
	PriceCents       int64
	DownCents        int64
	TermMonths       int64
	MonthlyDebtCents int64
}

// MortgageQuoteResp returns the decision and the first amortization rows.
type MortgageQuoteResp struct {
	Decision LoanDecision
	// Schedule holds the first 12 months: principal and interest split.
	SchedulePrincipal []int64
	ScheduleInterest  []int64
}

// registerMortgages installs the mortgages service: LTV-priced rate,
// amortization schedule computation, and a 35% DTI cap.
func registerMortgages(srv *rpc.Server, auth, customer svcutil.Caller) {
	svcutil.Handle(srv, "Quote", func(ctx *rpc.Ctx, req *MortgageQuoteReq) (*MortgageQuoteResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		if req.PriceCents <= 0 || req.DownCents < 0 || req.DownCents >= req.PriceCents {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mortgages: bad price/down payment")
		}
		if req.TermMonths != 180 && req.TermMonths != 360 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "mortgages: term must be 180 or 360 months")
		}
		principal := req.PriceCents - req.DownCents
		ltv := principal * 100 / req.PriceCents
		rateBps := int64(580)
		if ltv > 80 {
			rateBps += 45 // PMI-equivalent pricing
		}
		if req.TermMonths == 180 {
			rateBps -= 50
		}
		payment := monthlyPayment(principal, rateBps, req.TermMonths)

		var cust CustomerResp
		if err := customer.Call(ctx, "Get", CustomerReq{Username: username}, &cust); err != nil {
			return nil, err
		}
		if !cust.Found {
			return nil, rpc.NotFoundf("mortgages: no customer %q", username)
		}
		ok, reason := underwrite(cust.Customer.AnnualIncomeCents/12, req.MonthlyDebtCents, payment, 35)

		resp := &MortgageQuoteResp{Decision: LoanDecision{
			Approved: ok, Reason: reason, AmountCents: principal,
			RateBps: rateBps, TermMonths: req.TermMonths, MonthlyCents: payment,
		}}
		// First year's amortization split.
		r := float64(rateBps) / 10000 / 12
		balance := float64(principal)
		for m := 0; m < 12 && m < int(req.TermMonths); m++ {
			interest := int64(math.Round(balance * r))
			princ := payment - interest
			resp.ScheduleInterest = append(resp.ScheduleInterest, interest)
			resp.SchedulePrincipal = append(resp.SchedulePrincipal, princ)
			balance -= float64(princ)
		}
		return resp, nil
	})
}

func verifyBank(ctx *rpc.Ctx, auth svcutil.Caller, token string) (string, error) {
	var v VerifyTokenResp
	if err := auth.Call(ctx, "Verify", VerifyTokenReq{Token: token}, &v); err != nil {
		return "", err
	}
	if !v.Valid {
		return "", rpc.Errorf(rpc.CodeUnauthorized, "invalid token")
	}
	return v.Username, nil
}

// OpenCardReq opens a credit card.
type OpenCardReq struct{ Token string }

// CardResp returns a card.
type CardResp struct {
	Card  Card
	Found bool
}

// ChargeCardReq charges a purchase to a card.
type ChargeCardReq struct {
	Token       string
	Number      string
	AmountCents int64
}

// PayCardReq pays a card balance from a deposit account.
type PayCardReq struct {
	Token       string
	Number      string
	FromAccount string
	AmountCents int64
}

// registerCreditCard installs creditCard and openCreditCard behaviour:
// limit scaled from income, charges bounded by the limit, and payments
// that move real money through transactionPosting into the bank's
// settlement account.
func registerCreditCard(srv *rpc.Server, auth, customer, posting, acl svcutil.Caller, db svcutil.DB, settlementAccount string) {
	var seq atomic.Uint64
	loadCard := func(ctx *rpc.Ctx, number string) (Card, bool, error) {
		doc, found, err := db.Get(ctx, "cards", number)
		if err != nil || !found {
			return Card{}, false, err
		}
		var c Card
		if err := codec.Unmarshal(doc.Body, &c); err != nil {
			return Card{}, false, err
		}
		return c, true, nil
	}
	storeCard := func(ctx *rpc.Ctx, c Card) error {
		body, err := codec.Marshal(c)
		if err != nil {
			return err
		}
		return db.Put(ctx, "cards", docstore.Doc{ID: c.Number, Fields: map[string]string{"owner": c.Owner}, Body: body})
	}

	svcutil.Handle(srv, "Open", func(ctx *rpc.Ctx, req *OpenCardReq) (*CardResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		var cust CustomerResp
		if err := customer.Call(ctx, "Get", CustomerReq{Username: username}, &cust); err != nil {
			return nil, err
		}
		if !cust.Found {
			return nil, rpc.NotFoundf("creditCard: no customer %q", username)
		}
		limit := cust.Customer.AnnualIncomeCents / 5
		if limit < 50000 {
			limit = 50000
		}
		c := Card{Number: fmt.Sprintf("4000-%010d", seq.Add(1)), Owner: username, LimitCents: limit}
		if err := storeCard(ctx, c); err != nil {
			return nil, err
		}
		return &CardResp{Card: c, Found: true}, nil
	})

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *ChargeCardReq) (*CardResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		c, found, err := loadCard(ctx, req.Number)
		if err != nil {
			return nil, err
		}
		if found && c.Owner != username {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "creditCard: not your card")
		}
		return &CardResp{Card: c, Found: found}, nil
	})

	svcutil.Handle(srv, "Charge", func(ctx *rpc.Ctx, req *ChargeCardReq) (*CardResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		if req.AmountCents <= 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "creditCard: non-positive charge")
		}
		c, found, err := loadCard(ctx, req.Number)
		if err != nil {
			return nil, err
		}
		if !found || c.Owner != username {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "creditCard: not your card")
		}
		if c.BalanceCents+req.AmountCents > c.LimitCents {
			return nil, rpc.Errorf(rpc.CodeConflict, "creditCard: over limit")
		}
		c.BalanceCents += req.AmountCents
		if err := storeCard(ctx, c); err != nil {
			return nil, err
		}
		return &CardResp{Card: c, Found: true}, nil
	})

	svcutil.Handle(srv, "Pay", func(ctx *rpc.Ctx, req *PayCardReq) (*CardResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		c, found, err := loadCard(ctx, req.Number)
		if err != nil {
			return nil, err
		}
		if !found || c.Owner != username {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "creditCard: not your card")
		}
		if req.AmountCents <= 0 || req.AmountCents > c.BalanceCents {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "creditCard: bad payment amount")
		}
		var aclResp ACLCheckResp
		if err := acl.Call(ctx, "Check", ACLCheckReq{Username: username, AccountID: req.FromAccount, Action: "debit"}, &aclResp); err != nil {
			return nil, err
		}
		if !aclResp.Allowed {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "creditCard: %s", aclResp.Reason)
		}
		if err := posting.Call(ctx, "Transfer", TransferReq{
			From: req.FromAccount, To: settlementAccount,
			AmountCents: req.AmountCents, Description: "card payment " + c.Number,
		}, nil); err != nil {
			return nil, err
		}
		c.BalanceCents -= req.AmountCents
		if err := storeCard(ctx, c); err != nil {
			return nil, err
		}
		return &CardResp{Card: c, Found: true}, nil
	})
}
