package banking

import (
	"fmt"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// PaymentReq is an authenticated transfer between accounts.
type PaymentReq struct {
	Token       string
	From, To    string
	AmountCents int64
	Description string
}

// PaymentResp returns the posted transaction.
type PaymentResp struct{ TxnID string }

// paymentsDeps are the tiers the payments orchestrator fans out to.
type paymentsDeps struct {
	auth     svcutil.Caller
	acl      svcutil.Caller
	posting  svcutil.Caller
	activity svcutil.Caller
}

// registerPayments installs the payments orchestrator: authentication →
// ACL → transactionPosting → customerActivity, the critical path Section 7
// identifies as dominating Banking's end-to-end latency.
func registerPayments(srv *rpc.Server, deps paymentsDeps) {
	svcutil.Handle(srv, "Pay", func(ctx *rpc.Ctx, req *PaymentReq) (*PaymentResp, error) {
		var auth VerifyTokenResp
		if err := deps.auth.Call(ctx, "Verify", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "payments: invalid token")
		}
		var acl ACLCheckResp
		if err := deps.acl.Call(ctx, "Check", ACLCheckReq{Username: auth.Username, AccountID: req.From, Action: "debit"}, &acl); err != nil {
			return nil, err
		}
		if !acl.Allowed {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "payments: %s", acl.Reason)
		}
		var posted TransferResp
		if err := deps.posting.Call(ctx, "Transfer", TransferReq{
			From: req.From, To: req.To, AmountCents: req.AmountCents, Description: req.Description,
		}, &posted); err != nil {
			return nil, err
		}
		if err := deps.activity.Call(ctx, "Log", LogActivityReq{
			Username: auth.Username, Kind: "payment",
			Detail: fmt.Sprintf("%s -> %s: %d (%s)", req.From, req.To, req.AmountCents, posted.TxnID),
		}, nil); err != nil {
			return nil, err
		}
		return &PaymentResp{TxnID: posted.TxnID}, nil
	})
}

// LogActivityReq appends an activity record.
type LogActivityReq struct {
	Username string
	Kind     string
	Detail   string
}

// ActivityListReq lists a customer's activity, newest first.
type ActivityListReq struct {
	Username string
	Limit    int64
}

// ActivityListResp returns activity records.
type ActivityListResp struct{ Activities []Activity }

// registerCustomerActivity installs the customerActivity log service.
func registerCustomerActivity(srv *rpc.Server, db svcutil.DB, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	var seq atomic.Int64
	svcutil.Handle(srv, "Log", func(ctx *rpc.Ctx, req *LogActivityReq) (*struct{}, error) {
		if req.Username == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "customerActivity: username required")
		}
		a := Activity{Username: req.Username, Kind: req.Kind, Detail: req.Detail, At: now().UnixNano()}
		body, err := codec.Marshal(a)
		if err != nil {
			return nil, err
		}
		doc := docstore.Doc{
			ID:     fmt.Sprintf("act-%d-%d", a.At, seq.Add(1)),
			Fields: map[string]string{"user": a.Username},
			Nums:   map[string]int64{"ts": a.At},
			Body:   body,
		}
		return nil, db.Put(ctx, "activity", doc)
	})
	svcutil.Handle(srv, "List", func(ctx *rpc.Ctx, req *ActivityListReq) (*ActivityListResp, error) {
		docs, err := db.Find(ctx, "activity", "user", req.Username, 0)
		if err != nil {
			return nil, err
		}
		out := make([]Activity, 0, len(docs))
		for _, d := range docs {
			var a Activity
			if codec.Unmarshal(d.Body, &a) == nil {
				out = append(out, a)
			}
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if req.Limit > 0 && int64(len(out)) > req.Limit {
			out = out[:req.Limit]
		}
		return &ActivityListResp{Activities: out}, nil
	})
}
