package banking

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// bootShardedBank boots Banking with every docstore/kv tier running
// shards×replicas instances behind consistent-hash routing.
func bootShardedBank(t *testing.T, app *core.App, shards, replicas int) *Banking {
	t.Helper()
	b, err := New(app, Config{Shards: shards, ShardReplicas: replicas})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return b
}

// TestShardedEndToEnd runs the payment flow — onboard, transfer, ledger —
// on a 3-shard×2-replica storage layout.
func TestShardedEndToEnd(t *testing.T) {
	app := core.NewApp("bank-sharded", core.Options{})
	t.Cleanup(func() { app.Close() })
	b := bootShardedBank(t, app, 3, 2)
	ctx := context.Background()

	instances := b.App.Registry.Instances("bank.db-accounts")
	if len(instances) != 6 {
		t.Fatalf("db-accounts has %d instances, want 6", len(instances))
	}
	labels := make(map[string]int)
	for _, inst := range instances {
		labels[inst.Meta[shard.MetaShard]]++
	}
	if len(labels) != 3 {
		t.Fatalf("db-accounts shard labels = %v, want 3 distinct", labels)
	}

	tokenA, acctA, err := b.Onboard("alice", 9_000_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	_, acctB, err := b.Onboard("bob", 7_000_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	var paid PaymentResp
	if err := b.Payments.Call(ctx, "Pay", PaymentReq{
		Token: tokenA, From: acctA, To: acctB, AmountCents: 25_000, Description: "rent",
	}, &paid); err != nil {
		t.Fatal(err)
	}
	var acct AccountResp
	if err := b.Posting.Call(ctx, "Get", AccountReq{ID: acctB}, &acct); err != nil {
		t.Fatal(err)
	}
	if acct.Account.BalanceCents != 75_000 {
		t.Fatalf("bob balance = %d, want 75000", acct.Account.BalanceCents)
	}
	var ledger LedgerResp
	if err := b.Posting.Call(ctx, "Ledger", LedgerReq{AccountID: acctA}, &ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger.Entries) != 1 || ledger.Entries[0].TxnID != paid.TxnID {
		t.Fatalf("ledger = %+v, want one entry for %s", ledger.Entries, paid.TxnID)
	}
}

// TestShardedSurvivesReplicaFault errors the first replica of each
// db-customers shard: with two replicas per shard, profile reads fall over
// to the healthy sibling.
func TestShardedSurvivesReplicaFault(t *testing.T) {
	inj := fault.NewInjector(23)
	app := core.NewApp("bank-sharded-fault", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	b := bootShardedBank(t, app, 2, 2)
	ctx := context.Background()

	if _, _, err := b.Onboard("carol", 5_000_000, 10_000); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]bool)
	for _, inst := range b.App.Registry.Instances("bank.db-customers") {
		label := inst.Meta[shard.MetaShard]
		if seen[label] {
			continue
		}
		seen[label] = true
		defer inj.Add(fault.Rule{To: "bank.db-customers", Addr: inst.Addr, ErrCode: rpc.CodeUnavailable})()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var resp CustomerResp
		err := b.Customer.Call(ctx, "Get", CustomerReq{Username: "carol"}, &resp)
		if err == nil && resp.Found && resp.Customer.Username == "carol" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("customer read under replica fault: err=%v resp=%+v", err, resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSummaryDegradesWithoutWealth kills the wealthMgmt tier: with
// degradation on GET /summary serves accounts and balance with the
// portfolio omitted and Degraded set; with it off the same fault fails the
// request.
func TestSummaryDegradesWithoutWealth(t *testing.T) {
	boot := func(t *testing.T, disable bool) (*Banking, *fault.Injector, string) {
		inj := fault.NewInjector(29)
		app := core.NewApp("bank-degrade", core.Options{Network: inj.Wrap(rpc.NewMem())})
		t.Cleanup(func() { app.Close() })
		b, err := New(app, Config{DisableDegradation: disable})
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		token, _, err := b.Onboard("dora", 6_000_000, 42_000)
		if err != nil {
			t.Fatal(err)
		}
		return b, inj, token
	}

	t.Run("degraded", func(t *testing.T) {
		b, inj, token := boot(t, false)
		defer inj.Add(fault.Rule{To: "bank.wealthMgmt", ErrCode: rpc.CodeUnavailable})()
		var sum SummaryBody
		if err := b.Frontend.Do(context.Background(), "GET", "/summary?token="+token, nil, &sum); err != nil {
			t.Fatalf("degraded summary should still serve: %v", err)
		}
		if !sum.Degraded {
			t.Fatalf("summary = %+v, want Degraded", sum)
		}
		if len(sum.Accounts) != 1 || sum.BalanceCents != 42_000 {
			t.Fatalf("critical fields lost under degradation: %+v", sum)
		}
		if sum.WealthCents != 0 || len(sum.Holdings) != 0 {
			t.Fatalf("degraded summary should omit portfolio: %+v", sum)
		}
	})
	t.Run("failhard", func(t *testing.T) {
		b, inj, token := boot(t, true)
		defer inj.Add(fault.Rule{To: "bank.wealthMgmt", ErrCode: rpc.CodeUnavailable})()
		if err := b.Frontend.Do(context.Background(), "GET", "/summary?token="+token, nil, nil); err == nil {
			t.Fatal("fail-hard mode served summary despite wealth fault")
		}
	})
}
