// Package banking implements the suite's secure Banking System (Figure 7
// of the paper): authentication and ACL checks in front of payments,
// account management (deposit and investment accounts), credit cards,
// personal and business lending, mortgages, and wealth management, over
// memcached/MongoDB-equivalent tiers plus a relational BankInfoDB holding
// branch and representative data. The payments path preserves a
// double-entry invariant: the sum of all account balances never changes
// under internal transfers.
package banking

// Customer is a bank customer profile.
type Customer struct {
	Username          string
	FullName          string
	AnnualIncomeCents int64
	Segment           string // "retail", "premium", "business"
}

// Account is one deposit or investment account.
type Account struct {
	ID           string
	Owner        string
	Kind         string // "deposit" | "investment"
	BalanceCents int64
}

// Account kinds.
const (
	KindDeposit    = "deposit"
	KindInvestment = "investment"
)

// LedgerEntry is one posted leg of a transfer.
type LedgerEntry struct {
	TxnID       string
	AccountID   string
	DeltaCents  int64
	PostedAt    int64
	Description string
}

// Activity is a customer activity-log record.
type Activity struct {
	Username string
	Kind     string
	Detail   string
	At       int64
}

// Card is a credit card account.
type Card struct {
	Number       string
	Owner        string
	LimitCents   int64
	BalanceCents int64 // amount owed
}

// LoanDecision is the outcome of a lending application.
type LoanDecision struct {
	Approved     bool
	Reason       string
	AmountCents  int64
	RateBps      int64 // annual rate in basis points
	TermMonths   int64
	MonthlyCents int64
}

// Offer is a marketing banner.
type Offer struct {
	ID      string
	Segment string
	Text    string
}

// Branch is a BankInfoDB row projected into a typed record.
type Branch struct {
	ID    string
	City  string
	Rep   string
	Phone string
}
