package banking

import (
	"sort"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/sqlstore"
	"dsb/internal/svcutil"
)

// Holding is one position in a wealth-management portfolio.
type Holding struct {
	Symbol string
	Shares int64
}

// PortfolioReq reads or mutates a portfolio.
type PortfolioReq struct {
	Token string
	Buy   []Holding // optional positions to add
}

// PortfolioResp returns positions and their marked value.
type PortfolioResp struct {
	Holdings   []Holding
	ValueCents int64
}

// priceTable is the deterministic mark-to-market source (cents/share).
var priceTable = map[string]int64{
	"VTI": 26150, "BND": 7230, "VXUS": 6180, "QQQ": 48920, "GLD": 21540,
}

// registerWealthMgmt installs the wealthMgmt service over its own store
// (wealthMgmtDB in Figure 7).
func registerWealthMgmt(srv *rpc.Server, auth svcutil.Caller, db svcutil.DB) {
	svcutil.Handle(srv, "Portfolio", func(ctx *rpc.Ctx, req *PortfolioReq) (*PortfolioResp, error) {
		username, err := verifyBank(ctx, auth, req.Token)
		if err != nil {
			return nil, err
		}
		doc, found, err := db.Get(ctx, "portfolios", username)
		if err != nil {
			return nil, err
		}
		var holdings []Holding
		if found {
			if err := codec.Unmarshal(doc.Body, &holdings); err != nil {
				return nil, err
			}
		}
		for _, buy := range req.Buy {
			if buy.Shares <= 0 {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "wealthMgmt: non-positive share count")
			}
			if _, ok := priceTable[buy.Symbol]; !ok {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "wealthMgmt: unknown symbol %q", buy.Symbol)
			}
			merged := false
			for i := range holdings {
				if holdings[i].Symbol == buy.Symbol {
					holdings[i].Shares += buy.Shares
					merged = true
					break
				}
			}
			if !merged {
				holdings = append(holdings, buy)
			}
		}
		if len(req.Buy) > 0 {
			body, err := codec.Marshal(holdings)
			if err != nil {
				return nil, err
			}
			if err := db.Put(ctx, "portfolios", docstore.Doc{ID: username, Body: body}); err != nil {
				return nil, err
			}
		}
		var value int64
		for _, h := range holdings {
			value += priceTable[h.Symbol] * h.Shares
		}
		sort.Slice(holdings, func(i, j int) bool { return holdings[i].Symbol < holdings[j].Symbol })
		return &PortfolioResp{Holdings: holdings, ValueCents: value}, nil
	})
}

// OfferReq asks for the banner for a customer segment.
type OfferReq struct{ Segment string }

// OfferResp returns the chosen offer.
type OfferResp struct {
	Offer Offer
	Found bool
}

// registerOfferBanners installs the offerBanners service over OfferDB.
func registerOfferBanners(srv *rpc.Server, offers []Offer) {
	if offers == nil {
		offers = []Offer{
			{ID: "of-1", Segment: "retail", Text: "0.5% APY bonus on new savings"},
			{ID: "of-2", Segment: "premium", Text: "Fee-free wealth management for a year"},
			{ID: "of-3", Segment: "business", Text: "Business line of credit at prime"},
		}
	}
	bySegment := make(map[string]Offer, len(offers))
	for _, o := range offers {
		bySegment[o.Segment] = o
	}
	svcutil.Handle(srv, "For", func(ctx *rpc.Ctx, req *OfferReq) (*OfferResp, error) {
		o, ok := bySegment[req.Segment]
		return &OfferResp{Offer: o, Found: ok}, nil
	})
}

// BranchReq looks up branches by city.
type BranchReq struct{ City string }

// BranchResp returns matching branches.
type BranchResp struct{ Branches []Branch }

// newBankInfoDB creates the relational BankInfoDB with branch data.
func newBankInfoDB() (*sqlstore.DB, error) {
	db := sqlstore.NewDB()
	if err := db.CreateTable(sqlstore.Schema{
		Name:       "branches",
		PrimaryKey: "id",
		Columns:    []string{"id", "city", "rep", "phone"},
		Indexed:    []string{"city"},
	}); err != nil {
		return nil, err
	}
	seed := []sqlstore.Row{
		{"id": "br-1", "city": "ithaca", "rep": "M. Keynes", "phone": "555-0101"},
		{"id": "br-2", "city": "ithaca", "rep": "J. Robinson", "phone": "555-0102"},
		{"id": "br-3", "city": "nyc", "rep": "A. Smith", "phone": "555-0201"},
	}
	for _, r := range seed {
		if err := db.Insert("branches", r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// registerBankInfo installs the contact/bank-information service over
// BankInfoDB.
func registerBankInfo(srv *rpc.Server, db *sqlstore.DB) {
	svcutil.Handle(srv, "Branches", func(ctx *rpc.Ctx, req *BranchReq) (*BranchResp, error) {
		rows, err := db.Select("branches", "city", req.City, 0)
		if err != nil {
			return nil, err
		}
		out := make([]Branch, 0, len(rows))
		for _, r := range rows {
			out = append(out, Branch{ID: r["id"], City: r["city"], Rep: r["rep"], Phone: r["phone"]})
		}
		return &BranchResp{Branches: out}, nil
	})
}
