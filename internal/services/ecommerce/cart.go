package ecommerce

import (
	"fmt"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// CartAddReq adds quantity of an item to a user's cart.
type CartAddReq struct {
	Username string
	ItemID   string
	Quantity int64
}

// CartReq identifies a user's cart.
type CartReq struct{ Username string }

// CartResp returns the cart lines.
type CartResp struct{ Lines []CartLine }

// registerCart installs the cart service (Java tier in Figure 6): a
// per-user line list in its document store.
func registerCart(srv *rpc.Server, db svcutil.DB) {
	load := func(ctx *rpc.Ctx, user string) ([]CartLine, error) {
		doc, found, err := db.Get(ctx, "carts", user)
		if err != nil || !found {
			return nil, err
		}
		var lines []CartLine
		if err := codec.Unmarshal(doc.Body, &lines); err != nil {
			return nil, fmt.Errorf("cart: corrupt cart %s: %w", user, err)
		}
		return lines, nil
	}
	store := func(ctx *rpc.Ctx, user string, lines []CartLine) error {
		body, err := codec.Marshal(lines)
		if err != nil {
			return err
		}
		return db.Put(ctx, "carts", docstore.Doc{ID: user, Body: body})
	}

	svcutil.Handle(srv, "Add", func(ctx *rpc.Ctx, req *CartAddReq) (*CartResp, error) {
		if req.Username == "" || req.ItemID == "" || req.Quantity <= 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "cart: invalid add")
		}
		lines, err := load(ctx, req.Username)
		if err != nil {
			return nil, err
		}
		merged := false
		for i := range lines {
			if lines[i].ItemID == req.ItemID {
				lines[i].Quantity += req.Quantity
				merged = true
				break
			}
		}
		if !merged {
			lines = append(lines, CartLine{ItemID: req.ItemID, Quantity: req.Quantity})
		}
		if err := store(ctx, req.Username, lines); err != nil {
			return nil, err
		}
		return &CartResp{Lines: lines}, nil
	})

	svcutil.Handle(srv, "Remove", func(ctx *rpc.Ctx, req *CartAddReq) (*CartResp, error) {
		lines, err := load(ctx, req.Username)
		if err != nil {
			return nil, err
		}
		for i := range lines {
			if lines[i].ItemID == req.ItemID {
				lines[i].Quantity -= req.Quantity
				if lines[i].Quantity <= 0 {
					lines = append(lines[:i], lines[i+1:]...)
				}
				break
			}
		}
		if err := store(ctx, req.Username, lines); err != nil {
			return nil, err
		}
		return &CartResp{Lines: lines}, nil
	})

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *CartReq) (*CartResp, error) {
		lines, err := load(ctx, req.Username)
		if err != nil {
			return nil, err
		}
		return &CartResp{Lines: lines}, nil
	})

	svcutil.Handle(srv, "Clear", func(ctx *rpc.Ctx, req *CartReq) (*struct{}, error) {
		return nil, store(ctx, req.Username, nil)
	})
}

// WishlistAddReq adds an item to a user's wishlist.
type WishlistAddReq struct {
	Username string
	ItemID   string
}

// WishlistReq identifies a user's wishlist.
type WishlistReq struct{ Username string }

// WishlistResp returns wishlist item IDs.
type WishlistResp struct{ ItemIDs []string }

// registerWishlist installs the wishlist service (Java tier; the paper
// calls out its near-zero i-cache footprint as typical of trivially simple
// microservices).
func registerWishlist(srv *rpc.Server, db svcutil.DB) {
	svcutil.Handle(srv, "Add", func(ctx *rpc.Ctx, req *WishlistAddReq) (*struct{}, error) {
		if req.Username == "" || req.ItemID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "wishlist: invalid add")
		}
		doc, _, err := db.Get(ctx, "wishlists", req.Username)
		if err != nil {
			return nil, err
		}
		var ids []string
		if doc.Body != nil {
			codec.Unmarshal(doc.Body, &ids) //nolint:errcheck
		}
		for _, id := range ids {
			if id == req.ItemID {
				return nil, nil
			}
		}
		body, err := codec.Marshal(append(ids, req.ItemID))
		if err != nil {
			return nil, err
		}
		return nil, db.Put(ctx, "wishlists", docstore.Doc{ID: req.Username, Body: body})
	})
	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *WishlistReq) (*WishlistResp, error) {
		doc, found, err := db.Get(ctx, "wishlists", req.Username)
		if err != nil || !found {
			return &WishlistResp{}, err
		}
		var ids []string
		if err := codec.Unmarshal(doc.Body, &ids); err != nil {
			return nil, err
		}
		return &WishlistResp{ItemIDs: ids}, nil
	})
}
