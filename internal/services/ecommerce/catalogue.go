package ecommerce

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// AddItemReq inserts or replaces a catalogue item.
type AddItemReq struct{ Item Item }

// GetItemReq fetches an item.
type GetItemReq struct{ ID string }

// GetItemResp returns the item.
type GetItemResp struct {
	Item  Item
	Found bool
}

// ListItemsReq pages the catalogue by tag ("" = all).
type ListItemsReq struct {
	Tag   string
	Limit int64
}

// ItemsResp returns items.
type ItemsResp struct{ Items []Item }

// AdjustStockReq changes stock (negative = sale). Fails if it would go
// below zero.
type AdjustStockReq struct {
	ItemID string
	Delta  int64
}

const itemCacheTTL = 5 * time.Minute

// registerCatalogue installs the catalogue service (the Go microservice
// mining memcached and MongoDB in Figure 6). Item lookups — the hottest
// read in the app, hit by browse, search, discounts, and order placement —
// run through the shared cache-aside ReadPath: cached under "item:<id>"
// (invalidated by Add and AdjustStock), with concurrent misses on one item
// coalesced into a single backing Get.
func registerCatalogue(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, noCoalesce bool) {
	svcutil.Handle(srv, "Add", func(ctx *rpc.Ctx, req *AddItemReq) (*struct{}, error) {
		it := req.Item
		if it.ID == "" || it.Name == "" || it.PriceCents < 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "catalogue: invalid item")
		}
		body, err := codec.Marshal(it)
		if err != nil {
			return nil, err
		}
		fields := map[string]string{"all": "1"}
		for _, tag := range it.Tags {
			fields["tag-"+tag] = "1"
		}
		if err := db.Put(ctx, "items", docstore.Doc{ID: it.ID, Fields: fields, Body: body}); err != nil {
			return nil, err
		}
		mc.Delete(ctx, "item:"+it.ID) //nolint:errcheck
		return nil, nil
	})

	itemPath := &svcutil.ReadPath[Item]{
		MC:         mc,
		TTL:        itemCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) (Item, error) {
			var it Item
			err := codec.Unmarshal(b, &it)
			return it, err
		},
		Fetch: func(ctx context.Context, key string) (Item, []byte, bool, error) {
			id := strings.TrimPrefix(key, "item:")
			doc, found, err := db.Get(ctx, "items", id)
			if err != nil || !found {
				return Item{}, nil, false, err
			}
			var it Item
			if err := codec.Unmarshal(doc.Body, &it); err != nil {
				return Item{}, nil, false, fmt.Errorf("catalogue: corrupt item %s: %w", id, err)
			}
			return it, doc.Body, true, nil
		},
	}

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *GetItemReq) (*GetItemResp, error) {
		it, found, err := itemPath.Get(ctx, "item:"+req.ID)
		if err != nil {
			return nil, err
		}
		return &GetItemResp{Item: it, Found: found}, nil
	})

	svcutil.Handle(srv, "List", func(ctx *rpc.Ctx, req *ListItemsReq) (*ItemsResp, error) {
		field := "all"
		if req.Tag != "" {
			field = "tag-" + req.Tag
		}
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 50
		}
		docs, err := db.Find(ctx, "items", field, "1", limit)
		if err != nil {
			return nil, err
		}
		out := make([]Item, 0, len(docs))
		for _, d := range docs {
			var it Item
			if codec.Unmarshal(d.Body, &it) == nil {
				out = append(out, it)
			}
		}
		return &ItemsResp{Items: out}, nil
	})

	svcutil.Handle(srv, "AdjustStock", func(ctx *rpc.Ctx, req *AdjustStockReq) (*GetItemResp, error) {
		doc, found, err := db.Get(ctx, "items", req.ItemID)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("catalogue: no item %q", req.ItemID)
		}
		var it Item
		if err := codec.Unmarshal(doc.Body, &it); err != nil {
			return nil, err
		}
		if it.Stock+req.Delta < 0 {
			return nil, rpc.Errorf(rpc.CodeConflict, "catalogue: %s out of stock", req.ItemID)
		}
		it.Stock += req.Delta
		body, err := codec.Marshal(it)
		if err != nil {
			return nil, err
		}
		doc.Body = body
		if err := db.Put(ctx, "items", doc); err != nil {
			return nil, err
		}
		mc.Delete(ctx, "item:"+req.ItemID) //nolint:errcheck
		return &GetItemResp{Item: it, Found: true}, nil
	})
}

// SearchReq queries catalogue items by name/tag terms.
type SearchReq struct {
	Query string
	Limit int64
}

// registerSearch installs the e-commerce search tier: substring and token
// match over name and tags, scanning the catalogue service (small
// inventories, as in Sockshop).
func registerSearch(srv *rpc.Server, catalogue svcutil.Caller) {
	svcutil.Handle(srv, "Query", func(ctx *rpc.Ctx, req *SearchReq) (*ItemsResp, error) {
		var all ItemsResp
		if err := catalogue.Call(ctx, "List", ListItemsReq{Limit: 1000}, &all); err != nil {
			return nil, err
		}
		q := strings.ToLower(strings.TrimSpace(req.Query))
		if q == "" {
			return &ItemsResp{}, nil
		}
		terms := strings.Fields(q)
		type scored struct {
			item  Item
			score int
		}
		var hits []scored
		for _, it := range all.Items {
			name := strings.ToLower(it.Name)
			score := 0
			for _, term := range terms {
				if strings.Contains(name, term) {
					score += 2
				}
				for _, tag := range it.Tags {
					if strings.ToLower(tag) == term {
						score += 3
					}
				}
			}
			if score > 0 {
				hits = append(hits, scored{it, score})
			}
		}
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].score != hits[j].score {
				return hits[i].score > hits[j].score
			}
			return hits[i].item.ID < hits[j].item.ID
		})
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 10
		}
		if len(hits) > limit {
			hits = hits[:limit]
		}
		out := make([]Item, len(hits))
		for i, h := range hits {
			out[i] = h.item
		}
		return &ItemsResp{Items: out}, nil
	})
}

// DiscountReq asks the discount for a set of lines.
type DiscountReq struct{ Lines []CartLine }

// DiscountResp returns the discount in cents.
type DiscountResp struct{ DiscountCents int64 }

// discountRule is a per-tag percentage discount.
type discountRule struct {
	Tag string
	Pct int64
}

// registerDiscounts installs the discounts service: per-tag percentage
// promotions plus a 5% bulk discount on orders of 10+ units.
func registerDiscounts(srv *rpc.Server, catalogue svcutil.Caller, rules []discountRule) {
	if rules == nil {
		rules = []discountRule{{Tag: "sale", Pct: 20}, {Tag: "clearance", Pct: 50}}
	}
	pctFor := func(it Item) int64 {
		var best int64
		for _, r := range rules {
			for _, tag := range it.Tags {
				if tag == r.Tag && r.Pct > best {
					best = r.Pct
				}
			}
		}
		return best
	}
	svcutil.Handle(srv, "Quote", func(ctx *rpc.Ctx, req *DiscountReq) (*DiscountResp, error) {
		var discount, units int64
		for _, line := range req.Lines {
			var item GetItemResp
			if err := catalogue.Call(ctx, "Get", GetItemReq{ID: line.ItemID}, &item); err != nil {
				return nil, err
			}
			if !item.Found {
				continue
			}
			discount += item.Item.PriceCents * line.Quantity * pctFor(item.Item) / 100
			units += line.Quantity
		}
		if units >= 10 {
			var subtotal int64
			for _, line := range req.Lines {
				var item GetItemResp
				if err := catalogue.Call(ctx, "Get", GetItemReq{ID: line.ItemID}, &item); err != nil {
					return nil, err
				}
				subtotal += item.Item.PriceCents * line.Quantity
			}
			discount += subtotal * 5 / 100
		}
		return &DiscountResp{DiscountCents: discount}, nil
	})
}
