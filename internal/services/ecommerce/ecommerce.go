package ecommerce

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/mq"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

var errUnauthorized = rpc.Errorf(rpc.CodeUnauthorized, "invalid token")

func errNotFound(what string) error { return rpc.NotFoundf("no such resource %q", what) }

// Config sizes the deployment.
type Config struct {
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire (between
	// tracing and the app's resilience stack): fault injection and
	// per-experiment instrumentation hook in here.
	Middleware []transport.Middleware
	// Replicas scales stateless logic stages out at boot, keyed by stage
	// name ("orders", "catalogue", ...). Stages holding per-instance state
	// (transactionID's sequence, queueMaster's consumer) and the storage
	// tiers ignore it. Stages default to one replica.
	Replicas map[string]int
}

// replicable names the stages safe to run multi-instance: all their state
// lives in the db/mc tiers downstream.
var replicable = map[string]bool{
	"catalogue": true, "accountInfo": true, "search": true, "discounts": true,
	"cart": true, "wishlist": true, "shipping": true, "authorization": true,
	"payment": true, "invoicing": true, "orders": true, "recommender": true,
}

// Ecommerce is a running deployment.
type Ecommerce struct {
	App      *core.App
	Frontend *rest.Client

	Catalogue svcutil.Caller
	Orders    svcutil.Caller
	User      svcutil.Caller
	Cart      svcutil.Caller

	qm *queueMaster
}

// New boots the E-commerce application.
func New(app *core.App, cfg Config) (*Ecommerce, error) {
	for _, name := range []string{"db-catalogue", "db-carts", "db-orders", "db-accounts", "db-invoices", "db-wishlists"} {
		store := docstore.NewStore()
		if _, err := app.StartRPC("ecom."+name, func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"mc-catalogue", "mc-accounts"} {
		cache := kv.New(0)
		if _, err := app.StartRPC("ecom."+name, func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return nil, err
		}
	}

	cl := func(caller, target string) (svcutil.Caller, error) {
		return app.RPC("ecom."+caller, "ecom."+target, cfg.Middleware...)
	}
	must := func(c svcutil.Caller, err error) svcutil.Caller {
		if err != nil {
			panic(err)
		}
		return c
	}

	broker := mq.NewBroker()
	ec := &Ecommerce{App: app}

	type stage struct {
		name     string
		register func(*rpc.Server)
	}
	stages := []stage{
		{"catalogue", func(s *rpc.Server) {
			registerCatalogue(s, svcutil.DB{C: must(cl("catalogue", "db-catalogue"))}, svcutil.KV{C: must(cl("catalogue", "mc-catalogue"))})
		}},
		{"accountInfo", func(s *rpc.Server) {
			registerAccountInfo(s, svcutil.DB{C: must(cl("accountInfo", "db-accounts"))}, svcutil.KV{C: must(cl("accountInfo", "mc-accounts"))})
		}},
		{"search", func(s *rpc.Server) { registerSearch(s, must(cl("search", "catalogue"))) }},
		{"discounts", func(s *rpc.Server) { registerDiscounts(s, must(cl("discounts", "catalogue")), nil) }},
		{"cart", func(s *rpc.Server) {
			registerCart(s, svcutil.DB{C: must(cl("cart", "db-carts"))})
		}},
		{"wishlist", func(s *rpc.Server) {
			registerWishlist(s, svcutil.DB{C: must(cl("wishlist", "db-wishlists"))})
		}},
		{"shipping", registerShipping},
		{"authorization", func(s *rpc.Server) {
			registerAuthorization(s, must(cl("authorization", "accountInfo")))
		}},
		{"payment", func(s *rpc.Server) {
			registerPayment(s, must(cl("payment", "authorization")), must(cl("payment", "accountInfo")))
		}},
		{"transactionID", func(s *rpc.Server) { registerTransactionID(s, cfg.Clock) }},
		{"invoicing", func(s *rpc.Server) {
			registerInvoicing(s, svcutil.DB{C: must(cl("invoicing", "db-invoices"))}, cfg.Clock)
		}},
		{"queueMaster", func(s *rpc.Server) {
			ec.qm = registerQueueMaster(s, broker, svcutil.DB{C: must(cl("queueMaster", "db-orders"))}, must(cl("queueMaster", "catalogue")))
		}},
		{"orders", func(s *rpc.Server) {
			registerOrders(s, ordersDeps{
				user:        must(cl("orders", "accountInfo")),
				cart:        must(cl("orders", "cart")),
				catalogue:   must(cl("orders", "catalogue")),
				shipping:    must(cl("orders", "shipping")),
				discounts:   must(cl("orders", "discounts")),
				payment:     must(cl("orders", "payment")),
				transaction: must(cl("orders", "transactionID")),
				invoicing:   must(cl("orders", "invoicing")),
				queueMaster: must(cl("orders", "queueMaster")),
				db:          svcutil.DB{C: must(cl("orders", "db-orders"))},
				now:         cfg.Clock,
			})
		}},
		{"recommender", func(s *rpc.Server) {
			registerRecommender(s, must(cl("recommender", "orders")), must(cl("recommender", "catalogue")))
		}},
	}
	for _, st := range stages {
		n := 1
		if replicable[st.name] {
			if r := cfg.Replicas[st.name]; r > n {
				n = r
			}
		}
		register := st.register
		if err := svcutil.StartReplicas(app, "ecom."+st.name, n, func(int) func(*rpc.Server) { return register }); err != nil {
			return nil, fmt.Errorf("ecommerce: start %s: %w", st.name, err)
		}
	}

	if _, err := app.StartREST("ecom.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			user:        must(cl("frontend", "accountInfo")),
			catalogue:   must(cl("frontend", "catalogue")),
			search:      must(cl("frontend", "search")),
			cart:        must(cl("frontend", "cart")),
			wishlist:    must(cl("frontend", "wishlist")),
			orders:      must(cl("frontend", "orders")),
			recommender: must(cl("frontend", "recommender")),
			discounts:   must(cl("frontend", "discounts")),
			shipping:    must(cl("frontend", "shipping")),
		})
	}); err != nil {
		return nil, err
	}

	var err error
	if ec.Frontend, err = app.REST("client", "ecom.frontend"); err != nil {
		return nil, err
	}
	if ec.Catalogue, err = app.RPC("client", "ecom.catalogue"); err != nil {
		return nil, err
	}
	if ec.Orders, err = app.RPC("client", "ecom.orders"); err != nil {
		return nil, err
	}
	if ec.User, err = app.RPC("client", "ecom.accountInfo"); err != nil {
		return nil, err
	}
	if ec.Cart, err = app.RPC("client", "ecom.cart"); err != nil {
		return nil, err
	}
	return ec, nil
}

// SeedItems loads the inventory.
func (ec *Ecommerce) SeedItems(items []Item) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, it := range items {
		if err := ec.Catalogue.Call(ctx, "Add", AddItemReq{Item: it}, nil); err != nil {
			return err
		}
	}
	return nil
}

// WaitForOrder polls until the order leaves the queued state or the
// timeout elapses, returning the final order.
func (ec *Ecommerce) WaitForOrder(id string, timeout time.Duration) (Order, error) {
	deadline := time.Now().Add(timeout)
	ctx := context.Background()
	for {
		var resp GetOrderResp
		if err := ec.Orders.Call(ctx, "Get", GetOrderReq{ID: id}, &resp); err != nil {
			return Order{}, err
		}
		if resp.Found && resp.Order.Status != StatusQueued {
			return resp.Order, nil
		}
		if time.Now().After(deadline) {
			return resp.Order, fmt.Errorf("ecommerce: order %s still %s after %v", id, resp.Order.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the queueMaster consumer; call before closing the app.
func (ec *Ecommerce) Close() {
	if ec.qm != nil {
		ec.qm.Close()
	}
}
