package ecommerce

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/mq"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

var errUnauthorized = rpc.Errorf(rpc.CodeUnauthorized, "invalid token")

func errNotFound(what string) error { return rpc.NotFoundf("no such resource %q", what) }

// Config sizes the deployment.
type Config struct {
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire (between
	// tracing and the app's resilience stack): fault injection and
	// per-experiment instrumentation hook in here.
	Middleware []transport.Middleware
	// Replicas scales stateless logic stages out at boot, keyed by stage
	// name ("orders", "catalogue", ...). Stages holding per-instance state
	// (transactionID's sequence, queueMaster's consumer) and the storage
	// tiers ignore it. Stages default to one replica.
	Replicas map[string]int
	// Shards partitions every db/mc storage tier into this many
	// consistent-hash shards (default 1 = single-instance layout); with
	// Shards > 1 or ShardReplicas > 1 the tiers boot through
	// svcutil.StartShardReplicas and services reach them via shard routers.
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	ShardReplicas int
	// CacheBytes bounds each cache tier (0 = unbounded, the historical
	// layout).
	CacheBytes int64
	// DisableDegradation makes GET /recommend fail hard when the
	// recommender tier is unreachable instead of serving an empty, Degraded
	// recommendation list.
	DisableDegradation bool
	// DisableCoalescing turns off miss coalescing on the catalogue item
	// read path.
	DisableCoalescing bool
	// OrderWorkers sizes the queueMaster commit pool (default 1, the
	// paper's serialized layout). Workers are members of one broker
	// consumer group, so raising it parallelizes commits without
	// double-delivering orders.
	OrderWorkers int
	// Spawner, when set, receives replicable stage boots so the control
	// plane can autoscale them.
	Spawner svcutil.Definer
}

// replicable names the stages safe to run multi-instance: all their state
// lives in the db/mc tiers downstream.
var replicable = map[string]bool{
	"catalogue": true, "accountInfo": true, "search": true, "discounts": true,
	"cart": true, "wishlist": true, "shipping": true, "authorization": true,
	"payment": true, "invoicing": true, "orders": true, "recommender": true,
}

// Ecommerce is a running deployment.
type Ecommerce struct {
	App      *core.App
	Frontend *rest.Client

	Catalogue svcutil.Caller
	Orders    svcutil.Caller
	User      svcutil.Caller
	Cart      svcutil.Caller

	// Broker is the message-broker tier behind the async order path;
	// exported so tests and experiments can read backlog stats directly
	// across every broker instance.
	Broker *mq.Cluster

	qm *queueMaster
}

// New boots the E-commerce application.
func New(app *core.App, cfg Config) (*Ecommerce, error) {
	stack := &svcutil.Stack{
		App:           app,
		Prefix:        "ecom.",
		Shards:        cfg.Shards,
		ShardReplicas: cfg.ShardReplicas,
		CacheBytes:    cfg.CacheBytes,
		Middleware:    cfg.Middleware,
		Replicable:    replicable,
		Replicas:      cfg.Replicas,
		Spawner:       cfg.Spawner,
	}
	if err := stack.StartStores("db-catalogue", "db-carts", "db-orders", "db-accounts", "db-invoices", "db-wishlists"); err != nil {
		return nil, err
	}
	if err := stack.StartCaches("mc-catalogue", "mc-accounts"); err != nil {
		return nil, err
	}

	degrade := !cfg.DisableDegradation
	cl, db, mc, start := stack.Caller, stack.DB, stack.KV, stack.Start

	ec := &Ecommerce{App: app}

	start("catalogue", func(s *rpc.Server) {
		registerCatalogue(s, db("catalogue", "db-catalogue"), mc("catalogue", "mc-catalogue"), cfg.DisableCoalescing)
	})
	start("accountInfo", func(s *rpc.Server) {
		registerAccountInfo(s, db("accountInfo", "db-accounts"), mc("accountInfo", "mc-accounts"))
	})
	start("search", func(s *rpc.Server) { registerSearch(s, cl("search", "catalogue")) })
	start("discounts", func(s *rpc.Server) { registerDiscounts(s, cl("discounts", "catalogue"), nil) })
	start("cart", func(s *rpc.Server) {
		registerCart(s, db("cart", "db-carts"))
	})
	start("wishlist", func(s *rpc.Server) {
		registerWishlist(s, db("wishlist", "db-wishlists"))
	})
	start("shipping", registerShipping)
	start("authorization", func(s *rpc.Server) {
		registerAuthorization(s, cl("authorization", "accountInfo"))
	})
	start("payment", func(s *rpc.Server) {
		registerPayment(s, cl("payment", "authorization"), cl("payment", "accountInfo"))
	})
	start("transactionID", func(s *rpc.Server) { registerTransactionID(s, cfg.Clock) })
	start("invoicing", func(s *rpc.Server) {
		registerInvoicing(s, db("invoicing", "db-invoices"), cfg.Clock)
	})
	// The broker tier boots just before queueMaster: its configure hook
	// declares the order topic and subscribes the commit group, so no
	// publish can miss the group.
	ec.Broker = stack.StartBroker("broker", ConfigureOrderBroker)
	start("queueMaster", func(s *rpc.Server) {
		ec.qm = registerQueueMaster(s, stack.MQ("queueMaster", "broker"),
			db("queueMaster", "db-orders"), cl("queueMaster", "catalogue"), cfg.OrderWorkers)
	})
	start("orders", func(s *rpc.Server) {
		registerOrders(s, ordersDeps{
			user:        cl("orders", "accountInfo"),
			cart:        cl("orders", "cart"),
			catalogue:   cl("orders", "catalogue"),
			shipping:    cl("orders", "shipping"),
			discounts:   cl("orders", "discounts"),
			payment:     cl("orders", "payment"),
			transaction: cl("orders", "transactionID"),
			invoicing:   cl("orders", "invoicing"),
			queueMaster: cl("orders", "queueMaster"),
			db:          db("orders", "db-orders"),
			now:         cfg.Clock,
		})
	})
	start("recommender", func(s *rpc.Server) {
		registerRecommender(s, cl("recommender", "orders"), cl("recommender", "catalogue"))
	})
	if err := stack.Boot(); err != nil {
		return nil, fmt.Errorf("ecommerce: boot: %w", err)
	}
	// Stop the commit consumers on app teardown even when the caller never
	// calls Ecommerce.Close: their long polls must not outlive the stack.
	app.OnClose(ec.Close)

	if _, err := app.StartREST("ecom.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			user:        cl("frontend", "accountInfo"),
			catalogue:   cl("frontend", "catalogue"),
			search:      cl("frontend", "search"),
			cart:        cl("frontend", "cart"),
			wishlist:    cl("frontend", "wishlist"),
			orders:      cl("frontend", "orders"),
			recommender: cl("frontend", "recommender"),
			discounts:   cl("frontend", "discounts"),
			shipping:    cl("frontend", "shipping"),
		}, degrade)
	}); err != nil {
		return nil, err
	}

	var err error
	if ec.Frontend, err = app.REST("client", "ecom.frontend"); err != nil {
		return nil, err
	}
	if ec.Catalogue, err = app.RPC("client", "ecom.catalogue"); err != nil {
		return nil, err
	}
	if ec.Orders, err = app.RPC("client", "ecom.orders"); err != nil {
		return nil, err
	}
	if ec.User, err = app.RPC("client", "ecom.accountInfo"); err != nil {
		return nil, err
	}
	if ec.Cart, err = app.RPC("client", "ecom.cart"); err != nil {
		return nil, err
	}
	return ec, nil
}

// SeedItems loads the inventory.
func (ec *Ecommerce) SeedItems(items []Item) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, it := range items {
		if err := ec.Catalogue.Call(ctx, "Add", AddItemReq{Item: it}, nil); err != nil {
			return err
		}
	}
	return nil
}

// WaitForOrder polls until the order leaves the queued state or the
// timeout elapses, returning the final order.
func (ec *Ecommerce) WaitForOrder(id string, timeout time.Duration) (Order, error) {
	deadline := time.Now().Add(timeout)
	ctx := context.Background()
	for {
		var resp GetOrderResp
		if err := ec.Orders.Call(ctx, "Get", GetOrderReq{ID: id}, &resp); err != nil {
			return Order{}, err
		}
		if resp.Found && resp.Order.Status != StatusQueued {
			return resp.Order, nil
		}
		if time.Now().After(deadline) {
			return resp.Order, fmt.Errorf("ecommerce: order %s still %s after %v", id, resp.Order.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the queueMaster consumer; call before closing the app.
func (ec *Ecommerce) Close() {
	if ec.qm != nil {
		ec.qm.Close()
	}
}
