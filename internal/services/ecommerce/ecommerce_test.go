package ecommerce

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/rpc"
)

func bootEcom(t *testing.T) *Ecommerce {
	t.Helper()
	app := core.NewApp("ecom-test", core.Options{})
	ec, err := New(app, Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	t.Cleanup(func() {
		ec.Close()
		app.Close()
	})
	items := []Item{
		{ID: "sock-red", Name: "Red Wool Sock", Tags: []string{"socks", "sale"}, PriceCents: 899, WeightGram: 120, Stock: 50},
		{ID: "sock-blue", Name: "Blue Cotton Sock", Tags: []string{"socks"}, PriceCents: 699, WeightGram: 100, Stock: 3},
		{ID: "boot-hike", Name: "Hiking Boot", Tags: []string{"shoes"}, PriceCents: 12999, WeightGram: 1400, Stock: 10},
		{ID: "hat-sun", Name: "Sun Hat", Tags: []string{"hats", "clearance"}, PriceCents: 1999, WeightGram: 180, Stock: 5},
	}
	if err := ec.SeedItems(items); err != nil {
		t.Fatal(err)
	}
	return ec
}

func login(t *testing.T, ec *Ecommerce, user string, cents int64) string {
	t.Helper()
	ctx := context.Background()
	if err := ec.User.Call(ctx, "Register", RegisterUserReq{Username: user, Password: "pw", BalanceCents: cents}, nil); err != nil {
		t.Fatal(err)
	}
	var lr LoginResp
	if err := ec.User.Call(ctx, "Login", LoginReq{Username: user, Password: "pw"}, &lr); err != nil {
		t.Fatal(err)
	}
	return lr.Token
}

func TestPlaceOrderEndToEnd(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	token := login(t, ec, "shopper", 100000)

	// Fill the cart: 2 red socks (20% sale) + 1 boot.
	var auth VerifyTokenResp
	ec.User.Call(ctx, "VerifyToken", VerifyTokenReq{Token: token}, &auth) //nolint:errcheck
	if err := ec.Cart.Call(ctx, "Add", CartAddReq{Username: "shopper", ItemID: "sock-red", Quantity: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := ec.Cart.Call(ctx, "Add", CartAddReq{Username: "shopper", ItemID: "boot-hike", Quantity: 1}, nil); err != nil {
		t.Fatal(err)
	}

	var placed PlaceOrderResp
	if err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "express"}, &placed); err != nil {
		t.Fatal(err)
	}
	o := placed.Order
	// Money math: items = 2*899 + 12999 = 14797; discount = 20% of 2*899 =
	// 359 (floor); shipping express for 1640g => 700 + 90*2 = 880.
	if o.ItemsCents != 14797 {
		t.Fatalf("items = %d", o.ItemsCents)
	}
	if o.DiscountCents != 359 {
		t.Fatalf("discount = %d", o.DiscountCents)
	}
	if o.ShippingCents != 880 {
		t.Fatalf("shipping = %d", o.ShippingCents)
	}
	if want := o.ItemsCents - o.DiscountCents + o.ShippingCents; o.TotalCents != want {
		t.Fatalf("total = %d, want %d", o.TotalCents, want)
	}
	if o.TransactionID == "" || o.InvoiceID == "" {
		t.Fatalf("missing txn/invoice: %+v", o)
	}

	// Balance debited exactly once.
	var bal BalanceResp
	if err := ec.User.Call(ctx, "Balance", AccountReq{Username: "shopper"}, &bal); err != nil {
		t.Fatal(err)
	}
	if bal.BalanceCents != 100000-o.TotalCents {
		t.Fatalf("balance = %d", bal.BalanceCents)
	}

	// queueMaster commits it and stock drops.
	final, err := ec.WaitForOrder(o.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCommitted {
		t.Fatalf("status = %s", final.Status)
	}
	var item GetItemResp
	if err := ec.Catalogue.Call(ctx, "Get", GetItemReq{ID: "sock-red"}, &item); err != nil {
		t.Fatal(err)
	}
	if item.Item.Stock != 48 {
		t.Fatalf("stock = %d", item.Item.Stock)
	}

	// Cart was cleared.
	var cart CartResp
	if err := ec.Cart.Call(ctx, "Get", CartReq{Username: "shopper"}, &cart); err != nil {
		t.Fatal(err)
	}
	if len(cart.Lines) != 0 {
		t.Fatalf("cart = %+v", cart.Lines)
	}
}

func TestOrderEmptyCartRejected(t *testing.T) {
	ec := bootEcom(t)
	token := login(t, ec, "empty", 1000)
	err := ec.Orders.Call(context.Background(), "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, nil)
	if !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("empty cart: %v", err)
	}
}

func TestOrderInsufficientFunds(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	token := login(t, ec, "poor", 100)
	ec.Cart.Call(ctx, "Add", CartAddReq{Username: "poor", ItemID: "boot-hike", Quantity: 1}, nil) //nolint:errcheck
	err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, nil)
	if !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("poor order: %v", err)
	}
	// Balance untouched after failed authorization.
	var bal BalanceResp
	ec.User.Call(ctx, "Balance", AccountReq{Username: "poor"}, &bal) //nolint:errcheck
	if bal.BalanceCents != 100 {
		t.Fatalf("balance = %d", bal.BalanceCents)
	}
}

func TestOversellRejectedByQueueMaster(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	// Two shoppers both try to buy all 3 blue socks; stock check at
	// placement passes for both, but serialized commit rejects the loser.
	// The loser is rejected either at placement (if the winner's commit
	// already drained stock) or by queueMaster at commit time; in neither
	// case may stock go negative or both orders succeed.
	tokens := []string{login(t, ec, "fast", 10000), login(t, ec, "slow", 10000)}
	users := []string{"fast", "slow"}
	committed, rejected := 0, 0
	for i, token := range tokens {
		if err := ec.Cart.Call(ctx, "Add", CartAddReq{Username: users[i], ItemID: "sock-blue", Quantity: 3}, nil); err != nil {
			t.Fatal(err)
		}
		var placed PlaceOrderResp
		err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, &placed)
		if rpc.IsCode(err, rpc.CodeConflict) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		final, err := ec.WaitForOrder(placed.Order.ID, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch final.Status {
		case StatusCommitted:
			committed++
		case StatusRejected:
			rejected++
		}
	}
	if committed != 1 || rejected != 1 {
		t.Fatalf("committed=%d rejected=%d", committed, rejected)
	}
	// Stock is exactly zero — no oversell, no phantom restock.
	var item GetItemResp
	ec.Catalogue.Call(ctx, "Get", GetItemReq{ID: "sock-blue"}, &item) //nolint:errcheck
	if item.Item.Stock != 0 {
		t.Fatalf("stock = %d", item.Item.Stock)
	}
}

func TestOrdersCommitInPublicationOrder(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	token := login(t, ec, "serial", 1000000)
	var ids []string
	for i := 0; i < 5; i++ {
		if err := ec.Cart.Call(ctx, "Add", CartAddReq{Username: "serial", ItemID: "sock-red", Quantity: 1}, nil); err != nil {
			t.Fatal(err)
		}
		var placed PlaceOrderResp
		if err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, &placed); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, placed.Order.ID)
	}
	for _, id := range ids {
		if _, err := ec.WaitForOrder(id, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var item GetItemResp
	ec.Catalogue.Call(ctx, "Get", GetItemReq{ID: "sock-red"}, &item) //nolint:errcheck
	if item.Item.Stock != 45 {
		t.Fatalf("stock = %d, want 45", item.Item.Stock)
	}
}

func TestFrontendBrowseAndCheckout(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	fe := ec.Frontend

	if err := fe.Do(ctx, "POST", "/register", CredentialsBody{Username: "webby", Password: "pw"}, nil); err != nil {
		t.Fatal(err)
	}
	var lr LoginResp
	if err := fe.Do(ctx, "POST", "/login", CredentialsBody{Username: "webby", Password: "pw"}, &lr); err != nil {
		t.Fatal(err)
	}

	var items []Item
	if err := fe.Do(ctx, "GET", "/catalogue", nil, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("catalogue = %d items", len(items))
	}
	if err := fe.Do(ctx, "GET", "/catalogue?tag=socks", nil, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("socks = %d items", len(items))
	}
	var one Item
	if err := fe.Do(ctx, "GET", "/catalogue/boot-hike", nil, &one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "Hiking Boot" {
		t.Fatalf("item = %+v", one)
	}
	if err := fe.Do(ctx, "GET", "/search?q=sock", nil, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("search = %d items", len(items))
	}

	// Cart -> order via REST.
	if err := fe.Do(ctx, "POST", "/cart", CartBody{Token: lr.Token, ItemID: "hat-sun", Quantity: 1}, nil); err != nil {
		t.Fatal(err)
	}
	var order Order
	if err := fe.Do(ctx, "POST", "/orders", OrderBody{Token: lr.Token, Shipping: "standard"}, &order); err != nil {
		t.Fatal(err)
	}
	// Clearance hat: 50% off 1999 = 999 discount.
	if order.DiscountCents != 999 {
		t.Fatalf("discount = %d", order.DiscountCents)
	}
	final, err := ec.WaitForOrder(order.ID, 5*time.Second)
	if err != nil || final.Status != StatusCommitted {
		t.Fatalf("final = %+v, %v", final, err)
	}
	var got Order
	if err := fe.Do(ctx, "GET", "/orders/"+order.ID, nil, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCommitted {
		t.Fatalf("status over REST = %s", got.Status)
	}

	// Wishlist + recommender.
	if err := fe.Do(ctx, "POST", "/wishlist", WishBody{Token: lr.Token, ItemID: "sock-red"}, nil); err != nil {
		t.Fatal(err)
	}
	var wish []string
	if err := fe.Do(ctx, "GET", "/wishlist?token="+lr.Token, nil, &wish); err != nil {
		t.Fatal(err)
	}
	if len(wish) != 1 || wish[0] != "sock-red" {
		t.Fatalf("wishlist = %v", wish)
	}
}

func TestRecommenderCoTag(t *testing.T) {
	ec := bootEcom(t)
	ctx := context.Background()
	token := login(t, ec, "buyer", 100000)
	// Buy a red sock; recommendation should surface the other sock.
	ec.Cart.Call(ctx, "Add", CartAddReq{Username: "buyer", ItemID: "sock-red", Quantity: 1}, nil) //nolint:errcheck
	var placed PlaceOrderResp
	if err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, &placed); err != nil {
		t.Fatal(err)
	}
	if _, err := ec.WaitForOrder(placed.Order.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var recs RecommendationsBody
	if err := ec.Frontend.Do(ctx, "GET", "/recommend?token="+token, nil, &recs); err != nil {
		t.Fatal(err)
	}
	if recs.Degraded || len(recs.Items) == 0 || recs.Items[0].ID != "sock-blue" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestShippingQuoteBands(t *testing.T) {
	ec := bootEcom(t)
	var opts []ShippingOption
	if err := ec.Frontend.Do(context.Background(), "GET", "/shipping?weight=2500", nil, &opts); err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("options = %+v", opts)
	}
	// 2500g rounds to 3kg: standard = 300 + 150.
	if opts[0].Method != "standard" || opts[0].CostCents != 450 {
		t.Fatalf("standard = %+v", opts[0])
	}
}
