package ecommerce

import (
	"dsb/internal/rest"
	"dsb/internal/svcutil"
)

// REST bodies for the node.js-style front-end.

// CredentialsBody registers or logs in.
type CredentialsBody struct {
	Username string `json:"username"`
	Password string `json:"password"`
}

// CartBody mutates the caller's cart.
type CartBody struct {
	Token    string `json:"token"`
	ItemID   string `json:"item_id"`
	Quantity int64  `json:"quantity"`
}

// OrderBody places an order.
type OrderBody struct {
	Token    string `json:"token"`
	Shipping string `json:"shipping"`
}

// WishBody adds to the wishlist.
type WishBody struct {
	Token  string `json:"token"`
	ItemID string `json:"item_id"`
}

// RecommendationsBody is the GET /recommend response. Degraded marks an
// empty list served because the recommender tier was unreachable — the
// non-critical hop the storefront sacrifices rather than failing the page.
type RecommendationsBody struct {
	Items    []Item `json:"items"`
	Degraded bool   `json:"degraded,omitempty"`
}

type frontendDeps struct {
	user        svcutil.Caller
	catalogue   svcutil.Caller
	search      svcutil.Caller
	cart        svcutil.Caller
	wishlist    svcutil.Caller
	orders      svcutil.Caller
	recommender svcutil.Caller
	discounts   svcutil.Caller
	shipping    svcutil.Caller
}

// registerFrontend installs the REST front door (the node.js front-end of
// Figure 6). With degrade on, the recommendation hop is non-critical: a
// failure there yields an empty Degraded list instead of an error.
func registerFrontend(srv *rest.Server, d frontendDeps, degrade bool) {
	authed := func(ctx *rest.Ctx, token string) (string, error) {
		var auth VerifyTokenResp
		if err := d.user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: token}, &auth); err != nil {
			return "", err
		}
		if !auth.Valid {
			return "", errUnauthorized
		}
		return auth.Username, nil
	}

	srv.Handle("POST /register", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		return nil, d.user.Call(ctx, "Register", RegisterUserReq{Username: req.Username, Password: req.Password, BalanceCents: 50000}, nil)
	})
	srv.Handle("POST /login", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp LoginResp
		if err := d.user.Call(ctx, "Login", LoginReq{Username: req.Username, Password: req.Password}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("GET /catalogue", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp ItemsResp
		if err := d.catalogue.Call(ctx, "List", ListItemsReq{Tag: ctx.Query("tag"), Limit: 50}, &resp); err != nil {
			return nil, err
		}
		return resp.Items, nil
	})
	srv.Handle("GET /catalogue/{id}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp GetItemResp
		if err := d.catalogue.Call(ctx, "Get", GetItemReq{ID: ctx.PathValue("id")}, &resp); err != nil {
			return nil, err
		}
		if !resp.Found {
			return nil, errNotFound(ctx.PathValue("id"))
		}
		return resp.Item, nil
	})
	srv.Handle("GET /search", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp ItemsResp
		if err := d.search.Call(ctx, "Query", SearchReq{Query: ctx.Query("q"), Limit: 10}, &resp); err != nil {
			return nil, err
		}
		return resp.Items, nil
	})

	srv.Handle("POST /cart", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CartBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		user, err := authed(ctx, req.Token)
		if err != nil {
			return nil, err
		}
		var resp CartResp
		if err := d.cart.Call(ctx, "Add", CartAddReq{Username: user, ItemID: req.ItemID, Quantity: req.Quantity}, &resp); err != nil {
			return nil, err
		}
		return resp.Lines, nil
	})
	srv.Handle("GET /cart", func(ctx *rest.Ctx, body []byte) (any, error) {
		user, err := authed(ctx, ctx.Query("token"))
		if err != nil {
			return nil, err
		}
		var resp CartResp
		if err := d.cart.Call(ctx, "Get", CartReq{Username: user}, &resp); err != nil {
			return nil, err
		}
		return resp.Lines, nil
	})

	srv.Handle("POST /wishlist", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req WishBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		user, err := authed(ctx, req.Token)
		if err != nil {
			return nil, err
		}
		return nil, d.wishlist.Call(ctx, "Add", WishlistAddReq{Username: user, ItemID: req.ItemID}, nil)
	})
	srv.Handle("GET /wishlist", func(ctx *rest.Ctx, body []byte) (any, error) {
		user, err := authed(ctx, ctx.Query("token"))
		if err != nil {
			return nil, err
		}
		var resp WishlistResp
		if err := d.wishlist.Call(ctx, "Get", WishlistReq{Username: user}, &resp); err != nil {
			return nil, err
		}
		return resp.ItemIDs, nil
	})

	srv.Handle("POST /orders", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req OrderBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp PlaceOrderResp
		if err := d.orders.Call(ctx, "Place", PlaceOrderReq{Token: req.Token, Shipping: req.Shipping}, &resp); err != nil {
			return nil, err
		}
		return resp.Order, nil
	})
	srv.Handle("GET /orders/{id}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp GetOrderResp
		if err := d.orders.Call(ctx, "Get", GetOrderReq{ID: ctx.PathValue("id")}, &resp); err != nil {
			return nil, err
		}
		if !resp.Found {
			return nil, errNotFound(ctx.PathValue("id"))
		}
		return resp.Order, nil
	})
	srv.Handle("GET /shipping", func(ctx *rest.Ctx, body []byte) (any, error) {
		weight := int64(0)
		for _, c := range ctx.Query("weight") {
			if c >= '0' && c <= '9' {
				weight = weight*10 + int64(c-'0')
			}
		}
		var resp ShippingQuoteResp
		if err := d.shipping.Call(ctx, "Quote", ShippingQuoteReq{WeightGram: weight}, &resp); err != nil {
			return nil, err
		}
		return resp.Options, nil
	})
	srv.Handle("GET /recommend", func(ctx *rest.Ctx, body []byte) (any, error) {
		user, err := authed(ctx, ctx.Query("token"))
		if err != nil {
			return nil, err
		}
		var resp ItemsResp
		if err := svcutil.CallBounded(ctx, degrade, d.recommender, "Recommend", RecommendItemsReq{Username: user, Limit: 5}, &resp); err != nil {
			if !degrade {
				return nil, err
			}
			return RecommendationsBody{Degraded: true}, nil
		}
		return RecommendationsBody{Items: resp.Items}, nil
	})
}
