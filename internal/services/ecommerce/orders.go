package ecommerce

import (
	"fmt"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// ShippingQuoteReq quotes shipping for a weight.
type ShippingQuoteReq struct{ WeightGram int64 }

// ShippingQuoteResp returns the available options, cheapest first.
type ShippingQuoteResp struct{ Options []ShippingOption }

// registerShipping installs the shipping service: weight-banded pricing
// with standard/express/overnight methods.
func registerShipping(srv *rpc.Server) {
	svcutil.Handle(srv, "Quote", func(ctx *rpc.Ctx, req *ShippingQuoteReq) (*ShippingQuoteResp, error) {
		if req.WeightGram < 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "shipping: negative weight")
		}
		// Base + per-kg pricing per method.
		perKg := (req.WeightGram + 999) / 1000
		return &ShippingQuoteResp{Options: []ShippingOption{
			{Method: "standard", CostCents: 300 + 50*perKg, Days: 5},
			{Method: "express", CostCents: 700 + 90*perKg, Days: 2},
			{Method: "overnight", CostCents: 1500 + 150*perKg, Days: 1},
		}}, nil
	})
}

// AuthorizePaymentReq authorizes a charge against an account.
type AuthorizePaymentReq struct {
	Username    string
	AmountCents int64
}

// AuthorizePaymentResp returns the authorization code.
type AuthorizePaymentResp struct{ AuthCode string }

// registerPayment installs the payment service, which consults the
// authorization tier and debits the account.
func registerPayment(srv *rpc.Server, authorization, accountInfo svcutil.Caller) {
	svcutil.Handle(srv, "Charge", func(ctx *rpc.Ctx, req *AuthorizePaymentReq) (*AuthorizePaymentResp, error) {
		var auth AuthorizePaymentResp
		if err := authorization.Call(ctx, "Authorize", *req, &auth); err != nil {
			return nil, err
		}
		if err := accountInfo.Call(ctx, "Debit", *req, nil); err != nil {
			return nil, err
		}
		return &auth, nil
	})
}

// registerAuthorization installs the authorization tier: balance check and
// per-order risk ceiling, returning a deterministic auth code.
func registerAuthorization(srv *rpc.Server, accountInfo svcutil.Caller) {
	var seq atomic.Uint64
	svcutil.Handle(srv, "Authorize", func(ctx *rpc.Ctx, req *AuthorizePaymentReq) (*AuthorizePaymentResp, error) {
		if req.AmountCents <= 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "authorization: non-positive amount")
		}
		if req.AmountCents > 500000 {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "authorization: amount above risk ceiling")
		}
		var bal BalanceResp
		if err := accountInfo.Call(ctx, "Balance", AccountReq{Username: req.Username}, &bal); err != nil {
			return nil, err
		}
		if bal.BalanceCents < req.AmountCents {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "authorization: insufficient funds")
		}
		return &AuthorizePaymentResp{AuthCode: fmt.Sprintf("auth-%06d", seq.Add(1))}, nil
	})
}

// TransactionIDResp returns a globally unique transaction identifier.
type TransactionIDResp struct{ ID string }

// registerTransactionID installs the transactionID service.
func registerTransactionID(srv *rpc.Server, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	var seq atomic.Uint64
	svcutil.Handle(srv, "Next", func(ctx *rpc.Ctx, req *struct{}) (*TransactionIDResp, error) {
		return &TransactionIDResp{ID: fmt.Sprintf("txn-%d-%06d", now().UnixMilli(), seq.Add(1))}, nil
	})
}

// InvoiceReq issues an invoice for an order.
type InvoiceReq struct {
	OrderID    string
	Username   string
	TotalCents int64
}

// InvoiceResp returns the invoice.
type InvoiceResp struct{ Invoice Invoice }

// registerInvoicing installs the invoicing service.
func registerInvoicing(srv *rpc.Server, db svcutil.DB, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	var seq atomic.Uint64
	svcutil.Handle(srv, "Issue", func(ctx *rpc.Ctx, req *InvoiceReq) (*InvoiceResp, error) {
		inv := Invoice{
			ID:         fmt.Sprintf("inv-%06d", seq.Add(1)),
			OrderID:    req.OrderID,
			Username:   req.Username,
			TotalCents: req.TotalCents,
			IssuedAt:   now().UnixNano(),
		}
		body, err := codec.Marshal(inv)
		if err != nil {
			return nil, err
		}
		if err := db.Put(ctx, "invoices", docstore.Doc{ID: inv.ID, Fields: map[string]string{"order": inv.OrderID}, Body: body}); err != nil {
			return nil, err
		}
		return &InvoiceResp{Invoice: inv}, nil
	})
}

// PlaceOrderReq places the caller's cart as an order.
type PlaceOrderReq struct {
	Token    string
	Shipping string // "standard" | "express" | "overnight"
}

// PlaceOrderResp returns the queued order.
type PlaceOrderResp struct{ Order Order }

// GetOrderReq fetches an order by ID.
type GetOrderReq struct{ ID string }

// GetOrderResp returns the order.
type GetOrderResp struct {
	Order Order
	Found bool
}

// OrdersByUserReq lists a user's orders.
type OrdersByUserReq struct{ Username string }

// OrdersResp returns orders.
type OrdersResp struct{ Orders []Order }

// ordersDeps are the tiers the orders orchestrator fans out to.
type ordersDeps struct {
	user        svcutil.Caller
	cart        svcutil.Caller
	catalogue   svcutil.Caller
	shipping    svcutil.Caller
	discounts   svcutil.Caller
	payment     svcutil.Caller
	transaction svcutil.Caller
	invoicing   svcutil.Caller
	queueMaster svcutil.Caller
	db          svcutil.DB
	now         func() time.Time
}

// registerOrders installs the orders orchestrator — the longest path in the
// application (1–2 orders of magnitude slower than catalogue browsing, per
// Section 3.8): authenticate, price the cart, quote shipping, apply
// discounts, authorize and charge payment, issue the transaction ID and
// invoice, enqueue the order for serialized commit, and clear the cart.
func registerOrders(srv *rpc.Server, deps ordersDeps) {
	if deps.now == nil {
		deps.now = time.Now
	}
	var seq atomic.Uint64

	svcutil.Handle(srv, "Place", func(ctx *rpc.Ctx, req *PlaceOrderReq) (*PlaceOrderResp, error) {
		var auth VerifyTokenResp
		if err := deps.user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "orders: invalid token")
		}
		var cart CartResp
		if err := deps.cart.Call(ctx, "Get", CartReq{Username: auth.Username}, &cart); err != nil {
			return nil, err
		}
		if len(cart.Lines) == 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "orders: cart is empty")
		}

		// Price items and total weight.
		var itemsCents, weight int64
		for _, line := range cart.Lines {
			var item GetItemResp
			if err := deps.catalogue.Call(ctx, "Get", GetItemReq{ID: line.ItemID}, &item); err != nil {
				return nil, err
			}
			if !item.Found {
				return nil, rpc.NotFoundf("orders: item %q vanished", line.ItemID)
			}
			if item.Item.Stock < line.Quantity {
				return nil, rpc.Errorf(rpc.CodeConflict, "orders: %s out of stock", line.ItemID)
			}
			itemsCents += item.Item.PriceCents * line.Quantity
			weight += item.Item.WeightGram * line.Quantity
		}

		// Shipping quote and method selection.
		var quote ShippingQuoteResp
		if err := deps.shipping.Call(ctx, "Quote", ShippingQuoteReq{WeightGram: weight}, &quote); err != nil {
			return nil, err
		}
		var shipping *ShippingOption
		for i := range quote.Options {
			if quote.Options[i].Method == req.Shipping {
				shipping = &quote.Options[i]
			}
		}
		if shipping == nil {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "orders: unknown shipping method %q", req.Shipping)
		}

		// Discounts.
		var discount DiscountResp
		if err := deps.discounts.Call(ctx, "Quote", DiscountReq{Lines: cart.Lines}, &discount); err != nil {
			return nil, err
		}
		total := itemsCents - discount.DiscountCents + shipping.CostCents
		if total < 0 {
			total = 0
		}

		// Payment: authorize + charge.
		var authz AuthorizePaymentResp
		if err := deps.payment.Call(ctx, "Charge", AuthorizePaymentReq{Username: auth.Username, AmountCents: total}, &authz); err != nil {
			return nil, err
		}
		var txn TransactionIDResp
		if err := deps.transaction.Call(ctx, "Next", struct{}{}, &txn); err != nil {
			return nil, err
		}

		order := Order{
			ID:            fmt.Sprintf("ord-%d-%06d", deps.now().UnixMilli(), seq.Add(1)),
			Username:      auth.Username,
			Lines:         cart.Lines,
			ItemsCents:    itemsCents,
			DiscountCents: discount.DiscountCents,
			ShippingCents: shipping.CostCents,
			TotalCents:    total,
			Shipping:      shipping.Method,
			TransactionID: txn.ID,
			Status:        StatusQueued,
			CreatedAt:     deps.now().UnixNano(),
		}
		var inv InvoiceResp
		if err := deps.invoicing.Call(ctx, "Issue", InvoiceReq{OrderID: order.ID, Username: order.Username, TotalCents: total}, &inv); err != nil {
			return nil, err
		}
		order.InvoiceID = inv.Invoice.ID

		if err := storeOrder(ctx, deps.db, order); err != nil {
			return nil, err
		}
		// Hand off to queueMaster for serialized commit, then clear cart.
		if err := deps.queueMaster.Call(ctx, "Enqueue", GetOrderReq{ID: order.ID}, nil); err != nil {
			return nil, err
		}
		if err := deps.cart.Call(ctx, "Clear", CartReq{Username: auth.Username}, nil); err != nil {
			return nil, err
		}
		return &PlaceOrderResp{Order: order}, nil
	})

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *GetOrderReq) (*GetOrderResp, error) {
		order, found, err := loadOrder(ctx, deps.db, req.ID)
		if err != nil {
			return nil, err
		}
		return &GetOrderResp{Order: order, Found: found}, nil
	})

	svcutil.Handle(srv, "ByUser", func(ctx *rpc.Ctx, req *OrdersByUserReq) (*OrdersResp, error) {
		docs, err := deps.db.Find(ctx, "orders", "user", req.Username, 100)
		if err != nil {
			return nil, err
		}
		out := make([]Order, 0, len(docs))
		for _, d := range docs {
			var o Order
			if codec.Unmarshal(d.Body, &o) == nil {
				out = append(out, o)
			}
		}
		return &OrdersResp{Orders: out}, nil
	})
}

func storeOrder(ctx *rpc.Ctx, db svcutil.DB, o Order) error {
	body, err := codec.Marshal(o)
	if err != nil {
		return err
	}
	return db.Put(ctx, "orders", docstore.Doc{
		ID:     o.ID,
		Fields: map[string]string{"user": o.Username, "status": o.Status},
		Nums:   map[string]int64{"ts": o.CreatedAt},
		Body:   body,
	})
}

func loadOrder(ctx *rpc.Ctx, db svcutil.DB, id string) (Order, bool, error) {
	doc, found, err := db.Get(ctx, "orders", id)
	if err != nil || !found {
		return Order{}, false, err
	}
	var o Order
	if err := codec.Unmarshal(doc.Body, &o); err != nil {
		return Order{}, false, fmt.Errorf("orders: corrupt order %s: %w", id, err)
	}
	return o, true, nil
}
