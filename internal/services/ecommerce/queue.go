package ecommerce

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// registerQueueMaster installs the queueMaster service: Enqueue publishes
// the order ID to the broker tier's orderQueue topic and returns once the
// broker has acknowledged it, and a pool of consumer workers in the
// "commit" consumer group receives, validates stock, decrements inventory,
// and marks each order committed. The broker redelivers any order whose
// worker dies mid-commit (lease expiry), so a crashed worker never loses an
// order; with one worker, commits stay strictly serialized — the point the
// paper identifies as constraining queueMaster's scalability at high load.

// orderTopic and orderGroup name the broker topic orders flow through and
// the consumer group that commits them.
const (
	orderTopic = "orderQueue"
	orderGroup = "commit"
)

// maxQueueDepth bounds the order queue, enforced broker-side against
// queued AND in-flight orders (a queue with everything leased out is
// saturated, not empty). Beyond it, Publish sheds with CodeOverloaded —
// the same admission contract every other tier speaks — so callers see a
// retryable "not now" instead of unbounded queueing delay.
const maxQueueDepth = 256

// orderMaxAttempts is the poison guard: an order redelivered this many
// times moves to the dead-letter queue instead of head-of-line-blocking
// the topic forever. Sized far above any transient-overload retry run.
const orderMaxAttempts = 512

// overloadRetryBackoff spaces redeliveries of an order whose commit was shed
// by the catalogue tier, so the consumer does not hot-loop on a downstream
// that just said "not now".
const overloadRetryBackoff = 5 * time.Millisecond

// consumePoll bounds each long-poll against the broker; it is also the
// worst-case delay between Close and a parked worker noticing.
const consumePoll = 250 * time.Millisecond

// orderLease bounds one commit attempt before the broker assumes the
// worker died and redelivers.
const orderLease = 30 * time.Second

// ConfigureOrderBroker declares the order topic on a broker with the
// depth/retry bounds above and subscribes the commit group — it must run at
// broker boot, before any producer, so no publish misses the group.
func ConfigureOrderBroker(b *mq.Broker) {
	t := b.Topic(orderTopic)
	t.Configure(mq.QueueConfig{MaxDepth: maxQueueDepth, MaxAttempts: orderMaxAttempts})
	t.Subscribe(orderGroup)
}

type queueMaster struct {
	bus       mq.Bus
	db        svcutil.DB
	catalogue svcutil.Caller
	wg        sync.WaitGroup
	stop      chan struct{}
	closed    atomic.Bool
}

func registerQueueMaster(srv *rpc.Server, bus mq.Bus, db svcutil.DB, catalogue svcutil.Caller, workers int) *queueMaster {
	if workers < 1 {
		workers = 1
	}
	qm := &queueMaster{bus: bus, db: db, catalogue: catalogue, stop: make(chan struct{})}
	svcutil.Handle(srv, "Enqueue", func(ctx *rpc.Ctx, req *GetOrderReq) (*struct{}, error) {
		if req.ID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "queueMaster: order ID required")
		}
		// Publish returns after the broker ack; a full topic surfaces the
		// broker's CodeOverloaded to the caller unchanged. The order ID is
		// the message key: an enqueue retried through a broker failover
		// dedups instead of committing twice.
		_, err := qm.bus.PublishKey(ctx, orderTopic, req.ID, []byte(req.ID))
		return nil, err
	})
	svcutil.Handle(srv, "Depth", func(ctx *rpc.Ctx, req *struct{}) (*struct{ Depth int64 }, error) {
		s, err := qm.bus.Stats(ctx, orderTopic, orderGroup)
		if err != nil {
			return nil, err
		}
		return &struct{ Depth int64 }{Depth: s.Lag()}, nil
	})
	qm.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go qm.consume()
	}
	return qm
}

// consume is one commit worker: a member of the "commit" consumer group
// long-polling the broker. A commit shed by the catalogue tier
// (CodeOverloaded) is not a verdict on the order: the message is Nacked back
// to the broker and redelivered once the tier has room, instead of being
// swallowed into a StatusRejected like any other error.
func (qm *queueMaster) consume() {
	defer qm.wg.Done()
	ctx := context.Background()
	for {
		select {
		case <-qm.stop:
			return
		default:
		}
		cctx, cancel := context.WithTimeout(ctx, consumePoll+time.Second)
		msg, err := qm.bus.Consume(cctx, orderTopic, orderGroup, orderLease, consumePoll)
		cancel()
		if err != nil {
			if qm.closed.Load() {
				return
			}
			time.Sleep(overloadRetryBackoff) // broker unreachable: don't hot-loop
			continue
		}
		if !msg.OK {
			continue // poll expired empty
		}
		if retry := qm.commit(string(msg.Body)); retry && !qm.closed.Load() {
			qm.bus.Nack(ctx, orderTopic, orderGroup, msg) //nolint:errcheck // lease expiry redelivers anyway
			time.Sleep(overloadRetryBackoff)
			continue
		}
		// On teardown a still-shed order is acked away (it keeps StatusQueued
		// in the store) rather than spinning Close forever. The ack itself is
		// one-way: a lost ack only costs a redelivery.
		qm.bus.Ack(ctx, orderTopic, orderGroup, msg) //nolint:errcheck
	}
}

// commit applies one order's stock decrements. It returns true when the
// order must be redelivered: the catalogue shed the call with
// CodeOverloaded, meaning the tier was healthy but full, so the order stays
// StatusQueued rather than becoming a spurious rejection.
func (qm *queueMaster) commit(orderID string) (retry bool) {
	ctx := &rpc.Ctx{Context: context.Background(), Method: "commit", Service: "ecom.queueMaster"}
	order, found, err := loadOrder(ctx, qm.db, orderID)
	if err != nil || !found {
		return false
	}
	if order.Status != StatusQueued {
		return false // already processed (redelivery)
	}
	status := StatusCommitted
	var decremented []CartLine
	for _, line := range order.Lines {
		err := qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: line.ItemID, Delta: -line.Quantity}, nil)
		if err == nil {
			decremented = append(decremented, line)
			continue
		}
		// Roll back the lines already taken.
		for _, d := range decremented {
			qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: d.ItemID, Delta: d.Quantity}, nil) //nolint:errcheck
		}
		if transport.IsCode(err, transport.CodeOverloaded) {
			return true
		}
		status = StatusRejected
		break
	}
	order.Status = status
	storeOrder(ctx, qm.db, order) //nolint:errcheck // terminal status write is best-effort on teardown
	return false
}

// Close stops the consumer workers; a worker parked in a long poll notices
// within consumePoll. Unprocessed orders stay with the broker. Idempotent:
// both the deployment's Close and the app's OnClose hook may call it.
func (qm *queueMaster) Close() {
	if !qm.closed.CompareAndSwap(false, true) {
		return
	}
	close(qm.stop)
	qm.wg.Wait()
}
