package ecommerce

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// registerQueueMaster installs the queueMaster service: Enqueue publishes
// the order ID to the orderQueue broker, and a single consumer goroutine
// receives, validates stock, decrements inventory, and marks each order
// committed — strictly in publication order. The single consumer is the
// point the paper identifies as constraining queueMaster's scalability at
// high load.
// maxQueueDepth bounds the order queue. Beyond it, Enqueue sheds with
// CodeOverloaded — the same admission contract every other tier speaks — so
// callers see a retryable "not now" instead of unbounded queueing delay.
const maxQueueDepth = 256

// overloadRetryBackoff spaces redeliveries of an order whose commit was shed
// by the catalogue tier, so the consumer does not hot-loop on a downstream
// that just said "not now".
const overloadRetryBackoff = 5 * time.Millisecond

type queueMaster struct {
	queue     *mq.Queue
	db        svcutil.DB
	catalogue svcutil.Caller
	wg        sync.WaitGroup
	closed    atomic.Bool
}

func registerQueueMaster(srv *rpc.Server, broker *mq.Broker, db svcutil.DB, catalogue svcutil.Caller) *queueMaster {
	qm := &queueMaster{queue: broker.Queue("orderQueue"), db: db, catalogue: catalogue}
	svcutil.Handle(srv, "Enqueue", func(ctx *rpc.Ctx, req *GetOrderReq) (*struct{}, error) {
		if req.ID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "queueMaster: order ID required")
		}
		if qm.queue.Len()+qm.queue.InFlight() >= maxQueueDepth {
			return nil, rpc.Errorf(rpc.CodeOverloaded, "queueMaster: order queue full")
		}
		_, err := qm.queue.Publish([]byte(req.ID))
		return nil, err
	})
	svcutil.Handle(srv, "Depth", func(ctx *rpc.Ctx, req *struct{}) (*struct{ Depth int64 }, error) {
		return &struct{ Depth int64 }{Depth: int64(qm.queue.Len() + qm.queue.InFlight())}, nil
	})
	qm.wg.Add(1)
	go qm.consume()
	return qm
}

// consume is the serialized commit loop. A commit shed by the catalogue tier
// (CodeOverloaded) is not a verdict on the order: the message is Nacked back
// onto the queue and redelivered once the tier has room, instead of being
// swallowed into a StatusRejected like any other error.
func (qm *queueMaster) consume() {
	defer qm.wg.Done()
	for {
		msg, ok := qm.queue.Receive(30 * time.Second)
		if !ok {
			return
		}
		if retry := qm.commit(string(msg.Body)); retry && !qm.closed.Load() {
			qm.queue.Nack(msg.ID)
			time.Sleep(overloadRetryBackoff)
			continue
		}
		// On teardown a still-shed order is dropped from the queue (it keeps
		// StatusQueued in the store) rather than spinning Close forever —
		// Receive drains remaining items even after Close.
		qm.queue.Ack(msg.ID)
	}
}

// commit applies one order's stock decrements. It returns true when the
// order must be redelivered: the catalogue shed the call with
// CodeOverloaded, meaning the tier was healthy but full, so the order stays
// StatusQueued rather than becoming a spurious rejection.
func (qm *queueMaster) commit(orderID string) (retry bool) {
	ctx := &rpc.Ctx{Context: context.Background(), Method: "commit", Service: "ecom.queueMaster"}
	order, found, err := loadOrder(ctx, qm.db, orderID)
	if err != nil || !found {
		return false
	}
	if order.Status != StatusQueued {
		return false // already processed (redelivery)
	}
	status := StatusCommitted
	var decremented []CartLine
	for _, line := range order.Lines {
		err := qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: line.ItemID, Delta: -line.Quantity}, nil)
		if err == nil {
			decremented = append(decremented, line)
			continue
		}
		// Roll back the lines already taken.
		for _, d := range decremented {
			qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: d.ItemID, Delta: d.Quantity}, nil) //nolint:errcheck
		}
		if transport.IsCode(err, transport.CodeOverloaded) {
			return true
		}
		status = StatusRejected
		break
	}
	order.Status = status
	storeOrder(ctx, qm.db, order) //nolint:errcheck // terminal status write is best-effort on teardown
	return false
}

// Close stops the consumer after draining in-flight work.
func (qm *queueMaster) Close() {
	qm.closed.Store(true)
	qm.queue.Close()
	qm.wg.Wait()
}
