package ecommerce

import (
	"context"
	"sync"
	"time"

	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// registerQueueMaster installs the queueMaster service: Enqueue publishes
// the order ID to the orderQueue broker, and a single consumer goroutine
// receives, validates stock, decrements inventory, and marks each order
// committed — strictly in publication order. The single consumer is the
// point the paper identifies as constraining queueMaster's scalability at
// high load.
type queueMaster struct {
	queue     *mq.Queue
	db        svcutil.DB
	catalogue svcutil.Caller
	wg        sync.WaitGroup
}

func registerQueueMaster(srv *rpc.Server, broker *mq.Broker, db svcutil.DB, catalogue svcutil.Caller) *queueMaster {
	qm := &queueMaster{queue: broker.Queue("orderQueue"), db: db, catalogue: catalogue}
	svcutil.Handle(srv, "Enqueue", func(ctx *rpc.Ctx, req *GetOrderReq) (*struct{}, error) {
		if req.ID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "queueMaster: order ID required")
		}
		_, err := qm.queue.Publish([]byte(req.ID))
		return nil, err
	})
	svcutil.Handle(srv, "Depth", func(ctx *rpc.Ctx, req *struct{}) (*struct{ Depth int64 }, error) {
		return &struct{ Depth int64 }{Depth: int64(qm.queue.Len() + qm.queue.InFlight())}, nil
	})
	qm.wg.Add(1)
	go qm.consume()
	return qm
}

// consume is the serialized commit loop.
func (qm *queueMaster) consume() {
	defer qm.wg.Done()
	for {
		msg, ok := qm.queue.Receive(30 * time.Second)
		if !ok {
			return
		}
		qm.commit(string(msg.Body))
		qm.queue.Ack(msg.ID)
	}
}

func (qm *queueMaster) commit(orderID string) {
	ctx := &rpc.Ctx{Context: context.Background(), Method: "commit", Service: "ecom.queueMaster"}
	order, found, err := loadOrder(ctx, qm.db, orderID)
	if err != nil || !found {
		return
	}
	if order.Status != StatusQueued {
		return // already processed (redelivery)
	}
	status := StatusCommitted
	var decremented []CartLine
	for _, line := range order.Lines {
		err := qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: line.ItemID, Delta: -line.Quantity}, nil)
		if err != nil {
			status = StatusRejected
			// Roll back the lines already taken.
			for _, d := range decremented {
				qm.catalogue.Call(ctx, "AdjustStock", AdjustStockReq{ItemID: d.ItemID, Delta: d.Quantity}, nil) //nolint:errcheck
			}
			break
		}
		decremented = append(decremented, line)
	}
	order.Status = status
	storeOrder(ctx, qm.db, order) //nolint:errcheck // terminal status write is best-effort on teardown
}

// Close stops the consumer after draining in-flight work.
func (qm *queueMaster) Close() {
	qm.queue.Close()
	qm.wg.Wait()
}
