package ecommerce

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// bootQueueRig wires a queueMaster against a real order store, a networked
// broker tier, and a stub catalogue whose AdjustStock behavior is driven by
// adjust(callNumber).
func bootQueueRig(t *testing.T, adjust func(call int) error) (broker *mq.Broker, enqueue svcutil.Caller, db svcutil.DB) {
	t.Helper()
	app := core.NewApp("ecom-queue", core.Options{})
	t.Cleanup(func() { app.Close() })
	store := docstore.NewStore()
	if _, err := app.StartRPC("ecom.db-orders", func(s *rpc.Server) {
		docstore.RegisterService(s, store)
	}); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	if _, err := app.StartRPC("ecom.catalogue", func(s *rpc.Server) {
		svcutil.Handle(s, "AdjustStock", func(ctx *rpc.Ctx, req *AdjustStockReq) (*GetItemResp, error) {
			if err := adjust(int(calls.Add(1))); err != nil {
				return nil, err
			}
			return &GetItemResp{Found: true}, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	broker = mq.NewBroker()
	ConfigureOrderBroker(broker)
	if _, err := app.StartRPC("ecom.broker", func(s *rpc.Server) {
		mq.RegisterService(s, broker)
	}); err != nil {
		t.Fatal(err)
	}
	dbC, err := app.RPC("ecom.queueMaster", "ecom.db-orders")
	if err != nil {
		t.Fatal(err)
	}
	db = svcutil.DB{C: dbC}
	cat, err := app.RPC("ecom.queueMaster", "ecom.catalogue")
	if err != nil {
		t.Fatal(err)
	}
	busC, err := app.RPC("ecom.queueMaster", "ecom.broker")
	if err != nil {
		t.Fatal(err)
	}
	var qm *queueMaster
	if _, err := app.StartRPC("ecom.queueMaster", func(s *rpc.Server) {
		qm = registerQueueMaster(s, mq.Client{C: busC}, db, cat, 1)
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(qm.Close)
	enqueue, err = app.RPC("client", "ecom.queueMaster")
	if err != nil {
		t.Fatal(err)
	}
	return broker, enqueue, db
}

func queueOrder(t *testing.T, db svcutil.DB, id string) {
	t.Helper()
	ctx := &rpc.Ctx{Context: context.Background(), Method: "test", Service: "test"}
	if err := storeOrder(ctx, db, Order{
		ID: id, Username: "u", Status: StatusQueued,
		Lines: []CartLine{{ItemID: "sock", Quantity: 1}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadedCommitRetriesNotRejects sheds the first AdjustStock calls
// with CodeOverloaded: the order must stay queued and be redelivered until
// the tier has room, then commit — never a spurious StatusRejected.
func TestOverloadedCommitRetriesNotRejects(t *testing.T) {
	broker, enqueue, db := bootQueueRig(t, func(call int) error {
		if call <= 3 {
			return rpc.Errorf(rpc.CodeOverloaded, "catalogue: admission shed")
		}
		return nil
	})
	ctx := context.Background()
	queueOrder(t, db, "ord-1")
	if err := enqueue.Call(ctx, "Enqueue", GetOrderReq{ID: "ord-1"}, nil); err != nil {
		t.Fatal(err)
	}

	rctx := &rpc.Ctx{Context: ctx, Method: "test", Service: "test"}
	deadline := time.Now().Add(5 * time.Second)
	for {
		order, found, err := loadOrder(rctx, db, "ord-1")
		if err != nil {
			t.Fatal(err)
		}
		if found && order.Status == StatusRejected {
			t.Fatal("overloaded commit was swallowed into StatusRejected")
		}
		if found && order.Status == StatusCommitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("order still %q after shed retries", order.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The commit is visible before the (one-way) ack necessarily lands at
	// the broker; poll the group backlog to zero rather than snapshot it.
	lagDeadline := time.Now().Add(5 * time.Second)
	for {
		if lag := broker.Topic(orderTopic).GroupLag(orderGroup); lag == 0 {
			break
		} else if time.Now().After(lagDeadline) {
			t.Fatalf("order group not drained: lag=%d", lag)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEnqueueShedsWhenFull pins the consumer on an order whose commit is
// perpetually shed, fills the queue to maxQueueDepth, and expects the next
// Enqueue to surface CodeOverloaded to the caller instead of queueing
// without bound.
func TestEnqueueShedsWhenFull(t *testing.T) {
	_, enqueue, db := bootQueueRig(t, func(int) error {
		return rpc.Errorf(rpc.CodeOverloaded, "catalogue: admission shed")
	})
	ctx := context.Background()
	// ord-0 is real and its commit always sheds: after every redelivery it
	// returns to the queue front, so nothing behind it ever drains.
	queueOrder(t, db, "ord-0")
	if err := enqueue.Call(ctx, "Enqueue", GetOrderReq{ID: "ord-0"}, nil); err != nil {
		t.Fatal(err)
	}
	// Filler IDs must be distinct: Enqueue keys messages by order ID, so a
	// repeated ID dedups broker-side instead of deepening the queue.
	filled := 1
	for i := 1; i < maxQueueDepth; i++ {
		if err := enqueue.Call(ctx, "Enqueue", GetOrderReq{ID: fmt.Sprintf("ord-filler-%d", i)}, nil); err != nil {
			if transport.IsCode(err, transport.CodeOverloaded) {
				break // consumer timing already pushed depth to the cap
			}
			t.Fatal(err)
		}
		filled++
	}
	if filled < maxQueueDepth/2 {
		t.Fatalf("only %d orders enqueued before shed; cap not exercised", filled)
	}
	err := enqueue.Call(ctx, "Enqueue", GetOrderReq{ID: "ord-overflow"}, nil)
	if !transport.IsCode(err, transport.CodeOverloaded) {
		t.Fatalf("enqueue beyond cap = %v, want CodeOverloaded", err)
	}
}
