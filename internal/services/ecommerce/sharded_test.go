package ecommerce

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// bootShardedEcom boots ecommerce with every docstore/kv tier running
// shards×replicas instances behind consistent-hash routing, seeded with the
// standard inventory.
func bootShardedEcom(t *testing.T, app *core.App, shards, replicas int) *Ecommerce {
	t.Helper()
	ec, err := New(app, Config{Shards: shards, ShardReplicas: replicas})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	t.Cleanup(ec.Close)
	items := []Item{
		{ID: "sock-red", Name: "Red Wool Sock", Tags: []string{"socks", "sale"}, PriceCents: 899, WeightGram: 120, Stock: 50},
		{ID: "sock-blue", Name: "Blue Cotton Sock", Tags: []string{"socks"}, PriceCents: 699, WeightGram: 100, Stock: 3},
		{ID: "boot-hike", Name: "Hiking Boot", Tags: []string{"shoes"}, PriceCents: 12999, WeightGram: 1400, Stock: 10},
	}
	if err := ec.SeedItems(items); err != nil {
		t.Fatal(err)
	}
	return ec
}

// TestShardedEndToEnd places an order end to end — cart, payment, queue
// commit, stock decrement — on a 3-shard×2-replica storage layout.
func TestShardedEndToEnd(t *testing.T) {
	app := core.NewApp("ecom-sharded", core.Options{})
	t.Cleanup(func() { app.Close() })
	ec := bootShardedEcom(t, app, 3, 2)
	ctx := context.Background()

	instances := ec.App.Registry.Instances("ecom.db-catalogue")
	if len(instances) != 6 {
		t.Fatalf("db-catalogue has %d instances, want 6", len(instances))
	}
	labels := make(map[string]int)
	for _, inst := range instances {
		labels[inst.Meta[shard.MetaShard]]++
	}
	if len(labels) != 3 {
		t.Fatalf("db-catalogue shard labels = %v, want 3 distinct", labels)
	}

	token := login(t, ec, "shopper", 100000)
	if err := ec.Cart.Call(ctx, "Add", CartAddReq{Username: "shopper", ItemID: "sock-red", Quantity: 2}, nil); err != nil {
		t.Fatal(err)
	}
	var placed PlaceOrderResp
	if err := ec.Orders.Call(ctx, "Place", PlaceOrderReq{Token: token, Shipping: "standard"}, &placed); err != nil {
		t.Fatal(err)
	}
	final, err := ec.WaitForOrder(placed.Order.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCommitted {
		t.Fatalf("status = %s", final.Status)
	}
	var item GetItemResp
	if err := ec.Catalogue.Call(ctx, "Get", GetItemReq{ID: "sock-red"}, &item); err != nil {
		t.Fatal(err)
	}
	if item.Item.Stock != 48 {
		t.Fatalf("stock = %d", item.Item.Stock)
	}
}

// TestShardedSurvivesReplicaFault errors the first replica of each
// db-catalogue shard: with two replicas per shard, item reads fall over to
// the healthy sibling.
func TestShardedSurvivesReplicaFault(t *testing.T) {
	inj := fault.NewInjector(17)
	app := core.NewApp("ecom-sharded-fault", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	ec := bootShardedEcom(t, app, 2, 2)
	ctx := context.Background()

	seen := make(map[string]bool)
	for _, inst := range ec.App.Registry.Instances("ecom.db-catalogue") {
		label := inst.Meta[shard.MetaShard]
		if seen[label] {
			continue
		}
		seen[label] = true
		defer inj.Add(fault.Rule{To: "ecom.db-catalogue", Addr: inst.Addr, ErrCode: rpc.CodeUnavailable})()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var item Item
		err := ec.Frontend.Do(ctx, "GET", "/catalogue/sock-red", nil, &item)
		if err == nil && item.ID == "sock-red" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catalogue read under replica fault: err=%v item=%+v", err, item)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecommendDegrades kills the recommender tier: with degradation on the
// storefront serves an empty Degraded list; with it off the same fault
// fails the request.
func TestRecommendDegrades(t *testing.T) {
	boot := func(t *testing.T, disable bool) (*Ecommerce, *fault.Injector) {
		inj := fault.NewInjector(19)
		app := core.NewApp("ecom-degrade", core.Options{Network: inj.Wrap(rpc.NewMem())})
		t.Cleanup(func() { app.Close() })
		ec, err := New(app, Config{DisableDegradation: disable})
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		t.Cleanup(ec.Close)
		return ec, inj
	}

	t.Run("degraded", func(t *testing.T) {
		ec, inj := boot(t, false)
		token := login(t, ec, "buyer", 1000)
		defer inj.Add(fault.Rule{To: "ecom.recommender", ErrCode: rpc.CodeUnavailable})()
		var recs RecommendationsBody
		if err := ec.Frontend.Do(context.Background(), "GET", "/recommend?token="+token, nil, &recs); err != nil {
			t.Fatalf("degraded recommend should still serve: %v", err)
		}
		if !recs.Degraded || len(recs.Items) != 0 {
			t.Fatalf("recs = %+v, want degraded empty", recs)
		}
	})
	t.Run("failhard", func(t *testing.T) {
		ec, inj := boot(t, true)
		token := login(t, ec, "buyer", 1000)
		defer inj.Add(fault.Rule{To: "ecom.recommender", ErrCode: rpc.CodeUnavailable})()
		if err := ec.Frontend.Do(context.Background(), "GET", "/recommend?token="+token, nil, nil); err == nil {
			t.Fatal("fail-hard mode served recommendations despite fault")
		}
	})
}
