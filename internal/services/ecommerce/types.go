// Package ecommerce implements the suite's E-commerce site (Figure 6 of
// the paper), modeled on the Sockshop application: a REST front-end over a
// catalogue, cart, wishlist, discounts, search, and recommender, with an
// order pipeline — login, shipping selection, payment authorization,
// transaction IDs, invoicing — that serializes committed orders through
// queueMaster and the orderQueue message broker, the scalability
// constraint Section 7 of the paper attributes to this application.
package ecommerce

// Item is a catalogue product.
type Item struct {
	ID         string
	Name       string
	Tags       []string
	PriceCents int64
	WeightGram int64
	Stock      int64
}

// CartLine is one item and quantity in a cart or order.
type CartLine struct {
	ItemID   string
	Quantity int64
}

// ShippingOption is one quoted shipping method.
type ShippingOption struct {
	Method    string
	CostCents int64
	Days      int64
}

// Order is a placed order through its lifecycle.
type Order struct {
	ID            string
	Username      string
	Lines         []CartLine
	ItemsCents    int64
	DiscountCents int64
	ShippingCents int64
	TotalCents    int64
	Shipping      string
	TransactionID string
	InvoiceID     string
	Status        string // "queued" then "committed" or "rejected"
	CreatedAt     int64
}

// Order statuses.
const (
	StatusQueued    = "queued"
	StatusCommitted = "committed"
	StatusRejected  = "rejected"
)

// Invoice is the billing record for an order.
type Invoice struct {
	ID         string
	OrderID    string
	Username   string
	TotalCents int64
	IssuedAt   int64
}
