package ecommerce

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"time"

	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// RegisterUserReq creates an account with an opening balance.
type RegisterUserReq struct {
	Username, Password string
	BalanceCents       int64
}

// LoginReq authenticates.
type LoginReq struct{ Username, Password string }

// LoginResp returns a session token.
type LoginResp struct{ Token string }

// VerifyTokenReq validates a token.
type VerifyTokenReq struct{ Token string }

// VerifyTokenResp identifies the session user.
type VerifyTokenResp struct {
	Username string
	Valid    bool
}

// AccountReq identifies an account.
type AccountReq struct{ Username string }

// BalanceResp returns an account balance.
type BalanceResp struct{ BalanceCents int64 }

// registerAccountInfo installs the login/accountInfo service.
func registerAccountInfo(srv *rpc.Server, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Register", func(ctx *rpc.Ctx, req *RegisterUserReq) (*struct{}, error) {
		if req.Username == "" || req.Password == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "accountInfo: username and password required")
		}
		if _, found, err := db.Get(ctx, "accounts", req.Username); err != nil {
			return nil, err
		} else if found {
			return nil, rpc.Errorf(rpc.CodeConflict, "accountInfo: %q taken", req.Username)
		}
		salt := ecRandomHex(8)
		return nil, db.Put(ctx, "accounts", docstore.Doc{
			ID:     req.Username,
			Fields: map[string]string{"salt": salt, "hash": ecHashPassword(req.Password, salt)},
			Nums:   map[string]int64{"balance": req.BalanceCents},
		})
	})
	svcutil.Handle(srv, "Login", func(ctx *rpc.Ctx, req *LoginReq) (*LoginResp, error) {
		doc, found, err := db.Get(ctx, "accounts", req.Username)
		if err != nil {
			return nil, err
		}
		if !found || ecHashPassword(req.Password, doc.Fields["salt"]) != doc.Fields["hash"] {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "accountInfo: bad credentials")
		}
		token := ecRandomHex(16)
		if err := mc.Set(ctx, "tok:"+token, []byte(req.Username), time.Hour); err != nil {
			return nil, err
		}
		return &LoginResp{Token: token}, nil
	})
	svcutil.Handle(srv, "VerifyToken", func(ctx *rpc.Ctx, req *VerifyTokenReq) (*VerifyTokenResp, error) {
		v, found, err := mc.Get(ctx, "tok:"+req.Token)
		if err != nil {
			return nil, err
		}
		if !found {
			return &VerifyTokenResp{}, nil
		}
		return &VerifyTokenResp{Username: string(v), Valid: true}, nil
	})
	svcutil.Handle(srv, "Balance", func(ctx *rpc.Ctx, req *AccountReq) (*BalanceResp, error) {
		doc, found, err := db.Get(ctx, "accounts", req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("accountInfo: no account %q", req.Username)
		}
		return &BalanceResp{BalanceCents: doc.Nums["balance"]}, nil
	})
	svcutil.Handle(srv, "Debit", func(ctx *rpc.Ctx, req *AuthorizePaymentReq) (*struct{}, error) {
		doc, found, err := db.Get(ctx, "accounts", req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("accountInfo: no account %q", req.Username)
		}
		if doc.Nums["balance"] < req.AmountCents {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "accountInfo: insufficient funds")
		}
		doc.Nums["balance"] -= req.AmountCents
		return nil, db.Put(ctx, "accounts", doc)
	})
}

func ecHashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func ecRandomHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) //nolint:errcheck
	return hex.EncodeToString(b)
}

// RecommendItemsReq asks for items often co-purchased with a user's
// history.
type RecommendItemsReq struct {
	Username string
	Limit    int64
}

// registerRecommender installs the suggested-products engine: a
// co-purchase model computed over committed orders — items that appear in
// orders alongside items the user bought, ranked by co-occurrence count.
func registerRecommender(srv *rpc.Server, orders, catalogue svcutil.Caller) {
	svcutil.Handle(srv, "Recommend", func(ctx *rpc.Ctx, req *RecommendItemsReq) (*ItemsResp, error) {
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 5
		}
		var mine OrdersResp
		if err := orders.Call(ctx, "ByUser", OrdersByUserReq{Username: req.Username}, &mine); err != nil {
			return nil, err
		}
		bought := make(map[string]bool)
		for _, o := range mine.Orders {
			for _, l := range o.Lines {
				bought[l.ItemID] = true
			}
		}
		if len(bought) == 0 {
			return &ItemsResp{}, nil
		}
		// Co-occurrence over the whole catalogue's tag space: recommend
		// items sharing tags with purchases, weighted by overlap.
		var all ItemsResp
		if err := catalogue.Call(ctx, "List", ListItemsReq{Limit: 1000}, &all); err != nil {
			return nil, err
		}
		tagWeight := make(map[string]int)
		for _, it := range all.Items {
			if bought[it.ID] {
				for _, tag := range it.Tags {
					tagWeight[tag]++
				}
			}
		}
		type scored struct {
			item  Item
			score int
		}
		var ranked []scored
		for _, it := range all.Items {
			if bought[it.ID] {
				continue
			}
			score := 0
			for _, tag := range it.Tags {
				score += tagWeight[tag]
			}
			if score > 0 {
				ranked = append(ranked, scored{it, score})
			}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].item.ID < ranked[j].item.ID
		})
		if len(ranked) > limit {
			ranked = ranked[:limit]
		}
		out := make([]Item, len(ranked))
		for i, r := range ranked {
			out[i] = r.item
		}
		return &ItemsResp{Items: out}, nil
	})
}
