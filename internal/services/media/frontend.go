package media

import (
	"sync"

	"dsb/internal/rest"
	"dsb/internal/svcutil"
)

// MoviePage is the composePage aggregation: everything the movie page
// shows, assembled from four tiers in parallel. Degraded marks a page served
// without its reviews because the review tier was unreachable — the
// non-critical hop the page sacrifices rather than failing outright.
type MoviePage struct {
	Movie    Movie        `json:"movie"`
	Plot     string       `json:"plot"`
	Cast     []CastMember `json:"cast"`
	Reviews  []Review     `json:"reviews"`
	Degraded bool         `json:"degraded,omitempty"`
}

// ReviewBody is the POST /reviews request.
type ReviewBody struct {
	Token  string `json:"token"`
	Title  string `json:"title"`
	Text   string `json:"text"`
	Rating int64  `json:"rating"`
}

// RentBody is the POST /rent request.
type RentBody struct {
	Token   string `json:"token"`
	MovieID string `json:"movie_id"`
}

// CredentialsBody is the register/login request.
type CredentialsBody struct {
	Username string `json:"username"`
	Password string `json:"password"`
}

type frontendDeps struct {
	user          svcutil.Caller
	movieID       svcutil.Caller
	movieDB       svcutil.Caller
	plot          svcutil.Caller
	composeReview svcutil.Caller
	movieReview   svcutil.Caller
	userReview    svcutil.Caller
	rent          svcutil.Caller
	recommender   svcutil.Caller
}

// registerFrontend installs the REST front door. GET /movies/{title} is the
// composePage path: movie info, plot, cast, and reviews fetched in parallel
// and merged, as the real service's page composer does. With degrade on, the
// reviews hop is non-critical: a failure there yields a Degraded page
// without reviews instead of an error.
func registerFrontend(srv *rest.Server, d frontendDeps, degrade bool) {
	srv.Handle("POST /register", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		return nil, d.user.Call(ctx, "Register", RegisterUserReq{Username: req.Username, Password: req.Password, BalanceCents: 2000}, nil)
	})
	srv.Handle("POST /login", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp LoginResp
		if err := d.user.Call(ctx, "Login", LoginReq{Username: req.Username, Password: req.Password}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("GET /movies/{title}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var movie GetMovieResp
		if err := d.movieID.Call(ctx, "Resolve", FindByTitleReq{Title: ctx.PathValue("title")}, &movie); err != nil {
			return nil, err
		}
		var page MoviePage
		page.Movie = movie.Movie

		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		wg.Add(3)
		go func() {
			defer wg.Done()
			var plot PlotResp
			if err := d.plot.Call(ctx, "Get", PlotReq{PlotID: movie.Movie.PlotID}, &plot); err != nil {
				fail(err)
				return
			}
			page.Plot = plot.Text
		}()
		go func() {
			defer wg.Done()
			var cast CastResp
			if err := d.movieDB.Call(ctx, "Cast", CastReq{MovieID: movie.Movie.ID}, &cast); err != nil {
				fail(err)
				return
			}
			page.Cast = cast.Cast
		}()
		go func() {
			defer wg.Done()
			var reviews ReviewsResp
			if err := svcutil.CallBounded(ctx, degrade, d.movieReview, "List", ReviewsByMovieReq{MovieID: movie.Movie.ID, Limit: 10}, &reviews); err != nil {
				if !degrade {
					fail(err)
					return
				}
				mu.Lock()
				page.Degraded = true
				mu.Unlock()
				return
			}
			page.Reviews = reviews.Reviews
		}()
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		return page, nil
	})

	srv.Handle("POST /reviews", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req ReviewBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp ComposeReviewResp
		if err := d.composeReview.Call(ctx, "Compose", ComposeReviewReq{
			Token: req.Token, MovieTitle: req.Title, Text: req.Text, Rating: req.Rating,
		}, &resp); err != nil {
			return nil, err
		}
		return resp.Review, nil
	})

	srv.Handle("GET /users/{name}/reviews", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp ReviewsResp
		if err := d.userReview.Call(ctx, "List", ReviewsByUserReq{Username: ctx.PathValue("name"), Limit: 20}, &resp); err != nil {
			return nil, err
		}
		return resp.Reviews, nil
	})

	srv.Handle("POST /rent", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req RentBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp RentResp
		if err := d.rent.Call(ctx, "Rent", RentReq{Token: req.Token, MovieID: req.MovieID}, &resp); err != nil {
			return nil, err
		}
		return resp.Rental, nil
	})

	srv.Handle("GET /recommend", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp MoviesResp
		if err := d.recommender.Call(ctx, "Recommend", RecommendMoviesReq{Token: ctx.Query("token"), Limit: 5}, &resp); err != nil {
			return nil, err
		}
		return resp.Movies, nil
	})
}
