package media

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dsb/internal/blobstore"
	"dsb/internal/core"
	"dsb/internal/mq"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config sizes the deployment.
type Config struct {
	// MovieDBShards and MovieDBReplicas shape the MySQL-equivalent cluster
	// (defaults 2 and 2).
	MovieDBShards, MovieDBReplicas int
	// Shards partitions every db/mc storage tier into this many
	// consistent-hash shards (default 1 = single-instance layout); with
	// Shards > 1 or ShardReplicas > 1 the tiers boot through
	// svcutil.StartShardReplicas and services reach them via shard routers.
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	ShardReplicas int
	// CacheBytes bounds each cache tier (0 = unbounded, the historical
	// layout).
	CacheBytes int64
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire.
	Middleware []transport.Middleware
	// Replicas scales replicable logic tiers out at boot, keyed by tier name.
	Replicas map[string]int
	// DisableDegradation makes the movie page fail hard when the review tier
	// is unreachable instead of serving the page without reviews.
	DisableDegradation bool
	// DisableCoalescing turns off miss coalescing on the review-list read
	// path.
	DisableCoalescing bool
	// AsyncReviews moves composeReview's non-critical follow-ups — the
	// rating-aggregate fold and review-text indexing — off the write path:
	// movieReview publishes a ReviewEvent to the broker tier at Record and
	// returns at broker ack; the "enrich" consumer group applies both behind
	// the write. The review itself is always stored synchronously, so the
	// movie's review list keeps read-your-writes; the aggregate and search
	// index converge within the group's drain time (bounded by DrainReviews
	// in tests).
	AsyncReviews bool
	// ReviewWorkers sizes the enrich consumer tier at boot (default 2).
	// Only meaningful with AsyncReviews.
	ReviewWorkers int
	// Spawner, when set, receives replicable tier boots so the control plane
	// can autoscale them.
	Spawner svcutil.Definer
}

// replicable names the logic tiers safe to run multi-instance: their state
// lives in the db/mc tiers (or the shared movie cluster). composeReview
// stays single-instance — its review IDs derive from a per-process sequence.
var replicable = map[string]bool{
	"movieDB": true, "plot": true, "user": true, "movieID": true,
	"rating": true, "reviewStorage": true, "movieReview": true,
	"userReview": true, "rent": true, "recommender": true,
	// reviewWorker replicas are members of one broker consumer group — they
	// share the partition, so scaling the tier out never double-enriches.
	// reviewSearch stays single-instance: it holds the index in-process.
	"reviewWorker": true,
}

// Media is a running Media Service deployment.
type Media struct {
	App       *core.App
	Frontend  *rest.Client
	Streaming *rest.Client
	Films     *blobstore.Store // movie files, written by SeedMovie

	MovieDB       svcutil.Caller
	ComposeReview svcutil.Caller
	User          svcutil.Caller
	Rent          svcutil.Caller
	ReviewSearch  svcutil.Caller

	// Broker is the message-broker tier behind async review enrichment (nil
	// unless Config.AsyncReviews); exported so tests and experiments can
	// read backlog stats directly across every broker instance.
	Broker *mq.Cluster

	mu      sync.Mutex
	workers []*reviewWorker
}

// DrainReviews blocks until the enrich consumer group's backlog reaches
// zero — every published review event applied and settled — or the timeout
// elapses. This is the convergence bound deterministic tests use before
// asserting the rating aggregate or search index. A nil-broker (sync)
// deployment drains trivially.
func (m *Media) DrainReviews(timeout time.Duration) error {
	if m.Broker == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		lag := m.Broker.GroupLag(reviewTopic, reviewGroup)
		if lag == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("media: review backlog still %d after %v", lag, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the review enrich workers; call before closing the app.
// Synchronous deployments have none and close trivially.
func (m *Media) Close() {
	m.mu.Lock()
	workers := m.workers
	m.workers = nil
	m.mu.Unlock()
	for _, rw := range workers {
		rw.Close()
	}
}

// addWorker records an enrich replica for teardown.
func (m *Media) addWorker(rw *reviewWorker) {
	m.mu.Lock()
	m.workers = append(m.workers, rw)
	m.mu.Unlock()
}

// New boots the Media Service.
func New(app *core.App, cfg Config) (*Media, error) {
	if cfg.MovieDBShards <= 0 {
		cfg.MovieDBShards = 2
	}
	if cfg.MovieDBReplicas <= 0 {
		cfg.MovieDBReplicas = 2
	}

	// The MySQL-equivalent movie cluster keeps its own internal shard/replica
	// shape; the docstore/kv tiers shard through the shared Stack like every
	// other app in the suite.
	movieCluster, err := newMovieCluster(cfg.MovieDBShards, cfg.MovieDBReplicas)
	if err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if cfg.AsyncReviews {
		// The enrich tier's boot size rides the same replica map as every
		// other tier; copy so the caller's map is never mutated.
		replicas = make(map[string]int, len(cfg.Replicas)+1)
		for k, v := range cfg.Replicas {
			replicas[k] = v
		}
		if replicas["reviewWorker"] <= 0 {
			n := cfg.ReviewWorkers
			if n <= 0 {
				n = 2
			}
			replicas["reviewWorker"] = n
		}
	}
	stack := &svcutil.Stack{
		App:           app,
		Prefix:        "media.",
		Shards:        cfg.Shards,
		ShardReplicas: cfg.ShardReplicas,
		CacheBytes:    cfg.CacheBytes,
		Middleware:    cfg.Middleware,
		Replicable:    replicable,
		Replicas:      replicas,
		Spawner:       cfg.Spawner,
	}
	if err := stack.StartStores("db-reviews", "db-users", "db-plots", "db-rentals"); err != nil {
		return nil, err
	}
	if err := stack.StartCaches("mc-reviews", "mc-users"); err != nil {
		return nil, err
	}

	degrade := !cfg.DisableDegradation
	cl, db, mc, start := stack.Caller, stack.DB, stack.KV, stack.Start

	m := &Media{App: app}

	start("movieDB", func(s *rpc.Server) { registerMovieDB(s, movieCluster) })
	start("plot", func(s *rpc.Server) {
		registerPlot(s, db("plot", "db-plots"))
	})
	start("user", func(s *rpc.Server) {
		registerUser(s, db("user", "db-users"), mc("user", "mc-users"))
	})
	start("movieID", func(s *rpc.Server) {
		registerMovieID(s, cl("movieID", "movieDB"))
	})
	start("rating", registerRating)
	start("reviewStorage", func(s *rpc.Server) {
		registerReviewStorage(s, db("reviewStorage", "db-reviews"), mc("reviewStorage", "mc-reviews"), cfg.DisableCoalescing)
	})
	// The review text index boots before movieReview (its synchronous-mode
	// downstream) and before the enrich workers that feed it asynchronously.
	start("reviewSearch", registerReviewSearch)
	// The broker tier boots just before movieReview when enrichment is
	// async: its configure hook declares the review topic and subscribes the
	// enrich group, so no publish misses the group.
	if cfg.AsyncReviews {
		m.Broker = stack.StartBroker("broker", ConfigureReviewBroker)
	}
	start("movieReview", func(s *rpc.Server) {
		var bus mq.Bus
		if cfg.AsyncReviews {
			bus = stack.MQ("movieReview", "broker")
		}
		registerMovieReview(s, cl("movieReview", "reviewStorage"),
			cl("movieReview", "movieDB"), cl("movieReview", "reviewSearch"), bus)
	})
	if cfg.AsyncReviews {
		start("reviewWorker", func(s *rpc.Server) {
			m.addWorker(registerReviewWorker(s,
				stack.MQ("reviewWorker", "broker"),
				cl("reviewWorker", "movieDB"),
				cl("reviewWorker", "reviewSearch")))
		})
	}
	start("userReview", func(s *rpc.Server) {
		registerUserReview(s, cl("userReview", "reviewStorage"))
	})
	start("composeReview", func(s *rpc.Server) {
		registerComposeReview(s, composeReviewDeps{
			user:        cl("composeReview", "user"),
			movieID:     cl("composeReview", "movieID"),
			rating:      cl("composeReview", "rating"),
			movieReview: cl("composeReview", "movieReview"),
			now:         cfg.Clock,
		})
	})
	start("rent", func(s *rpc.Server) {
		registerRent(s, cl("rent", "user"), db("rent", "db-rentals"), cfg.Clock)
	})
	start("recommender", func(s *rpc.Server) {
		registerRecommender(s, cl("recommender", "user"), cl("recommender", "userReview"), cl("recommender", "movieDB"))
	})
	if err := stack.Boot(); err != nil {
		return nil, fmt.Errorf("media: boot: %w", err)
	}
	// Stop the enrich workers on app teardown even when the caller never
	// calls Media.Close: their long polls must not outlive the stack.
	app.OnClose(m.Close)

	// Streaming tier (nginx-hls) with its NFS-equivalent blob store.
	films := blobstore.New()
	if _, err := app.StartREST("media.streaming", func(s *rest.Server) {
		registerStreaming(s, films, cl("streaming", "rent"))
	}); err != nil {
		return nil, err
	}
	if _, err := app.StartREST("media.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			user:          cl("frontend", "user"),
			movieID:       cl("frontend", "movieID"),
			movieDB:       cl("frontend", "movieDB"),
			plot:          cl("frontend", "plot"),
			composeReview: cl("frontend", "composeReview"),
			movieReview:   cl("frontend", "movieReview"),
			userReview:    cl("frontend", "userReview"),
			rent:          cl("frontend", "rent"),
			recommender:   cl("frontend", "recommender"),
		}, degrade)
	}); err != nil {
		return nil, err
	}

	m.Films = films
	if m.Frontend, err = app.REST("client", "media.frontend"); err != nil {
		return nil, err
	}
	if m.Streaming, err = app.REST("client", "media.streaming"); err != nil {
		return nil, err
	}
	if m.MovieDB, err = app.RPC("client", "media.movieDB"); err != nil {
		return nil, err
	}
	if m.ComposeReview, err = app.RPC("client", "media.composeReview"); err != nil {
		return nil, err
	}
	if m.User, err = app.RPC("client", "media.user"); err != nil {
		return nil, err
	}
	if m.Rent, err = app.RPC("client", "media.rent"); err != nil {
		return nil, err
	}
	if m.ReviewSearch, err = app.RPC("client", "media.reviewSearch"); err != nil {
		return nil, err
	}
	return m, nil
}

// SeedMovie inserts a movie (metadata, plot, cast) and stores its file in
// the blob store for streaming.
func (m *Media) SeedMovie(movie Movie, plot string, cast []CastMember, file []byte) error {
	ctx, cancel := contextWithTimeout()
	defer cancel()
	if movie.PlotID == "" {
		movie.PlotID = "plot-" + movie.ID
	}
	if err := m.MovieDB.Call(ctx, "Add", AddMovieReq{Movie: movie, Cast: cast}, nil); err != nil {
		return err
	}
	plotClient, err := m.App.RPC("seeder", "media.plot")
	if err != nil {
		return err
	}
	if err := plotClient.Call(ctx, "Put", PutPlotReq{PlotID: movie.PlotID, Text: plot}, nil); err != nil {
		return err
	}
	if len(file) > 0 {
		if _, err := m.Films.Put(movie.ID, file); err != nil {
			return err
		}
	}
	return nil
}

func contextWithTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}
