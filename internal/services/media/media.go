package media

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/blobstore"
	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// Config sizes the deployment.
type Config struct {
	// MovieDBShards and MovieDBReplicas shape the MySQL-equivalent cluster
	// (defaults 2 and 2).
	MovieDBShards, MovieDBReplicas int
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
}

// Media is a running Media Service deployment.
type Media struct {
	App       *core.App
	Frontend  *rest.Client
	Streaming *rest.Client
	Films     *blobstore.Store // movie files, written by SeedMovie

	MovieDB       svcutil.Caller
	ComposeReview svcutil.Caller
	User          svcutil.Caller
	Rent          svcutil.Caller
}

// New boots the Media Service.
func New(app *core.App, cfg Config) (*Media, error) {
	if cfg.MovieDBShards <= 0 {
		cfg.MovieDBShards = 2
	}
	if cfg.MovieDBReplicas <= 0 {
		cfg.MovieDBReplicas = 2
	}

	// Storage tiers.
	movieCluster, err := newMovieCluster(cfg.MovieDBShards, cfg.MovieDBReplicas)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"db-reviews", "db-users", "db-plots", "db-rentals"} {
		store := docstore.NewStore()
		if _, err := app.StartRPC("media."+name, func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"mc-reviews", "mc-users"} {
		cache := kv.New(0)
		if _, err := app.StartRPC("media."+name, func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return nil, err
		}
	}

	cl := func(caller, target string) (svcutil.Caller, error) {
		return app.RPC("media."+caller, "media."+target)
	}
	must := func(c svcutil.Caller, err error) svcutil.Caller {
		if err != nil {
			panic(err)
		}
		return c
	}
	type stage struct {
		name     string
		register func(*rpc.Server)
	}
	stages := []stage{
		{"movieDB", func(s *rpc.Server) { registerMovieDB(s, movieCluster) }},
		{"plot", func(s *rpc.Server) {
			registerPlot(s, svcutil.DB{C: must(cl("plot", "db-plots"))})
		}},
		{"user", func(s *rpc.Server) {
			registerUser(s, svcutil.DB{C: must(cl("user", "db-users"))}, svcutil.KV{C: must(cl("user", "mc-users"))})
		}},
		{"movieID", func(s *rpc.Server) {
			registerMovieID(s, must(cl("movieID", "movieDB")))
		}},
		{"rating", registerRating},
		{"reviewStorage", func(s *rpc.Server) {
			registerReviewStorage(s, svcutil.DB{C: must(cl("reviewStorage", "db-reviews"))}, svcutil.KV{C: must(cl("reviewStorage", "mc-reviews"))})
		}},
		{"movieReview", func(s *rpc.Server) {
			registerMovieReview(s, must(cl("movieReview", "reviewStorage")), must(cl("movieReview", "movieDB")))
		}},
		{"userReview", func(s *rpc.Server) {
			registerUserReview(s, must(cl("userReview", "reviewStorage")))
		}},
		{"composeReview", func(s *rpc.Server) {
			registerComposeReview(s, composeReviewDeps{
				user:        must(cl("composeReview", "user")),
				movieID:     must(cl("composeReview", "movieID")),
				rating:      must(cl("composeReview", "rating")),
				movieReview: must(cl("composeReview", "movieReview")),
				now:         cfg.Clock,
			})
		}},
		{"rent", func(s *rpc.Server) {
			registerRent(s, must(cl("rent", "user")), svcutil.DB{C: must(cl("rent", "db-rentals"))}, cfg.Clock)
		}},
		{"recommender", func(s *rpc.Server) {
			registerRecommender(s, must(cl("recommender", "user")), must(cl("recommender", "userReview")), must(cl("recommender", "movieDB")))
		}},
	}
	for _, st := range stages {
		if _, err := app.StartRPC("media."+st.name, st.register); err != nil {
			return nil, fmt.Errorf("media: start %s: %w", st.name, err)
		}
	}

	// Streaming tier (nginx-hls) with its NFS-equivalent blob store.
	films := blobstore.New()
	if _, err := app.StartREST("media.streaming", func(s *rest.Server) {
		registerStreaming(s, films, must(cl("streaming", "rent")))
	}); err != nil {
		return nil, err
	}
	if _, err := app.StartREST("media.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			user:          must(cl("frontend", "user")),
			movieID:       must(cl("frontend", "movieID")),
			movieDB:       must(cl("frontend", "movieDB")),
			plot:          must(cl("frontend", "plot")),
			composeReview: must(cl("frontend", "composeReview")),
			movieReview:   must(cl("frontend", "movieReview")),
			userReview:    must(cl("frontend", "userReview")),
			rent:          must(cl("frontend", "rent")),
			recommender:   must(cl("frontend", "recommender")),
		})
	}); err != nil {
		return nil, err
	}

	m := &Media{App: app, Films: films}
	if m.Frontend, err = app.REST("client", "media.frontend"); err != nil {
		return nil, err
	}
	if m.Streaming, err = app.REST("client", "media.streaming"); err != nil {
		return nil, err
	}
	if m.MovieDB, err = app.RPC("client", "media.movieDB"); err != nil {
		return nil, err
	}
	if m.ComposeReview, err = app.RPC("client", "media.composeReview"); err != nil {
		return nil, err
	}
	if m.User, err = app.RPC("client", "media.user"); err != nil {
		return nil, err
	}
	if m.Rent, err = app.RPC("client", "media.rent"); err != nil {
		return nil, err
	}
	return m, nil
}

// SeedMovie inserts a movie (metadata, plot, cast) and stores its file in
// the blob store for streaming.
func (m *Media) SeedMovie(movie Movie, plot string, cast []CastMember, file []byte) error {
	ctx, cancel := contextWithTimeout()
	defer cancel()
	if movie.PlotID == "" {
		movie.PlotID = "plot-" + movie.ID
	}
	if err := m.MovieDB.Call(ctx, "Add", AddMovieReq{Movie: movie, Cast: cast}, nil); err != nil {
		return err
	}
	plotClient, err := m.App.RPC("seeder", "media.plot")
	if err != nil {
		return err
	}
	if err := plotClient.Call(ctx, "Put", PutPlotReq{PlotID: movie.PlotID, Text: plot}, nil); err != nil {
		return err
	}
	if len(file) > 0 {
		if _, err := m.Films.Put(movie.ID, file); err != nil {
			return err
		}
	}
	return nil
}

func contextWithTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}
