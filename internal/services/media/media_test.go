package media

import (
	"context"
	"encoding/base64"
	"hash/crc32"
	"testing"

	"dsb/internal/core"
	"dsb/internal/rpc"
)

func bootMedia(t *testing.T) *Media {
	t.Helper()
	app := core.NewApp("media-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	m, err := New(app, Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	film := make([]byte, 600<<10) // ~600KB "movie" spanning 3 chunks
	for i := range film {
		film[i] = byte(i * 7)
	}
	movies := []struct {
		m    Movie
		plot string
	}{
		{Movie{ID: "mv-1", Title: "The Heap", Year: 2019, Genre: "drama"}, "A memory allocator falls in love."},
		{Movie{ID: "mv-2", Title: "Goroutine", Year: 2021, Genre: "thriller"}, "Ten thousand threads, one scheduler."},
		{Movie{ID: "mv-3", Title: "Deadlock", Year: 2020, Genre: "thriller"}, "Two mutexes, no way out."},
	}
	for _, mv := range movies {
		cast := []CastMember{{Actor: "A. Pointer", Role: "lead"}, {Actor: "B. Slice", Role: "support"}}
		var file []byte
		if mv.m.ID == "mv-1" {
			file = film
		}
		if err := m.SeedMovie(mv.m, mv.plot, cast, file); err != nil {
			t.Fatalf("seed %s: %v", mv.m.ID, err)
		}
	}
	return m
}

func register(t *testing.T, m *Media, user string) string {
	t.Helper()
	ctx := context.Background()
	if err := m.User.Call(ctx, "Register", RegisterUserReq{Username: user, Password: "pw", BalanceCents: 1000}, nil); err != nil {
		t.Fatal(err)
	}
	var login LoginResp
	if err := m.User.Call(ctx, "Login", LoginReq{Username: user, Password: "pw"}, &login); err != nil {
		t.Fatal(err)
	}
	return login.Token
}

func TestMoviePageAggregation(t *testing.T) {
	m := bootMedia(t)
	var page MoviePage
	if err := m.Frontend.Do(context.Background(), "GET", "/movies/The Heap", nil, &page); err != nil {
		t.Fatal(err)
	}
	if page.Movie.ID != "mv-1" || page.Plot == "" || len(page.Cast) != 2 {
		t.Fatalf("page = %+v", page)
	}
	if err := m.Frontend.Do(context.Background(), "GET", "/movies/Nope", nil, nil); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("missing movie: %v", err)
	}
}

func TestComposeReviewUpdatesAggregate(t *testing.T) {
	m := bootMedia(t)
	token := register(t, m, "critic")
	ctx := context.Background()
	var resp ComposeReviewResp
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{
		Token: token, MovieTitle: "Goroutine", Text: "gripping!", Rating: 9,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Review.MovieID != "mv-2" || resp.Review.Username != "critic" {
		t.Fatalf("review = %+v", resp.Review)
	}
	var movie GetMovieResp
	if err := m.MovieDB.Call(ctx, "Get", GetMovieReq{ID: "mv-2"}, &movie); err != nil {
		t.Fatal(err)
	}
	if movie.Movie.NumRating != 1 || movie.Movie.AvgRating != 9 {
		t.Fatalf("aggregate = %+v", movie.Movie)
	}
	// Page shows the review.
	var page MoviePage
	if err := m.Frontend.Do(ctx, "GET", "/movies/Goroutine", nil, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Reviews) != 1 || page.Reviews[0].Text != "gripping!" {
		t.Fatalf("page reviews = %+v", page.Reviews)
	}
	// Validation failures.
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{Token: token, MovieTitle: "Goroutine", Text: "", Rating: 5}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("empty text: %v", err)
	}
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{Token: token, MovieTitle: "Goroutine", Text: "x", Rating: 11}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("rating 11: %v", err)
	}
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{Token: "bogus", MovieTitle: "Goroutine", Text: "x", Rating: 5}, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("bad token: %v", err)
	}
}

func TestRentChargesAndStreams(t *testing.T) {
	m := bootMedia(t)
	token := register(t, m, "viewer")
	ctx := context.Background()

	var rent RentResp
	if err := m.Rent.Call(ctx, "Rent", RentReq{Token: token, MovieID: "mv-1"}, &rent); err != nil {
		t.Fatal(err)
	}
	var bal BalanceResp
	if err := m.User.Call(ctx, "Balance", BalanceReq{Username: "viewer"}, &bal); err != nil {
		t.Fatal(err)
	}
	if bal.BalanceCents != 1000-rentalPriceCents {
		t.Fatalf("balance = %d", bal.BalanceCents)
	}

	// Stream the whole movie through the HLS tier and verify integrity.
	var manifest ManifestBody
	if err := m.Streaming.Do(ctx, "GET", "/stream/mv-1/manifest?lease="+rent.Rental.Token, nil, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Segments == 0 {
		t.Fatalf("manifest = %+v", manifest)
	}
	var assembled []byte
	for i := 0; i < manifest.Segments; i++ {
		var seg SegmentBody
		path := "/stream/mv-1/segment/" + itoa(i) + "?lease=" + rent.Rental.Token
		if err := m.Streaming.Do(ctx, "GET", path, nil, &seg); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		data, err := base64.StdEncoding.DecodeString(seg.Data)
		if err != nil {
			t.Fatal(err)
		}
		assembled = append(assembled, data...)
	}
	if int64(len(assembled)) != manifest.Size || crc32.ChecksumIEEE(assembled) != manifest.Checksum {
		t.Fatalf("stream corrupt: %d bytes, checksum mismatch", len(assembled))
	}

	// No lease, no stream.
	if err := m.Streaming.Do(ctx, "GET", "/stream/mv-1/manifest?lease=none", nil, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("bad lease: %v", err)
	}
	// Lease bound to a different movie fails.
	if err := m.Streaming.Do(ctx, "GET", "/stream/mv-2/manifest?lease="+rent.Rental.Token, nil, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("cross-movie lease: %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestInsufficientFunds(t *testing.T) {
	m := bootMedia(t)
	ctx := context.Background()
	if err := m.User.Call(ctx, "Register", RegisterUserReq{Username: "broke", Password: "pw", BalanceCents: 10}, nil); err != nil {
		t.Fatal(err)
	}
	var login LoginResp
	if err := m.User.Call(ctx, "Login", LoginReq{Username: "broke", Password: "pw"}, &login); err != nil {
		t.Fatal(err)
	}
	err := m.Rent.Call(ctx, "Rent", RentReq{Token: login.Token, MovieID: "mv-1"}, nil)
	if !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("broke rent: %v", err)
	}
}

func TestRecommenderPrefersLikedGenre(t *testing.T) {
	m := bootMedia(t)
	token := register(t, m, "fan")
	ctx := context.Background()
	// Loves thrillers (Goroutine: 10), hates drama (The Heap: 1).
	for _, r := range []struct {
		title  string
		rating int64
	}{{"Goroutine", 10}, {"The Heap", 1}} {
		if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{Token: token, MovieTitle: r.title, Text: "review", Rating: r.rating}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var recs []Movie
	if err := m.Frontend.Do(ctx, "GET", "/recommend?token="+token, nil, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// Deadlock (unseen thriller) must be recommended first.
	if recs[0].ID != "mv-3" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestFrontendRegisterLoginReviewFlow(t *testing.T) {
	m := bootMedia(t)
	ctx := context.Background()
	if err := m.Frontend.Do(ctx, "POST", "/register", CredentialsBody{Username: "rest-user", Password: "pw"}, nil); err != nil {
		t.Fatal(err)
	}
	var login LoginResp
	if err := m.Frontend.Do(ctx, "POST", "/login", CredentialsBody{Username: "rest-user", Password: "pw"}, &login); err != nil {
		t.Fatal(err)
	}
	var review Review
	if err := m.Frontend.Do(ctx, "POST", "/reviews", ReviewBody{Token: login.Token, Title: "Deadlock", Text: "tense", Rating: 8}, &review); err != nil {
		t.Fatal(err)
	}
	var mine []Review
	if err := m.Frontend.Do(ctx, "GET", "/users/rest-user/reviews", nil, &mine); err != nil {
		t.Fatal(err)
	}
	if len(mine) != 1 || mine[0].ID != review.ID {
		t.Fatalf("user reviews = %+v", mine)
	}
	// Rent over REST.
	var rental Rental
	if err := m.Frontend.Do(ctx, "POST", "/rent", RentBody{Token: login.Token, MovieID: "mv-3"}, &rental); err != nil {
		t.Fatal(err)
	}
	if rental.MovieID != "mv-3" || rental.Token == "" {
		t.Fatalf("rental = %+v", rental)
	}
}

func TestMovieDBShardFaultTolerance(t *testing.T) {
	// With 2 replicas per shard, marking one replica slow must not lose
	// reads (the Fig 22c monolith-DB story).
	cluster, err := newMovieCluster(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id := "m" + itoa(i)
		if err := cluster.Insert("movies", map[string]string{
			"id": id, "title": "t" + itoa(i), "year": "2000", "genre": "g",
			"plot_id": "p", "rating_sum": "0", "rating_count": "0",
		}, id); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < cluster.Shards(); s++ {
		if err := cluster.MarkSlow(s, 0, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := cluster.Get("movies", "m"+itoa(i)); err != nil {
			t.Fatalf("read with slow replicas: %v", err)
		}
	}
}
