package media

import (
	"strconv"

	"dsb/internal/rpc"
	"dsb/internal/sqlstore"
	"dsb/internal/svcutil"
)

// MovieDB wire types.

// AddMovieReq inserts a movie with its cast.
type AddMovieReq struct {
	Movie Movie
	Cast  []CastMember
}

// GetMovieReq fetches a movie by ID.
type GetMovieReq struct{ ID string }

// GetMovieResp returns the movie.
type GetMovieResp struct{ Movie Movie }

// FindByTitleReq resolves a title to its movie.
type FindByTitleReq struct{ Title string }

// ByGenreReq lists movies in a genre.
type ByGenreReq struct {
	Genre string
	Limit int64
}

// MoviesResp returns movie records.
type MoviesResp struct{ Movies []Movie }

// CastReq fetches a movie's cast.
type CastReq struct{ MovieID string }

// CastResp returns cast members.
type CastResp struct{ Cast []CastMember }

// RateMovieReq folds a new rating into the aggregate.
type RateMovieReq struct {
	MovieID string
	Rating  int64
}

// newMovieCluster creates the sharded+replicated MovieDB with its schemas.
func newMovieCluster(shards, replicas int) (*sqlstore.Cluster, error) {
	c := sqlstore.NewCluster(shards, replicas)
	if err := c.CreateTable(sqlstore.Schema{
		Name:       "movies",
		PrimaryKey: "id",
		Columns:    []string{"id", "title", "year", "genre", "plot_id", "rating_sum", "rating_count"},
		Indexed:    []string{"title", "genre"},
	}); err != nil {
		return nil, err
	}
	if err := c.CreateTable(sqlstore.Schema{
		Name:       "cast",
		PrimaryKey: "id",
		Columns:    []string{"id", "movie_id", "actor", "role"},
		Indexed:    []string{"movie_id"},
	}); err != nil {
		return nil, err
	}
	return c, nil
}

func rowToMovie(r sqlstore.Row) Movie {
	year, _ := strconv.ParseInt(r["year"], 10, 64)
	sum, _ := strconv.ParseInt(r["rating_sum"], 10, 64)
	count, _ := strconv.ParseInt(r["rating_count"], 10, 64)
	m := Movie{
		ID: r["id"], Title: r["title"], Year: year,
		Genre: r["genre"], PlotID: r["plot_id"], NumRating: count,
	}
	if count > 0 {
		m.AvgRating = float64(sum) / float64(count)
	}
	return m
}

// registerMovieDB exposes the MovieDB cluster as an RPC microservice.
func registerMovieDB(srv *rpc.Server, db *sqlstore.Cluster) {
	svcutil.Handle(srv, "Add", func(ctx *rpc.Ctx, req *AddMovieReq) (*struct{}, error) {
		m := req.Movie
		if m.ID == "" || m.Title == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "movieDB: movie needs ID and title")
		}
		row := sqlstore.Row{
			"id": m.ID, "title": m.Title, "year": strconv.FormatInt(m.Year, 10),
			"genre": m.Genre, "plot_id": m.PlotID,
			"rating_sum": "0", "rating_count": "0",
		}
		if err := db.Insert("movies", row, m.ID); err != nil {
			return nil, err
		}
		for i, c := range req.Cast {
			id := m.ID + "-cast-" + strconv.Itoa(i)
			crow := sqlstore.Row{"id": id, "movie_id": m.ID, "actor": c.Actor, "role": c.Role}
			if err := db.Insert("cast", crow, id); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *GetMovieReq) (*GetMovieResp, error) {
		row, err := db.Get("movies", req.ID)
		if err != nil {
			return nil, err
		}
		return &GetMovieResp{Movie: rowToMovie(row)}, nil
	})

	svcutil.Handle(srv, "FindByTitle", func(ctx *rpc.Ctx, req *FindByTitleReq) (*GetMovieResp, error) {
		rows, err := db.SelectAll("movies", "title", req.Title, 1)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, rpc.NotFoundf("movieDB: no movie titled %q", req.Title)
		}
		return &GetMovieResp{Movie: rowToMovie(rows[0])}, nil
	})

	svcutil.Handle(srv, "ByGenre", func(ctx *rpc.Ctx, req *ByGenreReq) (*MoviesResp, error) {
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 20
		}
		rows, err := db.SelectAll("movies", "genre", req.Genre, limit)
		if err != nil {
			return nil, err
		}
		out := make([]Movie, 0, len(rows))
		for _, r := range rows {
			out = append(out, rowToMovie(r))
		}
		return &MoviesResp{Movies: out}, nil
	})

	svcutil.Handle(srv, "Cast", func(ctx *rpc.Ctx, req *CastReq) (*CastResp, error) {
		rows, err := db.SelectAll("cast", "movie_id", req.MovieID, 0)
		if err != nil {
			return nil, err
		}
		out := make([]CastMember, 0, len(rows))
		for _, r := range rows {
			out = append(out, CastMember{MovieID: r["movie_id"], Actor: r["actor"], Role: r["role"]})
		}
		return &CastResp{Cast: out}, nil
	})

	svcutil.Handle(srv, "Rate", func(ctx *rpc.Ctx, req *RateMovieReq) (*struct{}, error) {
		if req.Rating < 0 || req.Rating > 10 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "movieDB: rating %d out of range", req.Rating)
		}
		err := db.Update("movies", req.MovieID, func(r sqlstore.Row) sqlstore.Row {
			sum, _ := strconv.ParseInt(r["rating_sum"], 10, 64)
			count, _ := strconv.ParseInt(r["rating_count"], 10, 64)
			r["rating_sum"] = strconv.FormatInt(sum+req.Rating, 10)
			r["rating_count"] = strconv.FormatInt(count+1, 10)
			return r
		})
		return nil, err
	})
}

// PlotReq fetches a movie plot.
type PlotReq struct{ PlotID string }

// PlotResp returns the plot text.
type PlotResp struct{ Text string }

// PutPlotReq stores a plot.
type PutPlotReq struct {
	PlotID string
	Text   string
}

// registerPlot installs the plot service over its document store.
func registerPlot(srv *rpc.Server, db svcutil.DB) {
	svcutil.Handle(srv, "Put", func(ctx *rpc.Ctx, req *PutPlotReq) (*struct{}, error) {
		if req.PlotID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "plot: ID required")
		}
		return nil, db.Put(ctx, "plots", docstoreDoc(req.PlotID, []byte(req.Text)))
	})
	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *PlotReq) (*PlotResp, error) {
		doc, found, err := db.Get(ctx, "plots", req.PlotID)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("plot: no plot %q", req.PlotID)
		}
		return &PlotResp{Text: string(doc.Body)}, nil
	})
}
