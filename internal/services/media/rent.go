package media

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// User-service wire types (login mirrors the Social Network's user tier but
// additionally tracks an account balance for rentals).

// RegisterUserReq creates an account with an opening balance.
type RegisterUserReq struct {
	Username, Password string
	BalanceCents       int64
}

// LoginReq authenticates.
type LoginReq struct{ Username, Password string }

// LoginResp returns a session token.
type LoginResp struct{ Token string }

// VerifyTokenReq validates a token.
type VerifyTokenReq struct{ Token string }

// VerifyTokenResp identifies the session user.
type VerifyTokenResp struct {
	Username string
	Valid    bool
}

// BalanceReq fetches an account balance.
type BalanceReq struct{ Username string }

// BalanceResp returns the balance.
type BalanceResp struct{ BalanceCents int64 }

// ChargeReq debits an account (payment authentication module).
type ChargeReq struct {
	Username    string
	AmountCents int64
}

// registerUser installs the media login/userInfo service.
func registerUser(srv *rpc.Server, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Register", func(ctx *rpc.Ctx, req *RegisterUserReq) (*struct{}, error) {
		if req.Username == "" || req.Password == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "user: username and password required")
		}
		if _, found, err := db.Get(ctx, "users", req.Username); err != nil {
			return nil, err
		} else if found {
			return nil, rpc.Errorf(rpc.CodeConflict, "user: %q taken", req.Username)
		}
		salt := randomHex(8)
		return nil, db.Put(ctx, "users", docstore.Doc{
			ID:     req.Username,
			Fields: map[string]string{"salt": salt, "hash": hashPassword(req.Password, salt)},
			Nums:   map[string]int64{"balance": req.BalanceCents},
		})
	})
	svcutil.Handle(srv, "Login", func(ctx *rpc.Ctx, req *LoginReq) (*LoginResp, error) {
		doc, found, err := db.Get(ctx, "users", req.Username)
		if err != nil {
			return nil, err
		}
		if !found || hashPassword(req.Password, doc.Fields["salt"]) != doc.Fields["hash"] {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "user: bad credentials")
		}
		token := randomHex(16)
		if err := mc.Set(ctx, "tok:"+token, []byte(req.Username), time.Hour); err != nil {
			return nil, err
		}
		return &LoginResp{Token: token}, nil
	})
	svcutil.Handle(srv, "VerifyToken", func(ctx *rpc.Ctx, req *VerifyTokenReq) (*VerifyTokenResp, error) {
		v, found, err := mc.Get(ctx, "tok:"+req.Token)
		if err != nil {
			return nil, err
		}
		if !found {
			return &VerifyTokenResp{}, nil
		}
		return &VerifyTokenResp{Username: string(v), Valid: true}, nil
	})
	svcutil.Handle(srv, "Balance", func(ctx *rpc.Ctx, req *BalanceReq) (*BalanceResp, error) {
		doc, found, err := db.Get(ctx, "users", req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("user: no user %q", req.Username)
		}
		return &BalanceResp{BalanceCents: doc.Nums["balance"]}, nil
	})
	svcutil.Handle(srv, "Charge", func(ctx *rpc.Ctx, req *ChargeReq) (*BalanceResp, error) {
		if req.AmountCents <= 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "user: charge must be positive")
		}
		doc, found, err := db.Get(ctx, "users", req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("user: no user %q", req.Username)
		}
		if doc.Nums["balance"] < req.AmountCents {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "user: insufficient funds")
		}
		doc.Nums["balance"] -= req.AmountCents
		if err := db.Put(ctx, "users", doc); err != nil {
			return nil, err
		}
		return &BalanceResp{BalanceCents: doc.Nums["balance"]}, nil
	})
}

func hashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) //nolint:errcheck
	return hex.EncodeToString(b)
}

// RentReq rents a movie for streaming.
type RentReq struct {
	Token   string
	MovieID string
}

// RentResp returns the streaming lease.
type RentResp struct{ Rental Rental }

// ValidateLeaseReq checks a streaming token.
type ValidateLeaseReq struct {
	Token   string
	MovieID string
}

// ValidateLeaseResp reports lease validity.
type ValidateLeaseResp struct{ Valid bool }

const (
	rentalPriceCents = 399
	rentalPeriod     = 48 * time.Hour
)

// registerRent installs the rent service: payment authentication (balance
// check + debit) followed by issuing a time-bounded streaming lease the
// video streaming tier validates per segment.
func registerRent(srv *rpc.Server, user svcutil.Caller, db svcutil.DB, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	svcutil.Handle(srv, "Rent", func(ctx *rpc.Ctx, req *RentReq) (*RentResp, error) {
		var auth VerifyTokenResp
		if err := user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "rent: invalid token")
		}
		if err := user.Call(ctx, "Charge", ChargeReq{Username: auth.Username, AmountCents: rentalPriceCents}, nil); err != nil {
			return nil, err
		}
		r := Rental{
			Username:   auth.Username,
			MovieID:    req.MovieID,
			Token:      randomHex(12),
			ExpiresAt:  now().Add(rentalPeriod).UnixNano(),
			PriceCents: rentalPriceCents,
		}
		body, err := codec.Marshal(r)
		if err != nil {
			return nil, err
		}
		if err := db.Put(ctx, "rentals", docstore.Doc{ID: r.Token, Nums: map[string]int64{"exp": r.ExpiresAt}, Body: body}); err != nil {
			return nil, err
		}
		return &RentResp{Rental: r}, nil
	})
	svcutil.Handle(srv, "ValidateLease", func(ctx *rpc.Ctx, req *ValidateLeaseReq) (*ValidateLeaseResp, error) {
		doc, found, err := db.Get(ctx, "rentals", req.Token)
		if err != nil {
			return nil, err
		}
		if !found {
			return &ValidateLeaseResp{}, nil
		}
		var r Rental
		if err := codec.Unmarshal(doc.Body, &r); err != nil {
			return nil, err
		}
		valid := r.MovieID == req.MovieID && now().UnixNano() < r.ExpiresAt
		return &ValidateLeaseResp{Valid: valid}, nil
	})
}
