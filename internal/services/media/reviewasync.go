package media

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"dsb/internal/codec"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// Async review enrichment: composeReview's critical write is the review
// itself (reviewStorage keeps read-your-writes on the movie's review list),
// but the Record path also carries two non-critical follow-ups — folding
// the rating into MovieDB's aggregate and indexing the review text for
// search. With Config.AsyncReviews those leave the write path: movieReview
// publishes a ReviewEvent to the broker tier at Record and returns at
// broker ack; the "enrich" consumer group applies both behind the write.
// DrainReviews bounds the convergence window for deterministic tests.

// reviewTopic and reviewGroup name the broker topic review events flow
// through and the consumer group that enriches them.
const (
	reviewTopic = "reviews"
	reviewGroup = "enrich"
)

// reviewMaxAttempts dead-letters a review event after this many failed
// enrichments so one poisoned event cannot stall the aggregate pipeline.
const reviewMaxAttempts = 8

// reviewLease bounds one enrichment attempt before the broker assumes the
// worker died and redelivers.
const reviewLease = 30 * time.Second

// reviewPoll bounds each worker long-poll; it is also the worst-case delay
// between Close and a parked worker noticing.
const reviewPoll = 250 * time.Millisecond

// ConfigureReviewBroker declares the review topic and subscribes the enrich
// group — it must run at broker boot, before composeReview starts, so no
// publish misses the group.
func ConfigureReviewBroker(b *mq.Broker) {
	t := b.Topic(reviewTopic)
	t.Configure(mq.QueueConfig{MaxAttempts: reviewMaxAttempts})
	t.Subscribe(reviewGroup)
}

// SearchReviewsReq queries the review text index: reviews whose text
// contains every term of Query (case-insensitive), optionally restricted to
// one movie.
type SearchReviewsReq struct {
	Query   string
	MovieID string
	Limit   int64
}

// SearchReviewsResp returns matching review IDs, sorted.
type SearchReviewsResp struct{ IDs []string }

// IndexReviewReq adds one review to the text index.
type IndexReviewReq struct{ Review Review }

// registerReviewSearch installs the reviewSearch service: an inverted index
// over review text (the Elasticsearch role in media pipelines). Indexing is
// idempotent per review ID — re-indexing a redelivered event is a no-op —
// which is what lets the enrich group run at-least-once.
func registerReviewSearch(srv *rpc.Server) {
	var (
		mu    sync.Mutex
		terms = make(map[string]map[string]struct{}) // term -> review IDs
		byID  = make(map[string]string)              // review ID -> movie ID
	)
	svcutil.Handle(srv, "Index", func(ctx *rpc.Ctx, req *IndexReviewReq) (*struct{}, error) {
		r := req.Review
		if r.ID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "reviewSearch: review ID required")
		}
		mu.Lock()
		defer mu.Unlock()
		if _, done := byID[r.ID]; done {
			return nil, nil // redelivered event: already indexed
		}
		byID[r.ID] = r.MovieID
		for _, term := range strings.Fields(strings.ToLower(r.Text)) {
			ids, ok := terms[term]
			if !ok {
				ids = make(map[string]struct{})
				terms[term] = ids
			}
			ids[r.ID] = struct{}{}
		}
		return nil, nil
	})
	svcutil.Handle(srv, "Search", func(ctx *rpc.Ctx, req *SearchReviewsReq) (*SearchReviewsResp, error) {
		want := strings.Fields(strings.ToLower(req.Query))
		if len(want) == 0 {
			return &SearchReviewsResp{}, nil
		}
		mu.Lock()
		defer mu.Unlock()
		var out []string
		for id := range terms[want[0]] {
			match := true
			for _, term := range want[1:] {
				if _, ok := terms[term][id]; !ok {
					match = false
					break
				}
			}
			if match && (req.MovieID == "" || byID[id] == req.MovieID) {
				out = append(out, id)
			}
		}
		sort.Strings(out)
		if limit := int(req.Limit); limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return &SearchReviewsResp{IDs: out}, nil
	})
}

// reviewWorker is one replica of the enrich tier: a member of the "enrich"
// consumer group draining the review topic into the rating aggregate and
// the search index.
type reviewWorker struct {
	bus     mq.Bus
	movieDB svcutil.Caller
	search  svcutil.Caller
	seen    mq.Dedup
	stop    chan struct{}
	wg      sync.WaitGroup
}

// registerReviewWorker installs an enrich-tier replica on srv and starts
// its consume loop.
func registerReviewWorker(srv *rpc.Server, bus mq.Bus, movieDB, search svcutil.Caller) *reviewWorker {
	rw := &reviewWorker{bus: bus, movieDB: movieDB, search: search, stop: make(chan struct{})}
	svcutil.Handle(srv, "Lag", func(ctx *rpc.Ctx, req *struct{}) (*struct{ Lag int64 }, error) {
		s, err := rw.bus.Stats(ctx, reviewTopic, reviewGroup)
		if err != nil {
			return nil, err
		}
		return &struct{ Lag int64 }{Lag: s.Lag()}, nil
	})
	rw.wg.Add(1)
	go rw.run()
	return rw
}

// run is the consume loop: long-poll, enrich, settle. Failures nack for
// redelivery; the broker dead-letters the event after reviewMaxAttempts.
func (rw *reviewWorker) run() {
	defer rw.wg.Done()
	ctx := context.Background()
	for {
		select {
		case <-rw.stop:
			return
		default:
		}
		cctx, cancel := context.WithTimeout(ctx, reviewPoll+time.Second)
		msg, err := rw.bus.Consume(cctx, reviewTopic, reviewGroup, reviewLease, reviewPoll)
		cancel()
		if err != nil {
			select {
			case <-rw.stop:
				return
			case <-time.After(5 * time.Millisecond): // broker unreachable: don't hot-loop
			}
			continue
		}
		if !msg.OK {
			continue // poll expired empty
		}
		if err := rw.enrich(ctx, msg); err != nil {
			rw.bus.Nack(ctx, reviewTopic, reviewGroup, msg) //nolint:errcheck // lease expiry redelivers anyway
			continue
		}
		rw.bus.Ack(ctx, reviewTopic, reviewGroup, msg) //nolint:errcheck // one-way; a lost ack costs a redelivery
	}
}

// enrich applies one review's non-critical follow-ups. Dedup on the message
// key keeps the non-idempotent rating fold from double-counting a
// redelivery this replica already applied; the search index dedups again on
// review ID, so it is safe past the dedup window too.
func (rw *reviewWorker) enrich(ctx context.Context, msg mq.ConsumeResp) error {
	if rw.seen.Has(msg.Key) {
		return nil // already enriched; settle the redelivery
	}
	var r Review
	if err := codec.Unmarshal(msg.Body, &r); err != nil {
		return err
	}
	ectx, cancel := context.WithTimeout(ctx, reviewLease/2)
	defer cancel()
	if err := rw.movieDB.Call(ectx, "Rate", RateMovieReq{MovieID: r.MovieID, Rating: r.Rating}, nil); err != nil {
		return err
	}
	if err := rw.search.Call(ectx, "Index", IndexReviewReq{Review: r}, nil); err != nil {
		return err
	}
	rw.seen.Mark(msg.Key)
	return nil
}

// Close stops the consume loop; a worker parked in a long poll notices
// within reviewPoll.
func (rw *reviewWorker) Close() {
	close(rw.stop)
	rw.wg.Wait()
}
