package media

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
)

func bootMediaAsync(t *testing.T) *Media {
	t.Helper()
	app := core.NewApp("media-async-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	m, err := New(app, Config{AsyncReviews: true})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	mv := Movie{ID: "mv-1", Title: "The Heap", Year: 2019, Genre: "drama"}
	if err := m.SeedMovie(mv, "A memory allocator falls in love.", nil, nil); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return m
}

// TestAsyncReviewsReadYourWrites pins the AsyncReviews contract end to end:
// the review list serves the new review immediately (the critical store is
// synchronous), while the rating aggregate and the text index converge once
// the enrich group drains.
func TestAsyncReviewsReadYourWrites(t *testing.T) {
	m := bootMediaAsync(t)
	token := register(t, m, "critic")
	ctx := context.Background()

	var resp ComposeReviewResp
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{
		Token: token, MovieTitle: "The Heap", Text: "unforgettable allocation", Rating: 8,
	}, &resp); err != nil {
		t.Fatal(err)
	}

	// Read-your-writes on the review list, before any drain: Compose returned
	// at broker ack, but the review itself was stored synchronously.
	var page MoviePage
	if err := m.Frontend.Do(ctx, "GET", "/movies/The Heap", nil, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Reviews) != 1 || page.Reviews[0].ID != resp.Review.ID {
		t.Fatalf("review list before drain = %+v", page.Reviews)
	}

	// The follow-ups land behind the write: drain the enrich group, then the
	// aggregate and the text index must both reflect the review.
	if err := m.DrainReviews(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var movie GetMovieResp
	if err := m.MovieDB.Call(ctx, "Get", GetMovieReq{ID: "mv-1"}, &movie); err != nil {
		t.Fatal(err)
	}
	if movie.Movie.NumRating != 1 || movie.Movie.AvgRating != 8 {
		t.Fatalf("aggregate after drain = %+v", movie.Movie)
	}
	var found SearchReviewsResp
	if err := m.ReviewSearch.Call(ctx, "Search", SearchReviewsReq{Query: "unforgettable"}, &found); err != nil {
		t.Fatal(err)
	}
	if len(found.IDs) != 1 || found.IDs[0] != resp.Review.ID {
		t.Fatalf("search after drain = %+v", found.IDs)
	}

	// A second review for the same movie folds into the same aggregate.
	if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{
		Token: token, MovieTitle: "The Heap", Text: "heap of fun", Rating: 6,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.DrainReviews(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.MovieDB.Call(ctx, "Get", GetMovieReq{ID: "mv-1"}, &movie); err != nil {
		t.Fatal(err)
	}
	if movie.Movie.NumRating != 2 || movie.Movie.AvgRating != 7 {
		t.Fatalf("aggregate after second review = %+v", movie.Movie)
	}
}
