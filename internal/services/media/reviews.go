package media

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

func docstoreDoc(id string, body []byte) docstore.Doc {
	return docstore.Doc{ID: id, Body: body}
}

// ComposeReviewReq creates a review for a movie identified by title.
type ComposeReviewReq struct {
	Token      string
	MovieTitle string
	Text       string
	Rating     int64
}

// ComposeReviewResp returns the stored review.
type ComposeReviewResp struct{ Review Review }

// StoreReviewReq persists a finished review.
type StoreReviewReq struct{ Review Review }

// ReviewsByMovieReq lists a movie's reviews, newest first.
type ReviewsByMovieReq struct {
	MovieID string
	Limit   int64
}

// ReviewsByUserReq lists a user's reviews, newest first.
type ReviewsByUserReq struct {
	Username string
	Limit    int64
}

// ReviewsResp returns reviews.
type ReviewsResp struct{ Reviews []Review }

const reviewCacheTTL = 5 * time.Minute

// registerReviewStorage installs the reviewStorage service: the system of
// record for reviews (memcached + MongoDB pair in Figure 5). The per-movie
// review list — the hottest read in the app, hit once per movie-page
// composition — runs through the shared cache-aside ReadPath: cached under
// "movie-reviews:<id>" (invalidated by Store), with concurrent misses on one
// movie coalesced into a single backing Find.
func registerReviewStorage(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, noCoalesce bool) {
	svcutil.Handle(srv, "Store", func(ctx *rpc.Ctx, req *StoreReviewReq) (*struct{}, error) {
		r := req.Review
		if r.ID == "" || r.MovieID == "" || r.Username == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "reviewStorage: incomplete review")
		}
		body, err := codec.Marshal(r)
		if err != nil {
			return nil, err
		}
		doc := docstore.Doc{
			ID:     r.ID,
			Fields: map[string]string{"movie": r.MovieID, "user": r.Username},
			Nums:   map[string]int64{"ts": r.CreatedAt},
			Body:   body,
		}
		if err := db.Put(ctx, "reviews", doc); err != nil {
			return nil, err
		}
		mc.Set(ctx, "review:"+r.ID, body, reviewCacheTTL) //nolint:errcheck
		// Invalidate the movie's cached review list.
		mc.Delete(ctx, "movie-reviews:"+r.MovieID) //nolint:errcheck
		return nil, nil
	})

	list := func(ctx context.Context, field, value string, limit int) ([]Review, error) {
		docs, err := db.Find(ctx, "reviews", field, value, 0)
		if err != nil {
			return nil, err
		}
		out := make([]Review, 0, len(docs))
		for _, d := range docs {
			var r Review
			if err := codec.Unmarshal(d.Body, &r); err != nil {
				return nil, fmt.Errorf("reviewStorage: corrupt review %s: %w", d.ID, err)
			}
			out = append(out, r)
		}
		// Newest first.
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out, nil
	}

	byMovie := &svcutil.ReadPath[[]Review]{
		MC:         mc,
		TTL:        reviewCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) ([]Review, error) {
			var cached ReviewsResp
			if err := codec.Unmarshal(b, &cached); err != nil {
				return nil, err
			}
			return cached.Reviews, nil
		},
		Fetch: func(ctx context.Context, key string) ([]Review, []byte, bool, error) {
			movieID := strings.TrimPrefix(key, "movie-reviews:")
			reviews, err := list(ctx, "movie", movieID, 0)
			if err != nil {
				return nil, nil, false, err
			}
			enc, err := codec.Marshal(ReviewsResp{Reviews: reviews})
			if err != nil {
				return nil, nil, false, err
			}
			return reviews, enc, true, nil
		},
	}
	svcutil.Handle(srv, "ByMovie", func(ctx *rpc.Ctx, req *ReviewsByMovieReq) (*ReviewsResp, error) {
		reviews, _, err := byMovie.Get(ctx, "movie-reviews:"+req.MovieID)
		if err != nil {
			return nil, err
		}
		if limit := int(req.Limit); limit > 0 && len(reviews) > limit {
			reviews = reviews[:limit]
		}
		return &ReviewsResp{Reviews: reviews}, nil
	})
	svcutil.Handle(srv, "ByUser", func(ctx *rpc.Ctx, req *ReviewsByUserReq) (*ReviewsResp, error) {
		reviews, err := list(ctx, "user", req.Username, int(req.Limit))
		if err != nil {
			return nil, err
		}
		return &ReviewsResp{Reviews: reviews}, nil
	})
}

// registerMovieReview installs the movieReview service, which maintains the
// per-movie review index, folds ratings into MovieDB's aggregate, and feeds
// the review text index. The review itself is always stored synchronously —
// that is what keeps read-your-writes on the movie's review list — but the
// two follow-ups are non-critical: with bus set (Config.AsyncReviews) they
// leave the write path as one keyed ReviewEvent publish, applied behind the
// write by the "enrich" consumer group (see reviewasync.go).
func registerMovieReview(srv *rpc.Server, storage, movieDB, search svcutil.Caller, bus mq.Bus) {
	svcutil.Handle(srv, "Record", func(ctx *rpc.Ctx, req *StoreReviewReq) (*struct{}, error) {
		if err := storage.Call(ctx, "Store", *req, nil); err != nil {
			return nil, err
		}
		if bus != nil {
			body, err := codec.Marshal(req.Review)
			if err != nil {
				return nil, err
			}
			// The review ID keys the event: a retried Record republishes the
			// same key and dedups broker-side instead of double-counting the
			// rating.
			_, err = bus.PublishKey(ctx, reviewTopic, req.Review.ID, body)
			return nil, err
		}
		if err := movieDB.Call(ctx, "Rate", RateMovieReq{MovieID: req.Review.MovieID, Rating: req.Review.Rating}, nil); err != nil {
			return nil, err
		}
		return nil, search.Call(ctx, "Index", IndexReviewReq{Review: req.Review}, nil)
	})
	svcutil.Handle(srv, "List", func(ctx *rpc.Ctx, req *ReviewsByMovieReq) (*ReviewsResp, error) {
		var resp ReviewsResp
		err := storage.Call(ctx, "ByMovie", *req, &resp)
		return &resp, err
	})
}

// registerUserReview installs the userReview service (per-user review
// history).
func registerUserReview(srv *rpc.Server, storage svcutil.Caller) {
	svcutil.Handle(srv, "List", func(ctx *rpc.Ctx, req *ReviewsByUserReq) (*ReviewsResp, error) {
		var resp ReviewsResp
		err := storage.Call(ctx, "ByUser", *req, &resp)
		return &resp, err
	})
}

// RatingReq validates and normalizes a raw rating.
type RatingReq struct{ Rating int64 }

// RatingResp returns the accepted rating.
type RatingResp struct{ Rating int64 }

// registerRating installs the text/rating validation tier of the
// composeReview pipeline.
func registerRating(srv *rpc.Server) {
	svcutil.Handle(srv, "Validate", func(ctx *rpc.Ctx, req *RatingReq) (*RatingResp, error) {
		if req.Rating < 0 || req.Rating > 10 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "rating: %d out of [0,10]", req.Rating)
		}
		return &RatingResp{Rating: req.Rating}, nil
	})
	svcutil.Handle(srv, "ValidateText", func(ctx *rpc.Ctx, req *PlotResp) (*PlotResp, error) {
		text := strings.TrimSpace(req.Text)
		if text == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "rating: empty review text")
		}
		if len(text) > 8192 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "rating: review too long")
		}
		return &PlotResp{Text: text}, nil
	})
}

// composeReviewDeps are the tiers composeReview orchestrates.
type composeReviewDeps struct {
	user        svcutil.Caller
	movieID     svcutil.Caller
	rating      svcutil.Caller
	movieReview svcutil.Caller
	now         func() time.Time
}

// registerComposeReview installs the composeReview orchestrator: token
// verification, title resolution via movieID, text/rating validation, then
// the movieReview record path (reviewStorage + MovieDB aggregate).
func registerComposeReview(srv *rpc.Server, deps composeReviewDeps) {
	if deps.now == nil {
		deps.now = time.Now
	}
	var seq atomic.Uint64
	svcutil.Handle(srv, "Compose", func(ctx *rpc.Ctx, req *ComposeReviewReq) (*ComposeReviewResp, error) {
		var auth VerifyTokenResp
		if err := deps.user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "composeReview: invalid token")
		}
		var movie GetMovieResp
		if err := deps.movieID.Call(ctx, "Resolve", FindByTitleReq{Title: req.MovieTitle}, &movie); err != nil {
			return nil, err
		}
		var text PlotResp
		if err := deps.rating.Call(ctx, "ValidateText", PlotResp{Text: req.Text}, &text); err != nil {
			return nil, err
		}
		var rating RatingResp
		if err := deps.rating.Call(ctx, "Validate", RatingReq{Rating: req.Rating}, &rating); err != nil {
			return nil, err
		}
		now := deps.now()
		review := Review{
			ID:        fmt.Sprintf("rev-%d-%d", now.UnixMilli(), seq.Add(1)),
			MovieID:   movie.Movie.ID,
			Username:  auth.Username,
			Text:      text.Text,
			Rating:    rating.Rating,
			CreatedAt: now.UnixNano(),
		}
		if err := deps.movieReview.Call(ctx, "Record", StoreReviewReq{Review: review}, nil); err != nil {
			return nil, err
		}
		return &ComposeReviewResp{Review: review}, nil
	})
}

// registerMovieID installs the movieID resolution tier (title → movie).
func registerMovieID(srv *rpc.Server, movieDB svcutil.Caller) {
	svcutil.Handle(srv, "Resolve", func(ctx *rpc.Ctx, req *FindByTitleReq) (*GetMovieResp, error) {
		var resp GetMovieResp
		err := movieDB.Call(ctx, "FindByTitle", *req, &resp)
		return &resp, err
	})
}
