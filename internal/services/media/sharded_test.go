package media

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// bootShardedMedia boots media with every docstore/kv tier running
// shards×replicas instances behind consistent-hash routing, seeded with one
// movie and one registered reviewer.
func bootShardedMedia(t *testing.T, app *core.App, shards, replicas int) (*Media, string) {
	t.Helper()
	m, err := New(app, Config{Shards: shards, ShardReplicas: replicas})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	cast := []CastMember{{Actor: "A. Pointer", Role: "lead"}}
	if err := m.SeedMovie(Movie{ID: "mv-1", Title: "The Heap", Year: 2019, Genre: "drama"}, "An allocator's tale.", cast, nil); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return m, register(t, m, "critic")
}

// TestShardedEndToEnd runs register → review → movie page on a
// 3-shard×2-replica storage layout: the services are byte-identical to the
// single-instance deployment, only the wiring changed.
func TestShardedEndToEnd(t *testing.T) {
	app := core.NewApp("media-sharded", core.Options{})
	t.Cleanup(func() { app.Close() })
	m, token := bootShardedMedia(t, app, 3, 2)
	ctx := context.Background()

	instances := m.App.Registry.Instances("media.db-reviews")
	if len(instances) != 6 {
		t.Fatalf("db-reviews has %d instances, want 6", len(instances))
	}
	labels := make(map[string]int)
	for _, inst := range instances {
		labels[inst.Meta[shard.MetaShard]]++
	}
	if len(labels) != 3 {
		t.Fatalf("db-reviews shard labels = %v, want 3 distinct", labels)
	}

	for i := 0; i < 8; i++ {
		var resp ComposeReviewResp
		if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{
			Token: token, MovieTitle: "The Heap", Text: fmt.Sprintf("take %d", i), Rating: int64(i % 11),
		}, &resp); err != nil {
			t.Fatalf("compose %d: %v", i, err)
		}
	}
	var page MoviePage
	if err := m.Frontend.Do(ctx, "GET", "/movies/The Heap", nil, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Reviews) != 8 || page.Degraded {
		t.Fatalf("page reviews=%d degraded=%v, want 8/false", len(page.Reviews), page.Degraded)
	}
}

// TestShardedSurvivesReplicaFault errors the first replica of each
// db-reviews shard: with two replicas per shard, reads fall over to the
// healthy sibling and the review list stays complete.
func TestShardedSurvivesReplicaFault(t *testing.T) {
	inj := fault.NewInjector(11)
	app := core.NewApp("media-sharded-fault", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	m, token := bootShardedMedia(t, app, 2, 2)
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		var resp ComposeReviewResp
		if err := m.ComposeReview.Call(ctx, "Compose", ComposeReviewReq{
			Token: token, MovieTitle: "The Heap", Text: fmt.Sprintf("take %d", i), Rating: 7,
		}, &resp); err != nil {
			t.Fatalf("compose %d: %v", i, err)
		}
	}

	seen := make(map[string]bool)
	for _, inst := range m.App.Registry.Instances("media.db-reviews") {
		label := inst.Meta[shard.MetaShard]
		if seen[label] {
			continue
		}
		seen[label] = true
		defer inj.Add(fault.Rule{To: "media.db-reviews", Addr: inst.Addr, ErrCode: rpc.CodeUnavailable})()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var page MoviePage
		err := m.Frontend.Do(ctx, "GET", "/movies/The Heap", nil, &page)
		if err == nil && len(page.Reviews) == 6 && !page.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("movie page under replica fault: err=%v reviews=%d degraded=%v", err, len(page.Reviews), page.Degraded)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMoviePageDegradesWithoutReviews kills the whole review tier: with
// degradation on the page still renders (movie, plot, cast) flagged
// Degraded; with it off the same fault fails the request outright.
func TestMoviePageDegradesWithoutReviews(t *testing.T) {
	boot := func(t *testing.T, disable bool) (*Media, *fault.Injector) {
		inj := fault.NewInjector(13)
		app := core.NewApp("media-degrade", core.Options{Network: inj.Wrap(rpc.NewMem())})
		t.Cleanup(func() { app.Close() })
		m, err := New(app, Config{DisableDegradation: disable})
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		cast := []CastMember{{Actor: "A. Pointer", Role: "lead"}}
		if err := m.SeedMovie(Movie{ID: "mv-1", Title: "The Heap", Year: 2019, Genre: "drama"}, "An allocator's tale.", cast, nil); err != nil {
			t.Fatalf("seed: %v", err)
		}
		return m, inj
	}

	t.Run("degraded", func(t *testing.T) {
		m, inj := boot(t, false)
		defer inj.Add(fault.Rule{To: "media.movieReview", ErrCode: rpc.CodeUnavailable})()
		var page MoviePage
		if err := m.Frontend.Do(context.Background(), "GET", "/movies/The Heap", nil, &page); err != nil {
			t.Fatalf("degraded page should still serve: %v", err)
		}
		if !page.Degraded || len(page.Reviews) != 0 {
			t.Fatalf("page degraded=%v reviews=%d, want true/0", page.Degraded, len(page.Reviews))
		}
		if page.Movie.ID != "mv-1" || page.Plot == "" || len(page.Cast) != 1 {
			t.Fatalf("critical fields missing from degraded page: %+v", page)
		}
	})
	t.Run("failhard", func(t *testing.T) {
		m, inj := boot(t, true)
		defer inj.Add(fault.Rule{To: "media.movieReview", ErrCode: rpc.CodeUnavailable})()
		if err := m.Frontend.Do(context.Background(), "GET", "/movies/The Heap", nil, nil); err == nil {
			t.Fatal("fail-hard mode served a page despite review-tier fault")
		}
	})
}
