package media

import (
	"encoding/base64"
	"sort"

	"dsb/internal/blobstore"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// ManifestBody is the HLS-style playlist: how many segments to fetch.
type ManifestBody struct {
	MovieID  string `json:"movie_id"`
	Segments int    `json:"segments"`
	Size     int64  `json:"size"`
	Checksum uint32 `json:"checksum"`
}

// SegmentBody carries one streaming segment.
type SegmentBody struct {
	Index int    `json:"index"`
	Data  string `json:"data"` // base64
}

// registerStreaming installs the video-streaming tier — the nginx-hls
// module of Figure 5: it validates the rental lease on every request and
// serves the movie file from the NFS-equivalent blob store in chunks.
func registerStreaming(srv *rest.Server, store *blobstore.Store, rent svcutil.Caller) {
	validate := func(ctx *rest.Ctx, movieID string) error {
		lease := ctx.Query("lease")
		var resp ValidateLeaseResp
		if err := rent.Call(ctx, "ValidateLease", ValidateLeaseReq{Token: lease, MovieID: movieID}, &resp); err != nil {
			return err
		}
		if !resp.Valid {
			return rpc.Errorf(rpc.CodeUnauthorized, "streaming: invalid or expired lease")
		}
		return nil
	}

	srv.Handle("GET /stream/{movie}/manifest", func(ctx *rest.Ctx, body []byte) (any, error) {
		movieID := ctx.PathValue("movie")
		if err := validate(ctx, movieID); err != nil {
			return nil, err
		}
		meta, err := store.Stat(movieID)
		if err != nil {
			return nil, err
		}
		return ManifestBody{MovieID: movieID, Segments: meta.Chunks, Size: meta.Size, Checksum: meta.Checksum}, nil
	})

	srv.Handle("GET /stream/{movie}/segment/{idx}", func(ctx *rest.Ctx, body []byte) (any, error) {
		movieID := ctx.PathValue("movie")
		if err := validate(ctx, movieID); err != nil {
			return nil, err
		}
		idx := 0
		for _, c := range ctx.PathValue("idx") {
			if c < '0' || c > '9' {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "streaming: bad segment index")
			}
			idx = idx*10 + int(c-'0')
		}
		chunk, err := store.Chunk(movieID, idx)
		if err != nil {
			return nil, err
		}
		return SegmentBody{Index: idx, Data: base64.StdEncoding.EncodeToString(chunk)}, nil
	})
}

// RecommendMoviesReq asks for movies a user may like.
type RecommendMoviesReq struct {
	Token string
	Limit int64
}

// registerRecommender installs the movie recommender: the user's review
// history is aggregated into per-genre affinity (mean rating weighted by
// count), and the top genres' highest-rated unseen movies are returned.
func registerRecommender(srv *rpc.Server, user, userReview, movieDB svcutil.Caller) {
	svcutil.Handle(srv, "Recommend", func(ctx *rpc.Ctx, req *RecommendMoviesReq) (*MoviesResp, error) {
		var auth VerifyTokenResp
		if err := user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "recommender: invalid token")
		}
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 5
		}
		var history ReviewsResp
		if err := userReview.Call(ctx, "List", ReviewsByUserReq{Username: auth.Username, Limit: 100}, &history); err != nil {
			return nil, err
		}
		seen := make(map[string]bool)
		genreSum := make(map[string]int64)
		genreCount := make(map[string]int64)
		for _, r := range history.Reviews {
			seen[r.MovieID] = true
			var movie GetMovieResp
			if err := movieDB.Call(ctx, "Get", GetMovieReq{ID: r.MovieID}, &movie); err != nil {
				continue // rated movie may have been removed
			}
			genreSum[movie.Movie.Genre] += r.Rating
			genreCount[movie.Movie.Genre]++
		}
		type affinity struct {
			genre string
			score float64
		}
		var ranked []affinity
		for g, sum := range genreSum {
			ranked = append(ranked, affinity{g, float64(sum) / float64(genreCount[g])})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].genre < ranked[j].genre
		})
		var out []Movie
		for _, aff := range ranked {
			if len(out) >= limit {
				break
			}
			var movies MoviesResp
			if err := movieDB.Call(ctx, "ByGenre", ByGenreReq{Genre: aff.genre, Limit: 50}, &movies); err != nil {
				return nil, err
			}
			candidates := movies.Movies
			sort.Slice(candidates, func(i, j int) bool { return candidates[i].AvgRating > candidates[j].AvgRating })
			for _, m := range candidates {
				if !seen[m.ID] {
					out = append(out, m)
					if len(out) >= limit {
						break
					}
				}
			}
		}
		return &MoviesResp{Movies: out}, nil
	})
}
