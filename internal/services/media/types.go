// Package media implements the suite's Media Service (Figure 5 of the
// paper): browsing movie information, composing reviews, renting movies
// with payment authentication, and HTTP-live-streaming the rented files.
// Movie metadata lives in a sharded, replicated relational database (the
// MovieDB MySQL cluster); reviews live in a document store with a cache in
// front; movie files live in the NFS-equivalent blob store and are served
// in chunks by the nginx-hls streaming tier.
package media

// Movie is a row in MovieDB projected into a typed record.
type Movie struct {
	ID        string
	Title     string
	Year      int64
	Genre     string
	PlotID    string
	AvgRating float64
	NumRating int64
}

// CastMember links an actor to a movie.
type CastMember struct {
	MovieID string
	Actor   string
	Role    string
}

// Review is one user review of a movie.
type Review struct {
	ID        string
	MovieID   string
	Username  string
	Text      string
	Rating    int64 // 0..10
	CreatedAt int64 // unix nanoseconds
}

// Rental is a streaming lease for a rented movie.
type Rental struct {
	Username   string
	MovieID    string
	Token      string
	ExpiresAt  int64 // unix nanoseconds
	PriceCents int64
}
