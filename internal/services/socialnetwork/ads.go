package socialnetwork

import (
	"sort"

	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// AdsReq asks for an ad relevant to the given context terms.
type AdsReq struct{ Context string }

// AdsResp returns the winning ad, if any matched.
type AdsResp struct {
	Ad    Ad
	Found bool
}

// defaultAdCatalog is the static inventory the ads engine auctions over.
var defaultAdCatalog = []Ad{
	{ID: "ad-coffee", Keyword: "coffee", Text: "Fresh roasted beans, 20% off", BidCents: 120},
	{ID: "ad-espresso", Keyword: "coffee", Text: "Espresso machines on sale", BidCents: 90},
	{ID: "ad-running", Keyword: "running", Text: "Marathon-ready shoes", BidCents: 150},
	{ID: "ad-camera", Keyword: "photo", Text: "Mirrorless cameras, new arrivals", BidCents: 200},
	{ID: "ad-travel", Keyword: "travel", Text: "Weekend getaways from $99", BidCents: 110},
	{ID: "ad-music", Keyword: "music", Text: "Stream 60M songs free", BidCents: 70},
	{ID: "ad-cloud", Keyword: "cloud", Text: "Deploy in 60 seconds", BidCents: 250},
	{ID: "ad-pizza", Keyword: "pizza", Text: "Two-for-one Tuesdays", BidCents: 60},
	{ID: "ad-books", Keyword: "book", Text: "Bestsellers under $10", BidCents: 50},
	{ID: "ad-fitness", Keyword: "gym", Text: "No-contract memberships", BidCents: 95},
}

// registerAds installs the ads service: a keyword auction over the static
// catalog; the highest-bidding ad whose keyword appears in the context
// terms wins (the suite's ML plugins stand in for heavier models).
func registerAds(srv *rpc.Server, catalog []Ad) {
	if len(catalog) == 0 {
		catalog = defaultAdCatalog
	}
	byKeyword := make(map[string][]Ad)
	for _, ad := range catalog {
		byKeyword[ad.Keyword] = append(byKeyword[ad.Keyword], ad)
	}
	for k := range byKeyword {
		sort.Slice(byKeyword[k], func(i, j int) bool {
			return byKeyword[k][i].BidCents > byKeyword[k][j].BidCents
		})
	}
	svcutil.Handle(srv, "Suggest", func(ctx *rpc.Ctx, req *AdsReq) (*AdsResp, error) {
		var best Ad
		found := false
		for _, term := range tokenize(req.Context) {
			if ads := byKeyword[term]; len(ads) > 0 {
				if !found || ads[0].BidCents > best.BidCents {
					best = ads[0]
					found = true
				}
			}
		}
		return &AdsResp{Ad: best, Found: found}, nil
	})
}

// RecommendReq asks for accounts a user might follow.
type RecommendReq struct {
	User  string
	Limit int64
}

// RecommendResp returns suggested usernames, best first.
type RecommendResp struct{ Users []string }

// registerRecommender installs the user recommender: friends-of-friends
// collaborative filtering — candidates are followees of the user's
// followees, ranked by how many of the user's followees also follow them,
// excluding accounts already followed.
func registerRecommender(srv *rpc.Server, graph svcutil.Caller) {
	svcutil.Handle(srv, "Recommend", func(ctx *rpc.Ctx, req *RecommendReq) (*RecommendResp, error) {
		if req.User == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "recommender: user required")
		}
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 5
		}
		var mine NeighborsResp
		if err := graph.Call(ctx, "Followees", NeighborsReq{User: req.User}, &mine); err != nil {
			return nil, err
		}
		following := make(map[string]bool, len(mine.Users))
		for _, u := range mine.Users {
			following[u] = true
		}
		scores := make(map[string]int)
		for _, friend := range mine.Users {
			var theirs NeighborsResp
			if err := graph.Call(ctx, "Followees", NeighborsReq{User: friend}, &theirs); err != nil {
				return nil, err
			}
			for _, candidate := range theirs.Users {
				if candidate == req.User || following[candidate] {
					continue
				}
				scores[candidate]++
			}
		}
		type scored struct {
			user  string
			score int
		}
		ranked := make([]scored, 0, len(scores))
		for u, s := range scores {
			ranked = append(ranked, scored{u, s})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].user < ranked[j].user
		})
		if len(ranked) > limit {
			ranked = ranked[:limit]
		}
		out := make([]string, len(ranked))
		for i, r := range ranked {
			out[i] = r.user
		}
		return &RecommendResp{Users: out}, nil
	})
}

// FavoriteReq marks a post as favorited by a user.
type FavoriteReq struct{ User, PostID string }

// FavoriteCountReq asks for a post's favorite count.
type FavoriteCountReq struct{ PostID string }

// FavoriteCountResp returns the count.
type FavoriteCountResp struct{ Count int64 }

// registerFavorite installs the favorite service: an idempotent per-user
// mark with a hot counter in the cache tier.
func registerFavorite(srv *rpc.Server, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Favorite", func(ctx *rpc.Ctx, req *FavoriteReq) (*FavoriteCountResp, error) {
		if req.User == "" || req.PostID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "favorite: user and post required")
		}
		added, err := addEdge(ctx, db, "fav:"+req.PostID, req.User)
		if err != nil {
			return nil, err
		}
		if !added {
			n, err := mc.Incr(ctx, "favcount:"+req.PostID, 0)
			return &FavoriteCountResp{Count: n}, err
		}
		n, err := mc.Incr(ctx, "favcount:"+req.PostID, 1)
		if err != nil {
			return nil, err
		}
		return &FavoriteCountResp{Count: n}, nil
	})
	svcutil.Handle(srv, "Count", func(ctx *rpc.Ctx, req *FavoriteCountReq) (*FavoriteCountResp, error) {
		if n, err := mc.Incr(ctx, "favcount:"+req.PostID, 0); err == nil && n > 0 {
			return &FavoriteCountResp{Count: n}, nil
		}
		users, err := readEdges(ctx, db, "fav:"+req.PostID)
		if err != nil {
			return nil, err
		}
		return &FavoriteCountResp{Count: int64(len(users))}, nil
	})
}
