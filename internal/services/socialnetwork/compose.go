package socialnetwork

import (
	"strings"
	"sync"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// ComposePostReq creates a new post (or repost) for an authenticated user.
type ComposePostReq struct {
	Token string
	Text  string
	// Images and Videos carry raw attachment bytes.
	Images [][]byte
	Videos [][]byte
	// RepostOf, when set, makes this a repost of an existing post: the
	// original is read, quoted, and rebroadcast — the longest-latency query
	// type in the application (Section 3.8 of the paper).
	RepostOf string
}

// ComposePostResp returns the stored post. Degraded marks a post that was
// stored and fanned out but not search-indexed because the search tier was
// unreachable — accepted anyway rather than failing the write.
type ComposePostResp struct {
	Post     Post
	Degraded bool
}

// composeDeps are the downstream tiers composePost orchestrates.
type composeDeps struct {
	user     svcutil.Caller
	uniqueID svcutil.Caller
	text     svcutil.Caller
	media    svcutil.Caller
	storage  svcutil.Caller
	timeline svcutil.Caller
	search   svcutil.Caller
	readPost svcutil.Caller
	now      func() time.Time
}

// registerComposePost installs the composePost orchestrator: token
// verification, then ID generation, text processing, and media uploads in
// parallel (as in the original service), then the store, and finally
// timeline fan-out and search indexing in parallel. With degrade set, a
// failed search-index hop no longer fails the compose — the post is durable
// and fanned out, only discovery lags — and the response is marked
// Degraded. Timeline fan-out stays fatal: a post nobody's timeline shows
// is a lost write, not a degraded one.
func registerComposePost(srv *rpc.Server, deps composeDeps, degrade bool) {
	if deps.now == nil {
		deps.now = time.Now
	}
	svcutil.Handle(srv, "Compose", func(ctx *rpc.Ctx, req *ComposePostReq) (*ComposePostResp, error) {
		var auth VerifyTokenResp
		if err := deps.user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: req.Token}, &auth); err != nil {
			return nil, err
		}
		if !auth.Valid {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "composePost: invalid token")
		}

		text := req.Text
		if req.RepostOf != "" {
			var orig ReadPostsResp
			if err := deps.readPost.Call(ctx, "Read", ReadPostsReq{IDs: []string{req.RepostOf}}, &orig); err != nil {
				return nil, err
			}
			if len(orig.Posts) == 0 {
				return nil, rpc.NotFoundf("composePost: repost target %q", req.RepostOf)
			}
			o := orig.Posts[0]
			text = strings.TrimSpace("RT @" + o.Author + ": " + o.Text + " " + req.Text)
		}
		if strings.TrimSpace(text) == "" && len(req.Images)+len(req.Videos) == 0 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "composePost: empty post")
		}

		// Phase 1: unique ID, text processing, and media uploads in parallel.
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			idResp   UniqueIDResp
			txtResp  TextProcessResp
			mediaIDs []string
		)
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := deps.uniqueID.Call(ctx, "Next", UniqueIDReq{}, &idResp); err != nil {
				fail(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := deps.text.Call(ctx, "Process", TextProcessReq{Text: text}, &txtResp); err != nil {
				fail(err)
			}
		}()
		upload := func(kind string, data []byte) {
			defer wg.Done()
			var mr UploadMediaResp
			if err := deps.media.Call(ctx, "Upload", UploadMediaReq{Kind: kind, Data: data}, &mr); err != nil {
				fail(err)
				return
			}
			mu.Lock()
			mediaIDs = append(mediaIDs, mr.Media.ID)
			mu.Unlock()
		}
		for _, img := range req.Images {
			wg.Add(1)
			go upload(MediaImage, img)
		}
		for _, vid := range req.Videos {
			wg.Add(1)
			go upload(MediaVideo, vid)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}

		post := Post{
			ID:        idResp.ID,
			Author:    auth.Username,
			Text:      txtResp.Text,
			Mentions:  txtResp.Mentions,
			URLs:      txtResp.URLs,
			MediaIDs:  mediaIDs,
			CreatedAt: deps.now().UnixNano(),
		}
		if err := deps.storage.Call(ctx, "Store", StorePostReq{Post: post}, nil); err != nil {
			return nil, err
		}

		// Phase 2: fan-out and indexing in parallel.
		degraded := false
		wg.Add(2)
		go func() {
			defer wg.Done()
			err := deps.timeline.Call(ctx, "Append", AppendTimelineReq{
				Author: post.Author, PostID: post.ID, Ts: post.CreatedAt,
			}, nil)
			if err != nil {
				fail(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := callBounded(ctx, degrade, deps.search, "Index", IndexPostReq{PostID: post.ID, Text: post.Text}, nil); err != nil {
				if degrade {
					// Post is stored and fanned out; missing from search
					// until the index tier recovers. Accept anyway.
					mu.Lock()
					degraded = true
					mu.Unlock()
					return
				}
				fail(err)
			}
		}()
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := deps.user.Call(ctx, "BumpStat", BumpStatReq{Username: post.Author, Stat: "posts", Delta: 1}, nil); err != nil {
			return nil, err
		}
		return &ComposePostResp{Post: post, Degraded: degraded}, nil
	})
}
