package socialnetwork

import (
	"context"

	"dsb/internal/svcutil"
)

// nonCriticalBudget aliases the shared degradation budget; the mechanism
// moved to svcutil so every app in the suite bounds its degradable hops the
// same way.
const nonCriticalBudget = svcutil.NonCriticalBudget

// callBounded invokes a degradable downstream under nonCriticalBudget when
// degrade is on, and transparently when it is off (fail-hard mode keeps the
// caller's full deadline semantics). It delegates to the shared
// svcutil.CallBounded.
func callBounded(ctx context.Context, degrade bool, c svcutil.Caller, method string, req, resp any) error {
	return svcutil.CallBounded(ctx, degrade, c, method, req, resp)
}
