package socialnetwork

import (
	"context"
	"time"

	"dsb/internal/svcutil"
)

// nonCriticalBudget bounds each call to a degradable downstream when
// graceful degradation is enabled. Without a bound, a *partitioned* (as
// opposed to fast-failing) tier would hang the call until the request's
// whole deadline expired, so the degraded fallback would always arrive too
// late for the caller; with it, a hung hop costs at most this much before
// the fallback is served. Normal in-process calls finish in microseconds,
// so the budget only bites when the hop is genuinely sick.
const nonCriticalBudget = 40 * time.Millisecond

// callBounded invokes a degradable downstream under nonCriticalBudget when
// degrade is on, and transparently when it is off (fail-hard mode keeps the
// caller's full deadline semantics).
func callBounded(ctx context.Context, degrade bool, c svcutil.Caller, method string, req, resp any) error {
	if !degrade {
		return c.Call(ctx, method, req, resp)
	}
	bctx, cancel := context.WithTimeout(ctx, nonCriticalBudget)
	defer cancel()
	return c.Call(bctx, method, req, resp)
}
