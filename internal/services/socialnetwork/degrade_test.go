package socialnetwork

import (
	"context"
	"testing"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// bootFaulty boots a deployment on a fault-wrapped network so tests can cut
// individual tier-to-tier edges, and registers + logs in the given users.
func bootFaulty(t *testing.T, cfg Config, users ...string) (*SocialNetwork, *fault.Injector, map[string]string) {
	t.Helper()
	inj := fault.NewInjector(1)
	app := core.NewApp("social-degrade", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	cfg.SearchShards = 2
	sn, err := New(app, cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	tokens := make(map[string]string, len(users))
	for _, u := range users {
		if err := sn.User.Call(ctx, "Register", RegisterReq{Username: u, Password: "pw-" + u}, nil); err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
		var lr LoginResp
		if err := sn.User.Call(ctx, "Login", LoginReq{Username: u, Password: "pw-" + u}, &lr); err != nil {
			t.Fatalf("login %s: %v", u, err)
		}
		tokens[u] = lr.Token
	}
	return sn, inj, tokens
}

// Cutting the readTimeline→readPost edge must downgrade reads to the last
// successfully hydrated timeline (Degraded=true) instead of erroring; a user
// with no stale copy still gets the error; healing the edge restores fresh,
// non-degraded responses.
func TestReadTimelineServesStaleWhenHydrationDown(t *testing.T) {
	sn, inj, tokens := bootFaulty(t, Config{}, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	post := compose(t, sn, tokens["alice"], "fresh off the press")

	// A healthy read hydrates and seeds the stale-posts fallback.
	var resp ReadTimelineResp
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || len(resp.Posts) != 1 {
		t.Fatalf("healthy read = %+v", resp)
	}

	remove := inj.Add(fault.Rule{
		From: "social.readTimeline", To: "social.readPost",
		ErrCode: transport.CodeUnavailable,
	})
	resp = ReadTimelineResp{}
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob"}, &resp); err != nil {
		t.Fatalf("degraded read failed outright: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("read with hydration down not marked Degraded")
	}
	if len(resp.Posts) != 1 || resp.Posts[0].ID != post.ID {
		t.Fatalf("stale posts = %+v", resp.Posts)
	}

	// No stale copy to fall back on: the error still surfaces.
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "alice", Followee: "bob"}, nil); err != nil {
		t.Fatal(err)
	}
	compose(t, sn, tokens["bob"], "only in alice's never-read timeline")
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "alice"}, nil); err == nil {
		t.Fatal("read with no stale fallback should fail")
	}

	remove()
	resp = ReadTimelineResp{}
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("healed read still marked Degraded")
	}
}

// Cutting the readTimeline→blockedUsers edge must serve the timeline
// unfiltered (Degraded=true) rather than failing the read.
func TestReadTimelineUnfilteredWhenBlockListDown(t *testing.T) {
	sn, inj, tokens := bootFaulty(t, Config{}, "alice", "bob", "troll")
	ctx := context.Background()
	for _, a := range []string{"alice", "troll"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: a}, nil); err != nil {
			t.Fatal(err)
		}
	}
	compose(t, sn, tokens["alice"], "nice content")
	compose(t, sn, tokens["troll"], "bad content")
	if err := sn.Frontend.Do(ctx, "POST", "/block", BlockBody{Token: tokens["bob"], Target: "troll"}, nil); err != nil {
		t.Fatal(err)
	}
	var resp ReadTimelineResp
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || len(resp.Posts) != 1 {
		t.Fatalf("filtered read = %+v", resp)
	}

	remove := inj.Add(fault.Rule{
		From: "social.readTimeline", To: "social.blockedUsers",
		ErrCode: transport.CodeUnavailable,
	})
	defer remove()
	resp = ReadTimelineResp{}
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob"}, &resp); err != nil {
		t.Fatalf("read with block list down: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("unfiltered read not marked Degraded")
	}
	if len(resp.Posts) != 2 {
		t.Fatalf("unfiltered timeline = %+v", resp.Posts)
	}
}

// Cutting the composePost→search edge must still accept the post — stored
// and fanned out, marked Degraded — and only search discovery lags until
// the edge heals.
func TestComposeAcceptsPostWhenSearchDown(t *testing.T) {
	sn, inj, tokens := bootFaulty(t, Config{}, "alice")
	ctx := context.Background()

	remove := inj.Add(fault.Rule{
		From: "social.composePost", To: "social.search",
		ErrCode: transport.CodeUnavailable,
	})
	var resp ComposePostResp
	if err := sn.Compose.Call(ctx, "Compose", ComposePostReq{Token: tokens["alice"], Text: "unindexed thought"}, &resp); err != nil {
		t.Fatalf("compose with search down: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("compose with search down not marked Degraded")
	}

	// Durable and fanned out: the author's own timeline has it.
	var tl ReadTimelineResp
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "alice"}, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Posts) != 1 || tl.Posts[0].ID != resp.Post.ID {
		t.Fatalf("timeline after degraded compose = %+v", tl.Posts)
	}
	// But not discoverable.
	var hits SearchResp
	if err := sn.Search.Call(ctx, "Query", SearchReq{Query: "unindexed"}, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits.Hits) != 0 {
		t.Fatalf("degraded post reached the index: %+v", hits.Hits)
	}

	remove()
	resp = ComposePostResp{}
	if err := sn.Compose.Call(ctx, "Compose", ComposePostReq{Token: tokens["alice"], Text: "indexed thought"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("healed compose still marked Degraded")
	}
	if err := sn.Search.Call(ctx, "Query", SearchReq{Query: "indexed"}, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits.Hits) != 1 {
		t.Fatalf("post-heal search = %+v", hits.Hits)
	}
}

// DisableDegradation restores fail-hard semantics on every degradable edge —
// the chaos experiment's unprotected arm depends on this.
func TestDisableDegradationFailsHard(t *testing.T) {
	sn, inj, tokens := bootFaulty(t, Config{DisableDegradation: true}, "alice")
	ctx := context.Background()
	compose(t, sn, tokens["alice"], "about to go stale")
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "alice"}, nil); err != nil {
		t.Fatal(err)
	}

	defer inj.Add(fault.Rule{
		From: "social.readTimeline", To: "social.readPost",
		ErrCode: transport.CodeUnavailable,
	})()
	defer inj.Add(fault.Rule{
		From: "social.composePost", To: "social.search",
		ErrCode: transport.CodeUnavailable,
	})()
	if err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "alice"}, nil); !rpc.IsCode(err, rpc.CodeUnavailable) {
		t.Fatalf("read with degradation off = %v, want unavailable", err)
	}
	err := sn.Compose.Call(ctx, "Compose", ComposePostReq{Token: tokens["alice"], Text: "no index no post"}, nil)
	if !rpc.IsCode(err, rpc.CodeUnavailable) {
		t.Fatalf("compose with degradation off = %v, want unavailable", err)
	}
}
