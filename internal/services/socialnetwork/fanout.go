package socialnetwork

import (
	"context"
	"sync"
	"time"

	"dsb/internal/codec"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// Async timeline fan-out: with Config.AsyncFanout, composePost's Append no
// longer pays for the follower fan-out inline. The author's own timeline is
// prepended synchronously (read-your-writes: authors always see their own
// post immediately), a FanoutEvent is published to the broker's timeline
// topic, and Append returns as soon as the broker acks. The "fanout"
// consumer-group tier hydrates follower timelines behind the write, and the
// broker redelivers any event whose consumer dies mid-push. Followers
// converge within the group's drain time — the eventual-consistency window
// DrainFanout bounds for deterministic tests.

// timelineTopic and fanoutGroup name the broker topic fan-out events flow
// through and the consumer group that delivers them.
const (
	timelineTopic = "timeline"
	fanoutGroup   = "fanout"
)

// fanoutMaxAttempts dead-letters a fan-out event after this many failed
// deliveries so one poisoned event cannot head-of-line-block every timeline
// behind it.
const fanoutMaxAttempts = 8

// fanoutLease bounds one delivery attempt before the broker assumes the
// consumer died and redelivers.
const fanoutLease = 30 * time.Second

// fanoutPoll bounds each consumer long-poll; it is also the worst-case
// delay between Close and a parked consumer noticing.
const fanoutPoll = 250 * time.Millisecond

// FanoutEvent is the broker message behind one async fan-out: deliver
// Author's post to every follower timeline.
type FanoutEvent struct {
	Author string
	PostID string
}

// ConfigureTimelineBroker declares the timeline topic and subscribes the
// fanout group — it must run at broker boot, before composePost starts, so
// no publish misses the group.
func ConfigureTimelineBroker(b *mq.Broker) {
	t := b.Topic(timelineTopic)
	t.Configure(mq.QueueConfig{MaxAttempts: fanoutMaxAttempts})
	t.Subscribe(fanoutGroup)
}

// fanoutPush prepends a post to each listed user's timeline and invalidates
// their cache entries, walking the list with a bounded worker pool. Shared
// by the synchronous Append path and the async consumer; unique turns each
// prepend into the idempotent variant — the store-level backstop the async
// path needs, because at-least-once redelivery across a broker crash may
// replay a push on a *different* consumer replica, past any per-replica
// dedup.
func fanoutPush(ctx context.Context, db svcutil.DB, mc svcutil.KV, users []string, postID string, workers int, unique bool) error {
	return svcutil.Parallel(workers, len(users), func(i int) error {
		key := "tl:" + users[i]
		prepend := db.ListPrepend
		if unique {
			prepend = db.ListPrependUnique
		}
		if _, err := prepend(ctx, "timelines", key, postID, timelineCap); err != nil {
			return err
		}
		mc.Delete(ctx, key) //nolint:errcheck // invalidation is best-effort
		return nil
	})
}

// fanoutConsumer is one replica of the fanout tier: a member of the
// "fanout" consumer group draining the timeline topic.
type fanoutConsumer struct {
	bus     mq.Bus
	graph   svcutil.Caller
	db      svcutil.DB
	mc      svcutil.KV
	workers int
	push    bool
	seen    mq.Dedup
	stop    chan struct{}
	wg      sync.WaitGroup
}

// registerFanoutConsumer installs a fanout-tier replica on srv (the server
// exists to give the replica service identity — load reports and the
// control plane's lag probe attach to it) and starts its consume loop.
// With push set the replica takes delivery over a standing push stream
// instead of polling (falling back to polling if the bus cannot push).
func registerFanoutConsumer(srv *rpc.Server, bus mq.Bus, graph svcutil.Caller, db svcutil.DB, mc svcutil.KV, workers int, push bool) *fanoutConsumer {
	if workers <= 0 {
		workers = defaultFanoutWorkers
	}
	fc := &fanoutConsumer{
		bus: bus, graph: graph, db: db, mc: mc, workers: workers, push: push,
		stop: make(chan struct{}),
	}
	// Lag is served RPC-side too, so anything holding a caller to the tier
	// (experiments, debugging) can read the group backlog it works against.
	svcutil.Handle(srv, "Lag", func(ctx *rpc.Ctx, req *struct{}) (*struct{ Lag int64 }, error) {
		s, err := fc.bus.Stats(ctx, timelineTopic, fanoutGroup)
		if err != nil {
			return nil, err
		}
		return &struct{ Lag int64 }{Lag: s.Lag()}, nil
	})
	fc.wg.Add(1)
	go fc.run()
	return fc
}

// run takes delivery in the configured mode. Push needs a PushBus; a bus
// that cannot push (a bare Bus implementation) degrades to polling, so the
// switch is safe to flip regardless of broker layout.
func (fc *fanoutConsumer) run() {
	defer fc.wg.Done()
	if fc.push {
		if pb, ok := fc.bus.(mq.PushBus); ok {
			fc.runPush(pb)
			return
		}
	}
	fc.runPoll()
}

// runPush is the push-mode loop: one standing delivery session replaces the
// poll cycle — the broker streams events as they arrive, so an idle topic
// costs zero RPCs. Settles are unchanged. A dead session (broker crash,
// conn loss) is reopened with a short pause; lease redelivery covers
// whatever was in flight.
func (fc *fanoutConsumer) runPush(pb mq.PushBus) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-fc.stop
		cancel() // wakes a Next parked on an idle session
	}()
	for {
		select {
		case <-fc.stop:
			return
		default:
		}
		d, err := pb.Push(ctx, timelineTopic, fanoutGroup, fanoutLease)
		if err != nil {
			select {
			case <-fc.stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		for {
			msg, err := d.Next()
			if err != nil {
				d.Close()
				break // reopen the session
			}
			if err := fc.deliver(ctx, msg); err != nil {
				fc.bus.Nack(ctx, timelineTopic, fanoutGroup, msg) //nolint:errcheck // lease expiry redelivers anyway
				continue
			}
			fc.bus.Ack(ctx, timelineTopic, fanoutGroup, msg) //nolint:errcheck // one-way; a lost ack costs a redelivery
		}
	}
}

// runPoll is the poll-mode loop: long-poll, deliver, settle. Delivery
// failures nack for redelivery (another replica may succeed); the broker
// dead-letters the event after fanoutMaxAttempts.
func (fc *fanoutConsumer) runPoll() {
	ctx := context.Background()
	for {
		select {
		case <-fc.stop:
			return
		default:
		}
		cctx, cancel := context.WithTimeout(ctx, fanoutPoll+time.Second)
		msg, err := fc.bus.Consume(cctx, timelineTopic, fanoutGroup, fanoutLease, fanoutPoll)
		cancel()
		if err != nil {
			select {
			case <-fc.stop:
				return
			case <-time.After(5 * time.Millisecond): // broker unreachable: don't hot-loop
			}
			continue
		}
		if !msg.OK {
			continue // poll expired empty
		}
		if err := fc.deliver(ctx, msg); err != nil {
			fc.bus.Nack(ctx, timelineTopic, fanoutGroup, msg) //nolint:errcheck // lease expiry redelivers anyway
			continue
		}
		fc.bus.Ack(ctx, timelineTopic, fanoutGroup, msg) //nolint:errcheck // one-way; a lost ack costs a redelivery
	}
}

// deliver hydrates follower timelines for one event. The author's own
// timeline was already written synchronously by Append, so only followers
// are pushed here. Idempotent consumption is layered: a redelivered key
// this replica already processed is settled without re-pushing (dedup),
// and whatever slips past — a replay landing on a different replica —
// is absorbed by the unique timeline prepend.
func (fc *fanoutConsumer) deliver(ctx context.Context, msg mq.ConsumeResp) error {
	if fc.seen.Has(msg.Key) {
		return nil // already delivered; settle the redelivery
	}
	var ev FanoutEvent
	if err := codec.Unmarshal(msg.Body, &ev); err != nil {
		return err
	}
	dctx, cancel := context.WithTimeout(ctx, fanoutLease/2)
	defer cancel()
	var followers NeighborsResp
	if err := fc.graph.Call(dctx, "Followers", NeighborsReq{User: ev.Author}, &followers); err != nil {
		return err
	}
	if err := fanoutPush(dctx, fc.db, fc.mc, followers.Users, ev.PostID, fc.workers, msg.Key != ""); err != nil {
		return err
	}
	fc.seen.Mark(msg.Key)
	return nil
}

// Close stops the consume loop; a replica parked in a long poll notices
// within fanoutPoll.
func (fc *fanoutConsumer) Close() {
	close(fc.stop)
	fc.wg.Wait()
}
