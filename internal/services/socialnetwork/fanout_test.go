package socialnetwork

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
)

// bootAsync boots a deployment with the broker-backed fan-out path and
// registers + logs in the given users.
func bootAsync(t *testing.T, cfg Config, users ...string) (*SocialNetwork, map[string]string) {
	t.Helper()
	cfg.SearchShards = 2
	cfg.AsyncFanout = true
	app := core.NewApp("social-async", core.Options{})
	t.Cleanup(func() { app.Close() })
	sn, err := New(app, cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	t.Cleanup(sn.Close)
	ctx := context.Background()
	tokens := make(map[string]string, len(users))
	for _, u := range users {
		if err := sn.User.Call(ctx, "Register", RegisterReq{Username: u, Password: "pw-" + u}, nil); err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
		var lr LoginResp
		if err := sn.User.Call(ctx, "Login", LoginReq{Username: u, Password: "pw-" + u}, &lr); err != nil {
			t.Fatalf("login %s: %v", u, err)
		}
		tokens[u] = lr.Token
	}
	return sn, tokens
}

// TestAsyncFanoutReadYourWrites: with the broker-backed path, a compose
// returns at broker ack — before followers are hydrated — yet the author
// must see their own post immediately (it is prepended synchronously), and
// after the fanout group drains, every follower converges on it.
func TestAsyncFanoutReadYourWrites(t *testing.T) {
	sn, tokens := bootAsync(t, Config{}, "alice", "bob", "carol")
	ctx := context.Background()
	for _, f := range []string{"bob", "carol"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: f, Followee: "alice"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	post := compose(t, sn, tokens["alice"], "hello from the async path")

	// Read-your-writes: the author's timeline has the post the instant
	// compose returns, no drain needed.
	if posts := timeline(t, sn, "alice"); len(posts) != 1 || posts[0].ID != post.ID {
		t.Fatalf("author timeline = %+v, want own post immediately", posts)
	}

	// Followers converge once the consumer group drains the backlog.
	if err := sn.DrainFanout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, reader := range []string{"bob", "carol"} {
		posts := timeline(t, sn, reader)
		if len(posts) != 1 || posts[0].ID != post.ID {
			t.Fatalf("%s timeline after drain = %+v", reader, posts)
		}
	}
}

// TestAsyncFanoutManyPosts pushes a burst of composes through the broker and
// checks the follower timeline converges on all of them, newest first —
// at-least-once delivery with the shared consumer group never drops or
// double-counts a post under normal operation.
func TestAsyncFanoutManyPosts(t *testing.T) {
	sn, tokens := bootAsync(t, Config{FanoutConsumers: 3}, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	const n = 20
	ids := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		ids[compose(t, sn, tokens["alice"], "burst post").ID] = true
	}
	if err := sn.DrainFanout(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	posts := timeline(t, sn, "bob")
	if len(posts) != n {
		t.Fatalf("bob sees %d posts, want %d", len(posts), n)
	}
	for _, p := range posts {
		if !ids[p.ID] {
			t.Fatalf("unexpected post %s in timeline", p.ID)
		}
		delete(ids, p.ID)
	}
}

// TestPushFanoutDelivery runs the async path in push mode over a sharded
// broker tier: consumers take delivery on standing streams instead of
// polling, and followers must converge exactly as under polling.
func TestPushFanoutDelivery(t *testing.T) {
	sn, tokens := bootAsync(t, Config{PushFanout: true, BrokerShards: 2, FanoutConsumers: 2}, "alice", "bob", "carol")
	ctx := context.Background()
	for _, f := range []string{"bob", "carol"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: f, Followee: "alice"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	const n = 10
	ids := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		ids[compose(t, sn, tokens["alice"], "pushed post").ID] = true
	}
	if err := sn.DrainFanout(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, reader := range []string{"bob", "carol"} {
		posts := timeline(t, sn, reader)
		if len(posts) != n {
			t.Fatalf("%s sees %d posts, want %d", reader, len(posts), n)
		}
		for _, p := range posts {
			if !ids[p.ID] {
				t.Fatalf("unexpected post %s in %s's timeline", p.ID, reader)
			}
		}
	}
}

// TestPushFanoutClose mirrors the shutdown test in push mode: Close must
// not hang on a consumer parked in a standing push stream.
func TestPushFanoutClose(t *testing.T) {
	sn, tokens := bootAsync(t, Config{PushFanout: true}, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	compose(t, sn, tokens["alice"], "before close")
	if err := sn.DrainFanout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { sn.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; consumer stuck in push stream")
	}
}

// TestAsyncFanoutClose stops the consumer tier cleanly: Close returns (no
// deadlock against a parked long poll) and a post composed afterwards still
// succeeds — the write path only needs the broker ack, not a live consumer.
func TestAsyncFanoutClose(t *testing.T) {
	sn, tokens := bootAsync(t, Config{}, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	compose(t, sn, tokens["alice"], "before close")
	if err := sn.DrainFanout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { sn.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; consumer stuck in long poll")
	}
	// The write path survives: compose returns at broker ack and the author
	// still reads their own write; the event just waits for a consumer.
	post := compose(t, sn, tokens["alice"], "after close")
	if posts := timeline(t, sn, "alice"); len(posts) != 2 || posts[0].ID != post.ID {
		t.Fatalf("author timeline after close = %+v", posts)
	}
	if lag := sn.Broker.GroupLag(timelineTopic, fanoutGroup); lag != 1 {
		t.Fatalf("orphaned event lag = %d, want 1", lag)
	}
}
