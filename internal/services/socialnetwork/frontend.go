package socialnetwork

import (
	"encoding/base64"

	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// REST request/response bodies for the front door. Media attachments are
// base64 strings, as an http client would send them.

// PostBody is the POST /posts request.
type PostBody struct {
	Token    string   `json:"token"`
	Text     string   `json:"text"`
	Images   []string `json:"images,omitempty"`
	Videos   []string `json:"videos,omitempty"`
	RepostOf string   `json:"repost_of,omitempty"`
}

// CredentialsBody is the register/login request.
type CredentialsBody struct {
	Username string `json:"username"`
	Password string `json:"password"`
}

// FollowBody is the POST /follow request.
type FollowBody struct {
	Token    string `json:"token"`
	Followee string `json:"followee"`
}

// BlockBody is the POST /block request.
type BlockBody struct {
	Token  string `json:"token"`
	Target string `json:"target"`
}

// FavoriteBody is the POST /favorite request.
type FavoriteBody struct {
	Token  string `json:"token"`
	PostID string `json:"post_id"`
}

// frontendDeps are the tiers the front door fans out to.
type frontendDeps struct {
	compose      svcutil.Caller
	readTimeline svcutil.Caller
	readPost     svcutil.Caller
	user         svcutil.Caller
	graph        svcutil.Caller
	blocked      svcutil.Caller
	search       svcutil.Caller
	ads          svcutil.Caller
	recommender  svcutil.Caller
	favorite     svcutil.Caller
}

// registerFrontend installs the REST API — the nginx/php-fpm tier of
// Figure 4. Every handler authenticates where needed and translates
// between JSON and the downstream RPC types.
func registerFrontend(srv *rest.Server, d frontendDeps) {
	authed := func(ctx *rest.Ctx, token string) (string, error) {
		var auth VerifyTokenResp
		if err := d.user.Call(ctx, "VerifyToken", VerifyTokenReq{Token: token}, &auth); err != nil {
			return "", err
		}
		if !auth.Valid {
			return "", rpc.Errorf(rpc.CodeUnauthorized, "invalid token")
		}
		return auth.Username, nil
	}

	srv.Handle("POST /register", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp RegisterResp
		if err := d.user.Call(ctx, "Register", RegisterReq{Username: req.Username, Password: req.Password}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("POST /login", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req CredentialsBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		var resp LoginResp
		if err := d.user.Call(ctx, "Login", LoginReq{Username: req.Username, Password: req.Password}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("POST /posts", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req PostBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		rpcReq := ComposePostReq{Token: req.Token, Text: req.Text, RepostOf: req.RepostOf}
		for _, b64 := range req.Images {
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "bad image encoding: %v", err)
			}
			rpcReq.Images = append(rpcReq.Images, data)
		}
		for _, b64 := range req.Videos {
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "bad video encoding: %v", err)
			}
			rpcReq.Videos = append(rpcReq.Videos, data)
		}
		var resp ComposePostResp
		if err := d.compose.Call(ctx, "Compose", rpcReq, &resp); err != nil {
			return nil, err
		}
		return resp.Post, nil
	})

	srv.Handle("GET /timeline/{user}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp ReadTimelineResp
		err := d.readTimeline.Call(ctx, "Read", ReadTimelineReq{User: ctx.PathValue("user"), Limit: 20}, &resp)
		if err != nil {
			return nil, err
		}
		return resp.Posts, nil
	})

	srv.Handle("GET /posts/{id}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp ReadPostsResp
		if err := d.readPost.Call(ctx, "Read", ReadPostsReq{IDs: []string{ctx.PathValue("id")}}, &resp); err != nil {
			return nil, err
		}
		if len(resp.Posts) == 0 {
			return nil, rpc.NotFoundf("no post %q", ctx.PathValue("id"))
		}
		return resp.Posts[0], nil
	})

	srv.Handle("POST /follow", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req FollowBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		follower, err := authed(ctx, req.Token)
		if err != nil {
			return nil, err
		}
		return nil, d.graph.Call(ctx, "Follow", FollowReq{Follower: follower, Followee: req.Followee}, nil)
	})

	srv.Handle("POST /block", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req BlockBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		user, err := authed(ctx, req.Token)
		if err != nil {
			return nil, err
		}
		return nil, d.blocked.Call(ctx, "Block", BlockReq{User: user, Target: req.Target}, nil)
	})

	srv.Handle("POST /favorite", func(ctx *rest.Ctx, body []byte) (any, error) {
		var req FavoriteBody
		if err := rest.DecodeJSON(body, &req); err != nil {
			return nil, err
		}
		user, err := authed(ctx, req.Token)
		if err != nil {
			return nil, err
		}
		var resp FavoriteCountResp
		if err := d.favorite.Call(ctx, "Favorite", FavoriteReq{User: user, PostID: req.PostID}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})

	srv.Handle("GET /search", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp SearchResp
		if err := d.search.Call(ctx, "Query", SearchReq{Query: ctx.Query("q"), Limit: 10}, &resp); err != nil {
			return nil, err
		}
		return resp.Hits, nil
	})

	srv.Handle("GET /user/{name}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp InfoResp
		if err := d.user.Call(ctx, "Info", InfoReq{Username: ctx.PathValue("name")}, &resp); err != nil {
			return nil, err
		}
		return resp.Info, nil
	})

	srv.Handle("GET /recommend/{user}", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp RecommendResp
		if err := d.recommender.Call(ctx, "Recommend", RecommendReq{User: ctx.PathValue("user"), Limit: 5}, &resp); err != nil {
			return nil, err
		}
		return resp.Users, nil
	})

	srv.Handle("GET /ads", func(ctx *rest.Ctx, body []byte) (any, error) {
		var resp AdsResp
		if err := d.ads.Call(ctx, "Suggest", AdsReq{Context: ctx.Query("q")}, &resp); err != nil {
			return nil, err
		}
		return resp, nil
	})
}
