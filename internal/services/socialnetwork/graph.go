package socialnetwork

import (
	"fmt"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// FollowReq creates or removes a follow edge.
type FollowReq struct{ Follower, Followee string }

// NeighborsReq asks for a user's followers or followees.
type NeighborsReq struct{ User string }

// NeighborsResp returns usernames.
type NeighborsResp struct{ Users []string }

// registerSocialGraph installs the writeGraph service owning the follow
// graph: two adjacency lists per user (followers and followees) persisted
// in its document store, with profile counters maintained through the user
// service.
func registerSocialGraph(srv *rpc.Server, db svcutil.DB, user svcutil.Caller) {
	svcutil.Handle(srv, "Follow", func(ctx *rpc.Ctx, req *FollowReq) (*struct{}, error) {
		if req.Follower == "" || req.Followee == "" || req.Follower == req.Followee {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "graph: invalid follow %q -> %q", req.Follower, req.Followee)
		}
		added, err := addEdge(ctx, db, "followees:"+req.Follower, req.Followee)
		if err != nil {
			return nil, err
		}
		if !added {
			return nil, nil // already following: idempotent
		}
		if _, err := addEdge(ctx, db, "followers:"+req.Followee, req.Follower); err != nil {
			return nil, err
		}
		if err := user.Call(ctx, "BumpStat", BumpStatReq{Username: req.Follower, Stat: "followees", Delta: 1}, nil); err != nil {
			return nil, err
		}
		if err := user.Call(ctx, "BumpStat", BumpStatReq{Username: req.Followee, Stat: "followers", Delta: 1}, nil); err != nil {
			return nil, err
		}
		return nil, nil
	})

	svcutil.Handle(srv, "Unfollow", func(ctx *rpc.Ctx, req *FollowReq) (*struct{}, error) {
		removed, err := removeEdge(ctx, db, "followees:"+req.Follower, req.Followee)
		if err != nil {
			return nil, err
		}
		if !removed {
			return nil, nil
		}
		if _, err := removeEdge(ctx, db, "followers:"+req.Followee, req.Follower); err != nil {
			return nil, err
		}
		if err := user.Call(ctx, "BumpStat", BumpStatReq{Username: req.Follower, Stat: "followees", Delta: -1}, nil); err != nil {
			return nil, err
		}
		if err := user.Call(ctx, "BumpStat", BumpStatReq{Username: req.Followee, Stat: "followers", Delta: -1}, nil); err != nil {
			return nil, err
		}
		return nil, nil
	})

	svcutil.Handle(srv, "Followers", func(ctx *rpc.Ctx, req *NeighborsReq) (*NeighborsResp, error) {
		users, err := readEdges(ctx, db, "followers:"+req.User)
		if err != nil {
			return nil, err
		}
		return &NeighborsResp{Users: users}, nil
	})

	svcutil.Handle(srv, "Followees", func(ctx *rpc.Ctx, req *NeighborsReq) (*NeighborsResp, error) {
		users, err := readEdges(ctx, db, "followees:"+req.User)
		if err != nil {
			return nil, err
		}
		return &NeighborsResp{Users: users}, nil
	})
}

func readEdges(ctx *rpc.Ctx, db svcutil.DB, key string) ([]string, error) {
	doc, found, err := db.Get(ctx, "graph", key)
	if err != nil || !found {
		return nil, err
	}
	var users []string
	if err := codec.Unmarshal(doc.Body, &users); err != nil {
		return nil, fmt.Errorf("graph: corrupt adjacency %s: %w", key, err)
	}
	return users, nil
}

func writeEdges(ctx *rpc.Ctx, db svcutil.DB, key string, users []string) error {
	body, err := codec.Marshal(users)
	if err != nil {
		return err
	}
	return db.Put(ctx, "graph", docstore.Doc{ID: key, Body: body})
}

func addEdge(ctx *rpc.Ctx, db svcutil.DB, key, member string) (bool, error) {
	users, err := readEdges(ctx, db, key)
	if err != nil {
		return false, err
	}
	for _, u := range users {
		if u == member {
			return false, nil
		}
	}
	return true, writeEdges(ctx, db, key, append(users, member))
}

func removeEdge(ctx *rpc.Ctx, db svcutil.DB, key, member string) (bool, error) {
	users, err := readEdges(ctx, db, key)
	if err != nil {
		return false, err
	}
	for i, u := range users {
		if u == member {
			return true, writeEdges(ctx, db, key, append(users[:i], users[i+1:]...))
		}
	}
	return false, nil
}

// BlockReq blocks or unblocks an author for a user.
type BlockReq struct{ User, Target string }

// BlockedListReq asks for a user's block list.
type BlockedListReq struct{ User string }

// BlockedListResp returns blocked usernames.
type BlockedListResp struct{ Users []string }

// registerBlockedUsers installs the blockedUsers service; readTimeline
// filters posts whose authors the reader has blocked.
func registerBlockedUsers(srv *rpc.Server, db svcutil.DB) {
	svcutil.Handle(srv, "Block", func(ctx *rpc.Ctx, req *BlockReq) (*struct{}, error) {
		if req.User == "" || req.Target == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "blocked: user and target required")
		}
		_, err := addEdge(ctx, db, "blocked:"+req.User, req.Target)
		return nil, err
	})
	svcutil.Handle(srv, "Unblock", func(ctx *rpc.Ctx, req *BlockReq) (*struct{}, error) {
		_, err := removeEdge(ctx, db, "blocked:"+req.User, req.Target)
		return nil, err
	})
	svcutil.Handle(srv, "List", func(ctx *rpc.Ctx, req *BlockedListReq) (*BlockedListResp, error) {
		users, err := readEdges(ctx, db, "blocked:"+req.User)
		if err != nil {
			return nil, err
		}
		return &BlockedListResp{Users: users}, nil
	})
}
