package socialnetwork

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dsb/internal/codec"
	"dsb/internal/svcutil"
)

// Regression for the corrupt-timeline-cache bug: readTimeline used to
// ignore the decode error on a cached "tl:" value, so a partially decoded
// entry (non-nil garbage IDs) shadowed the real timeline on every read and
// the authoritative-store fallback never ran. A poisoned entry must now be
// purged and the timeline served from the store.
func TestCorruptTimelineCacheFallsBackToStore(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	post := compose(t, sn, tokens["alice"], "the real post")
	// Warm and then poison bob's timeline-ID cache entry: a valid []string
	// encoding with a trailing junk byte decodes into non-nil garbage IDs
	// and an error — exactly the partial decode the old code trusted.
	mcCaller, err := sn.App.RPC("test", "social.mc-timeline")
	if err != nil {
		t.Fatal(err)
	}
	mc := svcutil.KV{C: mcCaller}
	enc, err := codec.Marshal([]string{"bogus-post-id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Set(ctx, "tl:bob", append(enc, 0x00), 0); err != nil {
		t.Fatal(err)
	}

	posts := timeline(t, sn, "bob")
	if len(posts) != 1 || posts[0].ID != post.ID {
		t.Fatalf("timeline = %+v, want the real post (corrupt cache entry served?)", posts)
	}
	// The poisoned entry was purged and replaced with the store's truth.
	if v, found, err := mc.Get(ctx, "tl:bob"); err != nil {
		t.Fatal(err)
	} else if found {
		var ids []string
		if err := codec.Unmarshal(v, &ids); err != nil || len(ids) != 1 || ids[0] != post.ID {
			t.Fatalf("cached ids = %v, %v (corrupt entry not purged)", ids, err)
		}
	}
}

// Regression for the lost-append bug: writeTimeline's fan-out used to
// read-modify-write each timeline document without any guard, so two posts
// landing on one follower's timeline concurrently could each read the same
// base list and one append would vanish. With the atomic ListPrepend every
// concurrent append must survive.
func TestConcurrentAppendsNoLostPosts(t *testing.T) {
	sn, _ := boot(t, "alice")
	ctx := context.Background()

	const posts = 16
	var wg sync.WaitGroup
	errs := make(chan error, posts)
	for i := 0; i < posts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AppendTimelineReq{Author: "alice", PostID: fmt.Sprintf("post-%02d", i), Ts: int64(i)}
			var caller svcutil.Caller
			caller, err := sn.App.RPC("test", "social.writeTimeline")
			if err != nil {
				errs <- err
				return
			}
			if err := caller.Call(ctx, "Append", req, nil); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Read the timeline document straight from the store: every append must
	// be present exactly once.
	dbCaller, err := sn.App.RPC("test", "social.db-timeline")
	if err != nil {
		t.Fatal(err)
	}
	doc, found, err := svcutil.DB{C: dbCaller}.Get(ctx, "timelines", "tl:alice")
	if err != nil || !found {
		t.Fatalf("timeline doc: found=%v err=%v", found, err)
	}
	var ids []string
	if err := codec.Unmarshal(doc.Body, &ids); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	if len(ids) != posts || len(seen) != posts {
		t.Fatalf("timeline has %d entries (%d distinct), want %d — concurrent appends lost", len(ids), len(seen), posts)
	}
}
