package socialnetwork

import (
	"fmt"
	"hash/crc32"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// Media size limits mirror production post limits the paper cites (videos
// kept within a few MB, like Twitter's allowances).
const (
	maxImageBytes = 1 << 20
	maxVideoBytes = 4 << 20
)

// UploadMediaReq carries raw media bytes.
type UploadMediaReq struct {
	Kind string // MediaImage or MediaVideo
	Data []byte
}

// UploadMediaResp returns the stored media record.
type UploadMediaResp struct{ Media Media }

// GetMediaReq fetches media metadata by ID.
type GetMediaReq struct{ ID string }

// GetMediaResp returns the record if found.
type GetMediaResp struct {
	Media Media
	Found bool
}

// registerMedia installs the image/video service. Images get a real 64-bit
// average-hash computed over an 8x8 downsample of the byte grid (the same
// perceptual-hash computation an image tier performs for dedup and
// thumbnails); videos get a checksum and a duration derived from size at
// the synthetic bitrate.
func registerMedia(srv *rpc.Server, db svcutil.DB, uid svcutil.Caller) {
	svcutil.Handle(srv, "Upload", func(ctx *rpc.Ctx, req *UploadMediaReq) (*UploadMediaResp, error) {
		m := Media{Kind: req.Kind, Bytes: int64(len(req.Data))}
		switch req.Kind {
		case MediaImage:
			if len(req.Data) > maxImageBytes {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "media: image exceeds %d bytes", maxImageBytes)
			}
			m.Hash = averageHash(req.Data)
		case MediaVideo:
			if len(req.Data) > maxVideoBytes {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "media: video exceeds %d bytes", maxVideoBytes)
			}
			m.Hash = uint64(crc32.ChecksumIEEE(req.Data))
			// Synthetic bitrate: 512 kbit/s => bytes / 64k = seconds.
			m.Duration = int64(len(req.Data)) * 1e9 / (64 << 10)
		default:
			return nil, rpc.Errorf(rpc.CodeBadRequest, "media: unknown kind %q", req.Kind)
		}
		var ur UniqueIDResp
		if err := uid.Call(ctx, "Next", UniqueIDReq{}, &ur); err != nil {
			return nil, err
		}
		m.ID = "m-" + ur.ID
		body, err := codec.Marshal(m)
		if err != nil {
			return nil, err
		}
		if err := db.Put(ctx, "media", docstore.Doc{ID: m.ID, Fields: map[string]string{"kind": m.Kind}, Body: body}); err != nil {
			return nil, err
		}
		return &UploadMediaResp{Media: m}, nil
	})
	svcutil.Handle(srv, "Get", func(ctx *rpc.Ctx, req *GetMediaReq) (*GetMediaResp, error) {
		doc, found, err := db.Get(ctx, "media", req.ID)
		if err != nil {
			return nil, err
		}
		if !found {
			return &GetMediaResp{}, nil
		}
		var m Media
		if err := codec.Unmarshal(doc.Body, &m); err != nil {
			return nil, fmt.Errorf("media: corrupt record %s: %w", req.ID, err)
		}
		return &GetMediaResp{Media: m, Found: true}, nil
	})
}

// averageHash treats the payload as a square grayscale pixel grid,
// downsamples it to 8x8 by block averaging, and sets one bit per cell that
// is brighter than the global mean — a real perceptual-hash computation on
// whatever bytes the client uploads.
func averageHash(data []byte) uint64 {
	if len(data) == 0 {
		return 0
	}
	// Treat the buffer as a side x side image, clipping the ragged tail.
	side := 1
	for (side+1)*(side+1) <= len(data) {
		side++
	}
	cell := side / 8
	if cell == 0 {
		cell = 1
	}
	var sums [8][8]uint64
	var counts [8][8]uint64
	for y := 0; y < side; y++ {
		cy := y / cell
		if cy > 7 {
			cy = 7
		}
		row := y * side
		for x := 0; x < side; x++ {
			cx := x / cell
			if cx > 7 {
				cx = 7
			}
			sums[cy][cx] += uint64(data[row+x])
			counts[cy][cx]++
		}
	}
	var total, n uint64
	var avg [8][8]uint64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if counts[y][x] > 0 {
				avg[y][x] = sums[y][x] / counts[y][x]
				total += avg[y][x]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	mean := total / n
	var h uint64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			h <<= 1
			if counts[y][x] > 0 && avg[y][x] > mean {
				h |= 1
			}
		}
	}
	return h
}
