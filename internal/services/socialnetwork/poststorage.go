package socialnetwork

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// StorePostReq persists a composed post.
type StorePostReq struct{ Post Post }

// ReadPostReq fetches one post.
type ReadPostReq struct{ ID string }

// ReadPostResp returns the post if found.
type ReadPostResp struct {
	Post  Post
	Found bool
}

// ReadPostsReq batch-fetches posts by ID.
type ReadPostsReq struct{ IDs []string }

// ReadPostsResp returns found posts, preserving request order.
type ReadPostsResp struct{ Posts []Post }

const postCacheTTL = 10 * time.Minute

// registerPostStorage installs the postsStorage service: the system of
// record for posts, with a lookaside cache in front — the memcached/
// MongoDB pair of Figure 4. Reads run through the shared svcutil.ReadPath:
// corrupt cache entries are purged rather than silently refetched on every
// read, and concurrent misses on one hot post (every follower's timeline
// hydrating the same fresh post) collapse into a single store fetch.
func registerPostStorage(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, noCoalesce bool) {
	svcutil.Handle(srv, "Store", func(ctx *rpc.Ctx, req *StorePostReq) (*struct{}, error) {
		p := req.Post
		if p.ID == "" || p.Author == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "postStorage: post needs ID and author")
		}
		body, err := codec.Marshal(p)
		if err != nil {
			return nil, err
		}
		doc := docstore.Doc{
			ID:     p.ID,
			Fields: map[string]string{"author": p.Author},
			Nums:   map[string]int64{"ts": p.CreatedAt},
			Body:   body,
		}
		if err := db.Put(ctx, "posts", doc); err != nil {
			return nil, err
		}
		// Write-through so immediate timeline reads hit the cache.
		mc.Set(ctx, "post:"+p.ID, body, postCacheTTL) //nolint:errcheck // cache fill is best-effort
		return nil, nil
	})

	postPath := &svcutil.ReadPath[Post]{
		MC:         mc,
		TTL:        postCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) (Post, error) {
			var p Post
			err := codec.Unmarshal(b, &p)
			return p, err
		},
		Fetch: func(ctx context.Context, key string) (Post, []byte, bool, error) {
			id := strings.TrimPrefix(key, "post:")
			doc, found, err := db.Get(ctx, "posts", id)
			if err != nil || !found {
				return Post{}, nil, false, err
			}
			var p Post
			if err := codec.Unmarshal(doc.Body, &p); err != nil {
				return Post{}, nil, false, fmt.Errorf("postStorage: corrupt post %s: %w", id, err)
			}
			return p, doc.Body, true, nil
		},
	}
	readOne := func(ctx *rpc.Ctx, id string) (Post, bool, error) {
		return postPath.Get(ctx, "post:"+id)
	}

	svcutil.Handle(srv, "Read", func(ctx *rpc.Ctx, req *ReadPostReq) (*ReadPostResp, error) {
		p, found, err := readOne(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return &ReadPostResp{Post: p, Found: found}, nil
	})

	svcutil.Handle(srv, "ReadBatch", func(ctx *rpc.Ctx, req *ReadPostsReq) (*ReadPostsResp, error) {
		// Hydrating a timeline reads K posts at once; one MGet replaces K
		// per-key cache RPCs (and on a sharded cache costs at most one call
		// per shard). A batch-level failure just skips the optimization.
		hits := make(map[string][]byte, len(req.IDs))
		if len(req.IDs) > 1 {
			keys := make([]string, len(req.IDs))
			for i, id := range req.IDs {
				keys[i] = "post:" + id
			}
			if got, err := mc.MGet(ctx, keys); err == nil {
				hits = got
			}
		}
		out := make([]Post, 0, len(req.IDs))
		for _, id := range req.IDs {
			if raw, ok := hits["post:"+id]; ok {
				var p Post
				if err := codec.Unmarshal(raw, &p); err == nil {
					out = append(out, p)
					continue
				}
				// Corrupt batch entry: purge and take the single-key path,
				// which refetches from the store (the ReadPath invariant).
				mc.Delete(ctx, "post:"+id) //nolint:errcheck
			}
			// Miss: the per-key path keeps coalescing and cache population.
			p, found, err := readOne(ctx, id)
			if err != nil {
				return nil, err
			}
			if found {
				out = append(out, p)
			}
		}
		return &ReadPostsResp{Posts: out}, nil
	})

	svcutil.Handle(srv, "AuthorPosts", func(ctx *rpc.Ctx, req *InfoReq) (*ReadPostsResp, error) {
		docs, err := db.Find(ctx, "posts", "author", req.Username, 100)
		if err != nil {
			return nil, err
		}
		out := make([]Post, 0, len(docs))
		for _, d := range docs {
			var p Post
			if err := codec.Unmarshal(d.Body, &p); err != nil {
				continue
			}
			out = append(out, p)
		}
		return &ReadPostsResp{Posts: out}, nil
	})
}

// registerReadPost installs the readPost service, the batching layer
// between timelines and post storage (distinct tiers in Figure 4).
func registerReadPost(srv *rpc.Server, storage svcutil.Caller) {
	svcutil.Handle(srv, "Read", func(ctx *rpc.Ctx, req *ReadPostsReq) (*ReadPostsResp, error) {
		var resp ReadPostsResp
		if err := storage.Call(ctx, "ReadBatch", ReadPostsReq{IDs: req.IDs}, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	})
}
