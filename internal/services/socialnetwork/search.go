package socialnetwork

import (
	"math"
	"sort"
	"strings"
	"sync"

	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// IndexPostReq adds a post to the search index.
type IndexPostReq struct {
	PostID string
	Text   string
}

// SearchReq queries the index.
type SearchReq struct {
	Query string
	Limit int64
}

// SearchHit is one scored result.
type SearchHit struct {
	PostID string
	Score  float64
}

// SearchResp returns hits, best first.
type SearchResp struct{ Hits []SearchHit }

var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "the": true, "is": true, "are": true,
	"to": true, "of": true, "in": true, "on": true, "for": true, "with": true,
	"at": true, "this": true, "that": true, "it": true, "my": true, "i": true,
}

// tokenize lowercases and splits on non-alphanumerics, dropping stopwords —
// the Xapian-style normalization pipeline.
func tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tok := b.String()
			if !stopwords[tok] && len(tok) > 1 {
				out = append(out, tok)
			}
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// searchShard is one index partition: an in-memory inverted index with
// per-document term frequencies for TF-IDF scoring.
type searchShard struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // term -> postID -> tf
	docLen   map[string]int
}

func newSearchShard() *searchShard {
	return &searchShard{postings: make(map[string]map[string]int), docLen: make(map[string]int)}
}

func (s *searchShard) index(postID, text string) {
	terms := tokenize(text)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docLen[postID] = len(terms)
	for _, t := range terms {
		m, ok := s.postings[t]
		if !ok {
			m = make(map[string]int)
			s.postings[t] = m
		}
		m[postID]++
	}
}

func (s *searchShard) query(terms []string, limit int) []SearchHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.docLen)
	if n == 0 {
		return nil
	}
	scores := make(map[string]float64)
	for _, t := range terms {
		posting := s.postings[t]
		if len(posting) == 0 {
			continue
		}
		idf := math.Log(1 + float64(n)/float64(len(posting)))
		for id, tf := range posting {
			dl := s.docLen[id]
			if dl == 0 {
				dl = 1
			}
			scores[id] += (float64(tf) / float64(dl)) * idf
		}
	}
	hits := make([]SearchHit, 0, len(scores))
	for id, sc := range scores {
		hits = append(hits, SearchHit{PostID: id, Score: sc})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].PostID > hits[j].PostID // newer snowflake IDs first
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// registerSearchShard installs one index partition service (index0..n in
// Figure 4).
func registerSearchShard(srv *rpc.Server) {
	shard := newSearchShard()
	svcutil.Handle(srv, "Index", func(ctx *rpc.Ctx, req *IndexPostReq) (*struct{}, error) {
		if req.PostID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "search: post ID required")
		}
		shard.index(req.PostID, req.Text)
		return nil, nil
	})
	svcutil.Handle(srv, "Query", func(ctx *rpc.Ctx, req *SearchReq) (*SearchResp, error) {
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 10
		}
		return &SearchResp{Hits: shard.query(tokenize(req.Query), limit)}, nil
	})
}

// registerSearch installs the search front service: documents are routed
// to a shard by post-ID hash on writes, and queries fan out to every shard
// in parallel with a merge by score.
func registerSearch(srv *rpc.Server, shards []svcutil.Caller) {
	pick := func(postID string) svcutil.Caller {
		h := uint32(2166136261)
		for i := 0; i < len(postID); i++ {
			h = (h ^ uint32(postID[i])) * 16777619
		}
		return shards[int(h)%len(shards)]
	}
	svcutil.Handle(srv, "Index", func(ctx *rpc.Ctx, req *IndexPostReq) (*struct{}, error) {
		if len(shards) == 0 {
			return nil, rpc.Errorf(rpc.CodeUnavailable, "search: no shards")
		}
		return nil, pick(req.PostID).Call(ctx, "Index", *req, nil)
	})
	svcutil.Handle(srv, "Query", func(ctx *rpc.Ctx, req *SearchReq) (*SearchResp, error) {
		limit := int(req.Limit)
		if limit <= 0 {
			limit = 10
		}
		type result struct {
			hits []SearchHit
			err  error
		}
		results := make([]result, len(shards))
		var wg sync.WaitGroup
		for i, sh := range shards {
			wg.Add(1)
			go func(i int, sh svcutil.Caller) {
				defer wg.Done()
				var resp SearchResp
				err := sh.Call(ctx, "Query", SearchReq{Query: req.Query, Limit: int64(limit)}, &resp)
				results[i] = result{hits: resp.Hits, err: err}
			}(i, sh)
		}
		wg.Wait()
		var merged []SearchHit
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
			merged = append(merged, r.hits...)
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].Score != merged[j].Score {
				return merged[i].Score > merged[j].Score
			}
			return merged[i].PostID > merged[j].PostID
		})
		if len(merged) > limit {
			merged = merged[:limit]
		}
		return &SearchResp{Hits: merged}, nil
	})
}
