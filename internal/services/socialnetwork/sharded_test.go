package socialnetwork

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// bootSharded is boot with a sharded storage tier: every db/mc backend
// group runs as shards×replicas instances behind consistent-hash routing.
func bootSharded(t *testing.T, shards, replicas int, users ...string) (*SocialNetwork, map[string]string) {
	t.Helper()
	app := core.NewApp("social-sharded", core.Options{})
	t.Cleanup(func() { app.Close() })
	sn, err := New(app, Config{SearchShards: 2, Shards: shards, ShardReplicas: replicas})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	tokens := make(map[string]string, len(users))
	for _, u := range users {
		if err := sn.User.Call(ctx, "Register", RegisterReq{Username: u, Password: "pw-" + u}, nil); err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
		var lr LoginResp
		if err := sn.User.Call(ctx, "Login", LoginReq{Username: u, Password: "pw-" + u}, &lr); err != nil {
			t.Fatalf("login %s: %v", u, err)
		}
		tokens[u] = lr.Token
	}
	return sn, tokens
}

// TestShardedEndToEnd runs the core social-network flow — follow, compose,
// timeline, block — on a 3-shard×2-replica storage tier. The services are
// byte-identical to the single-instance deployment; only the wiring layer
// changed, which is exactly what the refactor promises.
func TestShardedEndToEnd(t *testing.T) {
	sn, tokens := bootSharded(t, 3, 2, "alice", "bob", "carol")
	ctx := context.Background()

	// The stores really are sharded: each db tier registered 6 instances
	// spread over 3 shard labels.
	instances := sn.App.Registry.Instances("social.db-posts")
	if len(instances) != 6 {
		t.Fatalf("db-posts has %d instances, want 6", len(instances))
	}
	labels := make(map[string]int)
	for _, inst := range instances {
		labels[inst.Meta[shard.MetaShard]]++
	}
	if len(labels) != 3 {
		t.Fatalf("db-posts shard labels = %v, want 3 distinct", labels)
	}

	for _, f := range []string{"bob", "carol"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: f, Followee: "alice"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Enough posts that the keys provably span multiple shards.
	var ids []string
	for i := 0; i < 12; i++ {
		post := compose(t, sn, tokens["alice"], fmt.Sprintf("post %d from alice", i))
		ids = append(ids, post.ID)
	}
	for _, reader := range []string{"alice", "bob", "carol"} {
		posts := timeline(t, sn, reader)
		if len(posts) != 12 {
			t.Fatalf("%s timeline has %d posts, want 12", reader, len(posts))
		}
		// Newest-first, fully hydrated.
		for i, p := range posts {
			if p.ID != ids[len(ids)-1-i] {
				t.Fatalf("%s timeline order: got %s at %d, want %s", reader, p.ID, i, ids[len(ids)-1-i])
			}
			if p.Author != "alice" || p.Text == "" {
				t.Fatalf("%s timeline post %d not hydrated: %+v", reader, i, p)
			}
		}
	}

	// Block filtering still composes with sharded block-list storage.
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "carol", Followee: "bob"}, nil); err != nil {
		t.Fatal(err)
	}
	bobPost := compose(t, sn, tokens["bob"], "bob says hi")
	if err := sn.Frontend.Do(ctx, "POST", "/block", BlockBody{Token: tokens["carol"], Target: "bob"}, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range timeline(t, sn, "carol") {
		if p.ID == bobPost.ID {
			t.Fatal("blocked author's post leaked into carol's timeline")
		}
	}
}

// TestShardedSurvivesReplicaFault makes one replica of the posts store
// error behind the routing layer: with two replicas per shard, reads fall
// over to the healthy sibling and the timeline stays fully hydrated.
func TestShardedSurvivesReplicaFault(t *testing.T) {
	inj := fault.NewInjector(7)
	app := core.NewApp("social-sharded-fault", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	sn, err := New(app, Config{SearchShards: 2, Shards: 2, ShardReplicas: 2})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	for _, u := range []string{"alice", "bob"} {
		if err := sn.User.Call(ctx, "Register", RegisterReq{Username: u, Password: "pw-" + u}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var lr LoginResp
	if err := sn.User.Call(ctx, "Login", LoginReq{Username: "alice", Password: "pw-alice"}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		var resp ComposePostResp
		if err := sn.Compose.Call(ctx, "Compose", ComposePostReq{Token: lr.Token, Text: fmt.Sprintf("post %d", i)}, &resp); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.Post.ID)
	}

	// Fail every call pinned to the first replica of each db-posts shard:
	// the fault targets replica *addresses*, so the sibling stays healthy.
	seen := make(map[string]bool)
	for _, inst := range sn.App.Registry.Instances("social.db-posts") {
		label := inst.Meta[shard.MetaShard]
		if seen[label] {
			continue
		}
		seen[label] = true
		defer inj.Add(fault.Rule{To: "social.db-posts", Addr: inst.Addr, ErrCode: rpc.CodeUnavailable})()
	}

	// Force the read path to the store: wipe the post cache via TTL-free
	// timeline reads. (The cache may still serve; the point is the read
	// must not error even when a store replica does.)
	deadline := time.Now().Add(2 * time.Second)
	for {
		var resp ReadTimelineResp
		err := sn.ReadTimeline.Call(ctx, "Read", ReadTimelineReq{User: "bob", Limit: 50}, &resp)
		if err == nil && len(resp.Posts) == 8 && !resp.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline under replica fault: err=%v posts=%d degraded=%v", err, len(resp.Posts), resp.Degraded)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
