package socialnetwork

import (
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config sizes the deployment.
type Config struct {
	// SearchShards is the number of index partitions (default 3).
	SearchShards int
	// CacheBytes bounds each cache tier (default 64 MiB).
	CacheBytes int64
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire (between
	// tracing and the app's resilience stack): fault injection and
	// per-experiment instrumentation hook in here.
	Middleware []transport.Middleware
	// Replicas scales stateless logic tiers out at boot, keyed by tier name
	// ("composePost", "text", ...). Only tiers whose state lives in the
	// db/mc stores may be scaled; entries for stateful tiers (the stores,
	// caches, and search index shards) are ignored. Tiers default to one
	// replica. The control plane scales tiers dynamically instead through a
	// Spawner; this knob provides the static baseline.
	Replicas map[string]int
	// DisableDegradation turns off graceful degradation: readTimeline and
	// composePost fail hard when a non-critical downstream (post hydration,
	// block list, search index) is unreachable, instead of serving a
	// Degraded response. Used by the chaos experiment's unprotected arm.
	DisableDegradation bool
	// FanoutWorkers bounds writeTimeline's parallel push to follower
	// timelines (default 8). 1 reproduces the old sequential fan-out — the
	// hotpath experiment's contrast arm.
	FanoutWorkers int
	// DisableCoalescing turns off miss coalescing on the cache-aside read
	// paths (timelines, posts, profiles), so every concurrent miss becomes
	// its own backing-store read. Used by the hotpath experiment's
	// stampede arm.
	DisableCoalescing bool
	// Shards partitions every db/mc storage tier into this many
	// consistent-hash shards (default 1 = the single-instance layout).
	// With Shards > 1 or ShardReplicas > 1 the stores boot through
	// svcutil.StartShardReplicas — each shard replica carries its shard
	// index in registry metadata — and services reach them through shard
	// routers instead of load balancers, routing each key to its owning
	// replica set.
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	// Replicas converge by write-all and read-repair (see svcutil).
	ShardReplicas int
}

// replicable names the logic tiers that are safe to run multi-instance:
// their state is external (document stores, caches) or derived per replica
// (the unique-ID worker number). Store, cache, and search-index tiers hold
// per-instance state and must stay out of this set.
var replicable = map[string]bool{
	"uniqueID": true, "user": true, "urlShorten": true, "userTag": true,
	"text": true, "media": true, "socialGraph": true, "blockedUsers": true,
	"postStorage": true, "readPost": true, "writeTimeline": true,
	"readTimeline": true, "search": true, "ads": true, "recommender": true,
	"favorite": true, "composePost": true,
}

// SocialNetwork is a running deployment: the REST front door plus direct
// RPC clients for tests and load generators.
type SocialNetwork struct {
	App      *core.App
	Frontend *rest.Client

	// Direct tier clients, exposed for tests and benchmarks.
	Compose      svcutil.Caller
	ReadTimeline svcutil.Caller
	User         svcutil.Caller
	Graph        svcutil.Caller
	Search       svcutil.Caller
}

// New boots the full Social Network on the given app: storage tiers first,
// then leaf services, then orchestrators, then the front door.
func New(app *core.App, cfg Config) (*SocialNetwork, error) {
	if cfg.SearchShards <= 0 {
		cfg.SearchShards = 3
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}

	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ShardReplicas <= 0 {
		cfg.ShardReplicas = 1
	}
	sharded := cfg.Shards > 1 || cfg.ShardReplicas > 1

	// Storage tiers: one cache and/or document store per backend group,
	// each its own microservice, as in Figure 4. In the sharded layout each
	// backend group becomes Shards×ShardReplicas instances under the same
	// service name — every (shard, replica) pair owns a *fresh* store, since
	// replicas converge only through write-all and read-repair.
	stores := []string{"db-posts", "db-timeline", "db-graph", "db-users", "db-urls", "db-media", "db-favorites"}
	for _, name := range stores {
		if sharded {
			err := svcutil.StartShardReplicas(app, "social."+name, cfg.Shards, cfg.ShardReplicas, func(int, int) func(*rpc.Server) {
				store := docstore.NewStore()
				return func(s *rpc.Server) { docstore.RegisterService(s, store) }
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		store := docstore.NewStore()
		if _, err := app.StartRPC("social."+name, func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return nil, err
		}
	}
	caches := []string{"mc-posts", "mc-timeline", "mc-users", "mc-urls", "mc-favorites"}
	for _, name := range caches {
		if sharded {
			err := svcutil.StartShardReplicas(app, "social."+name, cfg.Shards, cfg.ShardReplicas, func(int, int) func(*rpc.Server) {
				cache := kv.New(cfg.CacheBytes)
				return func(s *rpc.Server) { kv.RegisterService(s, cache) }
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		cache := kv.New(cfg.CacheBytes)
		if _, err := app.StartRPC("social."+name, func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return nil, err
		}
	}

	degrade := !cfg.DisableDegradation

	cl := func(caller, target string) (svcutil.Caller, error) {
		return app.RPC("social."+caller, "social."+target, cfg.Middleware...)
	}
	must := func(c svcutil.Caller, err error) svcutil.Caller {
		if err != nil {
			panic(err)
		}
		return c
	}
	// db and mc wire a service to a storage tier in whichever mode the
	// deployment runs: a load-balanced caller for the single-instance
	// layout, a consistent-hash shard router for the sharded one. The typed
	// clients keep one method surface either way, so the services above
	// never know which layout they run on.
	db := func(caller, target string) svcutil.DB {
		if !sharded {
			return svcutil.DB{C: must(cl(caller, target))}
		}
		router, err := app.ShardedRPC("social."+caller, "social."+target, cfg.Middleware...)
		if err != nil {
			panic(err)
		}
		return svcutil.DB{Shards: router}
	}
	mc := func(caller, target string) svcutil.KV {
		if !sharded {
			return svcutil.KV{C: must(cl(caller, target))}
		}
		router, err := app.ShardedRPC("social."+caller, "social."+target, cfg.Middleware...)
		if err != nil {
			panic(err)
		}
		return svcutil.KV{Shards: router}
	}
	// Boot order respects the dependency graph, so every client resolves.
	// startN boots cfg.Replicas[name] replicas of a replicable tier (one
	// otherwise), handing each replica its index for identity derivation.
	var boot []func() error
	startN := func(name string, register func(i int) func(*rpc.Server)) {
		n := 1
		if replicable[name] {
			if r := cfg.Replicas[name]; r > n {
				n = r
			}
		}
		boot = append(boot, func() error {
			return svcutil.StartReplicas(app, "social."+name, n, register)
		})
	}
	start := func(name string, register func(*rpc.Server)) {
		startN(name, func(int) func(*rpc.Server) { return register })
	}

	// Each unique-ID replica gets its own worker number so IDs never
	// collide across replicas.
	startN("uniqueID", func(i int) func(*rpc.Server) {
		return func(s *rpc.Server) { registerUniqueID(s, uint64(i+1), cfg.Clock) }
	})
	start("user", func(s *rpc.Server) {
		registerUser(s, db("user", "db-users"), mc("user", "mc-users"), cfg.DisableCoalescing)
	})
	start("urlShorten", func(s *rpc.Server) {
		registerURLShorten(s, db("urlShorten", "db-urls"), mc("urlShorten", "mc-urls"))
	})
	start("userTag", func(s *rpc.Server) {
		registerUserTag(s, must(cl("userTag", "user")))
	})
	start("text", func(s *rpc.Server) {
		registerText(s, must(cl("text", "urlShorten")), must(cl("text", "userTag")))
	})
	start("media", func(s *rpc.Server) {
		registerMedia(s, db("media", "db-media"), must(cl("media", "uniqueID")))
	})
	start("socialGraph", func(s *rpc.Server) {
		registerSocialGraph(s, db("socialGraph", "db-graph"), must(cl("socialGraph", "user")))
	})
	start("blockedUsers", func(s *rpc.Server) {
		registerBlockedUsers(s, db("blockedUsers", "db-graph"))
	})
	start("postStorage", func(s *rpc.Server) {
		registerPostStorage(s, db("postStorage", "db-posts"), mc("postStorage", "mc-posts"), cfg.DisableCoalescing)
	})
	start("readPost", func(s *rpc.Server) {
		registerReadPost(s, must(cl("readPost", "postStorage")))
	})
	start("writeTimeline", func(s *rpc.Server) {
		registerWriteTimeline(s, must(cl("writeTimeline", "socialGraph")),
			db("writeTimeline", "db-timeline"),
			mc("writeTimeline", "mc-timeline"),
			cfg.FanoutWorkers)
	})
	start("readTimeline", func(s *rpc.Server) {
		registerReadTimeline(s,
			db("readTimeline", "db-timeline"),
			mc("readTimeline", "mc-timeline"),
			must(cl("readTimeline", "readPost")), must(cl("readTimeline", "blockedUsers")),
			degrade, cfg.DisableCoalescing)
	})
	for i := 0; i < cfg.SearchShards; i++ {
		name := fmt.Sprintf("search-index%d", i)
		start(name, registerSearchShard)
	}
	start("search", func(s *rpc.Server) {
		shards := make([]svcutil.Caller, cfg.SearchShards)
		for i := range shards {
			shards[i] = must(cl("search", fmt.Sprintf("search-index%d", i)))
		}
		registerSearch(s, shards)
	})
	start("ads", func(s *rpc.Server) { registerAds(s, nil) })
	start("recommender", func(s *rpc.Server) {
		registerRecommender(s, must(cl("recommender", "socialGraph")))
	})
	start("favorite", func(s *rpc.Server) {
		registerFavorite(s, db("favorite", "db-favorites"), mc("favorite", "mc-favorites"))
	})
	start("composePost", func(s *rpc.Server) {
		registerComposePost(s, composeDeps{
			user:     must(cl("composePost", "user")),
			uniqueID: must(cl("composePost", "uniqueID")),
			text:     must(cl("composePost", "text")),
			media:    must(cl("composePost", "media")),
			storage:  must(cl("composePost", "postStorage")),
			timeline: must(cl("composePost", "writeTimeline")),
			search:   must(cl("composePost", "search")),
			readPost: must(cl("composePost", "readPost")),
			now:      cfg.Clock,
		}, degrade)
	})
	for _, b := range boot {
		if err := b(); err != nil {
			return nil, err
		}
	}

	// Front door (nginx tier).
	if _, err := app.StartREST("social.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			compose:      must(cl("frontend", "composePost")),
			readTimeline: must(cl("frontend", "readTimeline")),
			readPost:     must(cl("frontend", "readPost")),
			user:         must(cl("frontend", "user")),
			graph:        must(cl("frontend", "socialGraph")),
			blocked:      must(cl("frontend", "blockedUsers")),
			search:       must(cl("frontend", "search")),
			ads:          must(cl("frontend", "ads")),
			recommender:  must(cl("frontend", "recommender")),
			favorite:     must(cl("frontend", "favorite")),
		})
	}); err != nil {
		return nil, err
	}

	sn := &SocialNetwork{App: app}
	var err error
	if sn.Frontend, err = app.REST("client", "social.frontend"); err != nil {
		return nil, err
	}
	if sn.Compose, err = app.RPC("client", "social.composePost"); err != nil {
		return nil, err
	}
	if sn.ReadTimeline, err = app.RPC("client", "social.readTimeline"); err != nil {
		return nil, err
	}
	if sn.User, err = app.RPC("client", "social.user"); err != nil {
		return nil, err
	}
	if sn.Graph, err = app.RPC("client", "social.socialGraph"); err != nil {
		return nil, err
	}
	if sn.Search, err = app.RPC("client", "social.search"); err != nil {
		return nil, err
	}
	return sn, nil
}
