package socialnetwork

import (
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config sizes the deployment.
type Config struct {
	// SearchShards is the number of index partitions (default 3).
	SearchShards int
	// CacheBytes bounds each cache tier (default 64 MiB).
	CacheBytes int64
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire (between
	// tracing and the app's resilience stack): fault injection and
	// per-experiment instrumentation hook in here.
	Middleware []transport.Middleware
	// Replicas scales stateless logic tiers out at boot, keyed by tier name
	// ("composePost", "text", ...). Only tiers whose state lives in the
	// db/mc stores may be scaled; entries for stateful tiers (the stores,
	// caches, and search index shards) are ignored. Tiers default to one
	// replica. The control plane scales tiers dynamically instead through a
	// Spawner; this knob provides the static baseline.
	Replicas map[string]int
	// DisableDegradation turns off graceful degradation: readTimeline and
	// composePost fail hard when a non-critical downstream (post hydration,
	// block list, search index) is unreachable, instead of serving a
	// Degraded response. Used by the chaos experiment's unprotected arm.
	DisableDegradation bool
	// FanoutWorkers bounds writeTimeline's parallel push to follower
	// timelines (default 8). 1 reproduces the old sequential fan-out — the
	// hotpath experiment's contrast arm.
	FanoutWorkers int
	// DisableCoalescing turns off miss coalescing on the cache-aside read
	// paths (timelines, posts, profiles), so every concurrent miss becomes
	// its own backing-store read. Used by the hotpath experiment's
	// stampede arm.
	DisableCoalescing bool
}

// replicable names the logic tiers that are safe to run multi-instance:
// their state is external (document stores, caches) or derived per replica
// (the unique-ID worker number). Store, cache, and search-index tiers hold
// per-instance state and must stay out of this set.
var replicable = map[string]bool{
	"uniqueID": true, "user": true, "urlShorten": true, "userTag": true,
	"text": true, "media": true, "socialGraph": true, "blockedUsers": true,
	"postStorage": true, "readPost": true, "writeTimeline": true,
	"readTimeline": true, "search": true, "ads": true, "recommender": true,
	"favorite": true, "composePost": true,
}

// SocialNetwork is a running deployment: the REST front door plus direct
// RPC clients for tests and load generators.
type SocialNetwork struct {
	App      *core.App
	Frontend *rest.Client

	// Direct tier clients, exposed for tests and benchmarks.
	Compose      svcutil.Caller
	ReadTimeline svcutil.Caller
	User         svcutil.Caller
	Graph        svcutil.Caller
	Search       svcutil.Caller
}

// New boots the full Social Network on the given app: storage tiers first,
// then leaf services, then orchestrators, then the front door.
func New(app *core.App, cfg Config) (*SocialNetwork, error) {
	if cfg.SearchShards <= 0 {
		cfg.SearchShards = 3
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}

	// Storage tiers: one cache and/or document store per backend group,
	// each its own microservice, as in Figure 4.
	stores := []string{"db-posts", "db-timeline", "db-graph", "db-users", "db-urls", "db-media", "db-favorites"}
	for _, name := range stores {
		store := docstore.NewStore()
		if _, err := app.StartRPC("social."+name, func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return nil, err
		}
	}
	caches := []string{"mc-posts", "mc-timeline", "mc-users", "mc-urls", "mc-favorites"}
	for _, name := range caches {
		cache := kv.New(cfg.CacheBytes)
		if _, err := app.StartRPC("social."+name, func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return nil, err
		}
	}

	degrade := !cfg.DisableDegradation

	cl := func(caller, target string) (svcutil.Caller, error) {
		return app.RPC("social."+caller, "social."+target, cfg.Middleware...)
	}
	must := func(c svcutil.Caller, err error) svcutil.Caller {
		if err != nil {
			panic(err)
		}
		return c
	}
	// Boot order respects the dependency graph, so every client resolves.
	// startN boots cfg.Replicas[name] replicas of a replicable tier (one
	// otherwise), handing each replica its index for identity derivation.
	var boot []func() error
	startN := func(name string, register func(i int) func(*rpc.Server)) {
		n := 1
		if replicable[name] {
			if r := cfg.Replicas[name]; r > n {
				n = r
			}
		}
		boot = append(boot, func() error {
			return svcutil.StartReplicas(app, "social."+name, n, register)
		})
	}
	start := func(name string, register func(*rpc.Server)) {
		startN(name, func(int) func(*rpc.Server) { return register })
	}

	// Each unique-ID replica gets its own worker number so IDs never
	// collide across replicas.
	startN("uniqueID", func(i int) func(*rpc.Server) {
		return func(s *rpc.Server) { registerUniqueID(s, uint64(i+1), cfg.Clock) }
	})
	start("user", func(s *rpc.Server) {
		registerUser(s, svcutil.DB{C: must(cl("user", "db-users"))}, svcutil.KV{C: must(cl("user", "mc-users"))}, cfg.DisableCoalescing)
	})
	start("urlShorten", func(s *rpc.Server) {
		registerURLShorten(s, svcutil.DB{C: must(cl("urlShorten", "db-urls"))}, svcutil.KV{C: must(cl("urlShorten", "mc-urls"))})
	})
	start("userTag", func(s *rpc.Server) {
		registerUserTag(s, must(cl("userTag", "user")))
	})
	start("text", func(s *rpc.Server) {
		registerText(s, must(cl("text", "urlShorten")), must(cl("text", "userTag")))
	})
	start("media", func(s *rpc.Server) {
		registerMedia(s, svcutil.DB{C: must(cl("media", "db-media"))}, must(cl("media", "uniqueID")))
	})
	start("socialGraph", func(s *rpc.Server) {
		registerSocialGraph(s, svcutil.DB{C: must(cl("socialGraph", "db-graph"))}, must(cl("socialGraph", "user")))
	})
	start("blockedUsers", func(s *rpc.Server) {
		registerBlockedUsers(s, svcutil.DB{C: must(cl("blockedUsers", "db-graph"))})
	})
	start("postStorage", func(s *rpc.Server) {
		registerPostStorage(s, svcutil.DB{C: must(cl("postStorage", "db-posts"))}, svcutil.KV{C: must(cl("postStorage", "mc-posts"))}, cfg.DisableCoalescing)
	})
	start("readPost", func(s *rpc.Server) {
		registerReadPost(s, must(cl("readPost", "postStorage")))
	})
	start("writeTimeline", func(s *rpc.Server) {
		registerWriteTimeline(s, must(cl("writeTimeline", "socialGraph")),
			svcutil.DB{C: must(cl("writeTimeline", "db-timeline"))},
			svcutil.KV{C: must(cl("writeTimeline", "mc-timeline"))},
			cfg.FanoutWorkers)
	})
	start("readTimeline", func(s *rpc.Server) {
		registerReadTimeline(s,
			svcutil.DB{C: must(cl("readTimeline", "db-timeline"))},
			svcutil.KV{C: must(cl("readTimeline", "mc-timeline"))},
			must(cl("readTimeline", "readPost")), must(cl("readTimeline", "blockedUsers")),
			degrade, cfg.DisableCoalescing)
	})
	for i := 0; i < cfg.SearchShards; i++ {
		name := fmt.Sprintf("search-index%d", i)
		start(name, registerSearchShard)
	}
	start("search", func(s *rpc.Server) {
		shards := make([]svcutil.Caller, cfg.SearchShards)
		for i := range shards {
			shards[i] = must(cl("search", fmt.Sprintf("search-index%d", i)))
		}
		registerSearch(s, shards)
	})
	start("ads", func(s *rpc.Server) { registerAds(s, nil) })
	start("recommender", func(s *rpc.Server) {
		registerRecommender(s, must(cl("recommender", "socialGraph")))
	})
	start("favorite", func(s *rpc.Server) {
		registerFavorite(s, svcutil.DB{C: must(cl("favorite", "db-favorites"))}, svcutil.KV{C: must(cl("favorite", "mc-favorites"))})
	})
	start("composePost", func(s *rpc.Server) {
		registerComposePost(s, composeDeps{
			user:     must(cl("composePost", "user")),
			uniqueID: must(cl("composePost", "uniqueID")),
			text:     must(cl("composePost", "text")),
			media:    must(cl("composePost", "media")),
			storage:  must(cl("composePost", "postStorage")),
			timeline: must(cl("composePost", "writeTimeline")),
			search:   must(cl("composePost", "search")),
			readPost: must(cl("composePost", "readPost")),
			now:      cfg.Clock,
		}, degrade)
	})
	for _, b := range boot {
		if err := b(); err != nil {
			return nil, err
		}
	}

	// Front door (nginx tier).
	if _, err := app.StartREST("social.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			compose:      must(cl("frontend", "composePost")),
			readTimeline: must(cl("frontend", "readTimeline")),
			readPost:     must(cl("frontend", "readPost")),
			user:         must(cl("frontend", "user")),
			graph:        must(cl("frontend", "socialGraph")),
			blocked:      must(cl("frontend", "blockedUsers")),
			search:       must(cl("frontend", "search")),
			ads:          must(cl("frontend", "ads")),
			recommender:  must(cl("frontend", "recommender")),
			favorite:     must(cl("frontend", "favorite")),
		})
	}); err != nil {
		return nil, err
	}

	sn := &SocialNetwork{App: app}
	var err error
	if sn.Frontend, err = app.REST("client", "social.frontend"); err != nil {
		return nil, err
	}
	if sn.Compose, err = app.RPC("client", "social.composePost"); err != nil {
		return nil, err
	}
	if sn.ReadTimeline, err = app.RPC("client", "social.readTimeline"); err != nil {
		return nil, err
	}
	if sn.User, err = app.RPC("client", "social.user"); err != nil {
		return nil, err
	}
	if sn.Graph, err = app.RPC("client", "social.socialGraph"); err != nil {
		return nil, err
	}
	if sn.Search, err = app.RPC("client", "social.search"); err != nil {
		return nil, err
	}
	return sn, nil
}
