package socialnetwork

import (
	"fmt"
	"sync"
	"time"

	"dsb/internal/core"
	"dsb/internal/mq"
	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config sizes the deployment.
type Config struct {
	// SearchShards is the number of index partitions (default 3).
	SearchShards int
	// CacheBytes bounds each cache tier (default 64 MiB).
	CacheBytes int64
	// Clock overrides time for deterministic tests.
	Clock func() time.Time
	// Middleware is installed on every inter-tier client wire (between
	// tracing and the app's resilience stack): fault injection and
	// per-experiment instrumentation hook in here.
	Middleware []transport.Middleware
	// Replicas scales stateless logic tiers out at boot, keyed by tier name
	// ("composePost", "text", ...). Only tiers whose state lives in the
	// db/mc stores may be scaled; entries for stateful tiers (the stores,
	// caches, and search index shards) are ignored. Tiers default to one
	// replica. The control plane scales tiers dynamically instead through a
	// Spawner; this knob provides the static baseline.
	Replicas map[string]int
	// DisableDegradation turns off graceful degradation: readTimeline and
	// composePost fail hard when a non-critical downstream (post hydration,
	// block list, search index) is unreachable, instead of serving a
	// Degraded response. Used by the chaos experiment's unprotected arm.
	DisableDegradation bool
	// FanoutWorkers bounds writeTimeline's parallel push to follower
	// timelines (default 8). 1 reproduces the old sequential fan-out — the
	// hotpath experiment's contrast arm.
	FanoutWorkers int
	// AsyncFanout moves the follower fan-out off the compose write path:
	// writeTimeline publishes a FanoutEvent to the broker tier and returns
	// at broker ack; the "fanout" consumer-group tier hydrates follower
	// timelines behind the write. Authors still read their own writes
	// synchronously; followers converge within the group's drain time
	// (bounded by DrainFanout in tests).
	AsyncFanout bool
	// FanoutConsumers sizes the fanout consumer tier at boot (default 2).
	// Only meaningful with AsyncFanout; the control plane can grow the tier
	// further on lag through the Spawner.
	FanoutConsumers int
	// BrokerShards partitions the broker tier into this many instances
	// (default 1): each topic's traffic spreads across shards by message
	// key, and publishers/consumers route per key through the shard ring.
	BrokerShards int
	// BrokerReplicas is the replica count per broker shard (default 1).
	// With BrokerReplicas > 1 every publish is mirrored to the shard's
	// sibling brokers before it is acked, so un-acked messages survive a
	// broker crash: when the ring evicts the dead instance, consumers fail
	// over and leased-but-unacked messages redeliver from a mirror.
	BrokerReplicas int
	// PushFanout switches the fanout consumer tier from long-poll Consume
	// loops to standing push streams: each consumer opens one Push stream
	// per broker (per shard primary on a partitioned tier) and the broker
	// streams FanoutEvents as they arrive — no idle-poll RPCs, no
	// per-shard grace tax. Delivery stays lease-based at-least-once; a
	// consumer whose stream dies reopens against the surviving replica.
	// Only meaningful with AsyncFanout; polling remains the default (and
	// the ablation arm of the push experiment).
	PushFanout bool
	// DisableCoalescing turns off miss coalescing on the cache-aside read
	// paths (timelines, posts, profiles), so every concurrent miss becomes
	// its own backing-store read. Used by the hotpath experiment's
	// stampede arm.
	DisableCoalescing bool
	// Shards partitions every db/mc storage tier into this many
	// consistent-hash shards (default 1 = the single-instance layout).
	// With Shards > 1 or ShardReplicas > 1 the stores boot through
	// svcutil.StartShardReplicas — each shard replica carries its shard
	// index in registry metadata — and services reach them through shard
	// routers instead of load balancers, routing each key to its owning
	// replica set.
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	// Replicas converge by write-all and read-repair (see svcutil).
	ShardReplicas int
	// Spawner, when set, receives every index-independent replicable tier
	// boot (Define + Spawn) so the control plane can autoscale those tiers
	// at runtime. Stateful tiers and identity-bearing replicas (uniqueID)
	// never route through it.
	Spawner svcutil.Definer
}

// replicable names the logic tiers that are safe to run multi-instance:
// their state is external (document stores, caches) or derived per replica
// (the unique-ID worker number). Store, cache, and search-index tiers hold
// per-instance state and must stay out of this set.
var replicable = map[string]bool{
	"uniqueID": true, "user": true, "urlShorten": true, "userTag": true,
	"text": true, "media": true, "socialGraph": true, "blockedUsers": true,
	"postStorage": true, "readPost": true, "writeTimeline": true,
	"readTimeline": true, "search": true, "ads": true, "recommender": true,
	"favorite": true, "composePost": true,
	// fanout replicas are members of one broker consumer group — they share
	// the partition, so scaling the tier out never double-delivers.
	"fanout": true,
}

// SocialNetwork is a running deployment: the REST front door plus direct
// RPC clients for tests and load generators.
type SocialNetwork struct {
	App      *core.App
	Frontend *rest.Client

	// Direct tier clients, exposed for tests and benchmarks.
	Compose      svcutil.Caller
	ReadTimeline svcutil.Caller
	User         svcutil.Caller
	Graph        svcutil.Caller
	Search       svcutil.Caller

	// Broker is the message-broker tier behind async fan-out (nil unless
	// Config.AsyncFanout); exported so tests and experiments can read
	// backlog stats directly across every broker instance.
	Broker *mq.Cluster

	mu        sync.Mutex
	consumers []*fanoutConsumer
}

// addConsumer records a fanout replica for teardown; replicas spawned by
// the control plane at runtime register here too.
func (sn *SocialNetwork) addConsumer(fc *fanoutConsumer) {
	sn.mu.Lock()
	sn.consumers = append(sn.consumers, fc)
	sn.mu.Unlock()
}

// DrainFanout blocks until the fanout consumer group's backlog reaches
// zero — every published timeline event delivered and settled — or the
// timeout elapses. This is the read-your-writes grace bound deterministic
// tests use before asserting follower-visible state. A nil-broker (sync
// fan-out) deployment drains trivially.
func (sn *SocialNetwork) DrainFanout(timeout time.Duration) error {
	if sn.Broker == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		lag := sn.Broker.GroupLag(timelineTopic, fanoutGroup)
		if lag == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("socialnetwork: fanout backlog still %d after %v", lag, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the fanout consumer replicas; call before closing the app.
// Synchronous deployments have none and close trivially.
func (sn *SocialNetwork) Close() {
	sn.mu.Lock()
	consumers := sn.consumers
	sn.consumers = nil
	sn.mu.Unlock()
	for _, fc := range consumers {
		fc.Close()
	}
}

// New boots the full Social Network on the given app: storage tiers first,
// then leaf services, then orchestrators, then the front door.
func New(app *core.App, cfg Config) (*SocialNetwork, error) {
	if cfg.SearchShards <= 0 {
		cfg.SearchShards = 3
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}

	// All deployment wiring — sharded storage boots, replica scaling,
	// load-balanced vs. shard-routed clients — goes through the shared
	// Stack, the same layout vocabulary every app in the suite uses.
	replicas := cfg.Replicas
	if cfg.AsyncFanout {
		// The fanout tier's boot size rides the same replica map as every
		// other tier; copy so the caller's map is never mutated.
		replicas = make(map[string]int, len(cfg.Replicas)+1)
		for k, v := range cfg.Replicas {
			replicas[k] = v
		}
		if replicas["fanout"] <= 0 {
			n := cfg.FanoutConsumers
			if n <= 0 {
				n = 2
			}
			replicas["fanout"] = n
		}
	}
	stack := &svcutil.Stack{
		App:            app,
		Prefix:         "social.",
		Shards:         cfg.Shards,
		ShardReplicas:  cfg.ShardReplicas,
		BrokerShards:   cfg.BrokerShards,
		BrokerReplicas: cfg.BrokerReplicas,
		CacheBytes:     cfg.CacheBytes,
		Middleware:     cfg.Middleware,
		Replicable:     replicable,
		Replicas:       replicas,
		Spawner:        cfg.Spawner,
	}

	// Storage tiers: one cache and/or document store per backend group,
	// each its own microservice, as in Figure 4. In the sharded layout each
	// backend group becomes Shards×ShardReplicas instances under the same
	// service name — every (shard, replica) pair owns a *fresh* store, since
	// replicas converge only through write-all and read-repair.
	if err := stack.StartStores("db-posts", "db-timeline", "db-graph", "db-users", "db-urls", "db-media", "db-favorites"); err != nil {
		return nil, err
	}
	if err := stack.StartCaches("mc-posts", "mc-timeline", "mc-users", "mc-urls", "mc-favorites"); err != nil {
		return nil, err
	}

	degrade := !cfg.DisableDegradation
	sn := &SocialNetwork{App: app}

	cl, db, mc := stack.Caller, stack.DB, stack.KV
	// Boot order respects the dependency graph, so every client resolves.
	// startN boots cfg.Replicas[name] replicas of a replicable tier (one
	// otherwise), handing each replica its index for identity derivation.
	startN, start := stack.StartN, stack.Start

	// Each unique-ID replica gets its own worker number so IDs never
	// collide across replicas.
	startN("uniqueID", func(i int) func(*rpc.Server) {
		return func(s *rpc.Server) { registerUniqueID(s, uint64(i+1), cfg.Clock) }
	})
	start("user", func(s *rpc.Server) {
		registerUser(s, db("user", "db-users"), mc("user", "mc-users"), cfg.DisableCoalescing)
	})
	start("urlShorten", func(s *rpc.Server) {
		registerURLShorten(s, db("urlShorten", "db-urls"), mc("urlShorten", "mc-urls"))
	})
	start("userTag", func(s *rpc.Server) {
		registerUserTag(s, cl("userTag", "user"))
	})
	start("text", func(s *rpc.Server) {
		registerText(s, cl("text", "urlShorten"), cl("text", "userTag"))
	})
	start("media", func(s *rpc.Server) {
		registerMedia(s, db("media", "db-media"), cl("media", "uniqueID"))
	})
	start("socialGraph", func(s *rpc.Server) {
		registerSocialGraph(s, db("socialGraph", "db-graph"), cl("socialGraph", "user"))
	})
	start("blockedUsers", func(s *rpc.Server) {
		registerBlockedUsers(s, db("blockedUsers", "db-graph"))
	})
	start("postStorage", func(s *rpc.Server) {
		registerPostStorage(s, db("postStorage", "db-posts"), mc("postStorage", "mc-posts"), cfg.DisableCoalescing)
	})
	start("readPost", func(s *rpc.Server) {
		registerReadPost(s, cl("readPost", "postStorage"))
	})
	// The broker tier boots just before writeTimeline when fan-out is
	// async: its configure hook declares the timeline topic and subscribes
	// the fanout group, so no publish misses the group.
	if cfg.AsyncFanout {
		sn.Broker = stack.StartBroker("broker", ConfigureTimelineBroker)
	}
	start("writeTimeline", func(s *rpc.Server) {
		var bus mq.Bus
		if cfg.AsyncFanout {
			bus = stack.MQ("writeTimeline", "broker")
		}
		registerWriteTimeline(s, cl("writeTimeline", "socialGraph"),
			db("writeTimeline", "db-timeline"),
			mc("writeTimeline", "mc-timeline"),
			cfg.FanoutWorkers, bus)
	})
	if cfg.AsyncFanout {
		start("fanout", func(s *rpc.Server) {
			sn.addConsumer(registerFanoutConsumer(s,
				stack.MQ("fanout", "broker"),
				cl("fanout", "socialGraph"),
				db("fanout", "db-timeline"),
				mc("fanout", "mc-timeline"),
				cfg.FanoutWorkers, cfg.PushFanout))
		})
	}
	start("readTimeline", func(s *rpc.Server) {
		registerReadTimeline(s,
			db("readTimeline", "db-timeline"),
			mc("readTimeline", "mc-timeline"),
			cl("readTimeline", "readPost"), cl("readTimeline", "blockedUsers"),
			degrade, cfg.DisableCoalescing)
	})
	for i := 0; i < cfg.SearchShards; i++ {
		name := fmt.Sprintf("search-index%d", i)
		start(name, registerSearchShard)
	}
	start("search", func(s *rpc.Server) {
		shards := make([]svcutil.Caller, cfg.SearchShards)
		for i := range shards {
			shards[i] = cl("search", fmt.Sprintf("search-index%d", i))
		}
		registerSearch(s, shards)
	})
	start("ads", func(s *rpc.Server) { registerAds(s, nil) })
	start("recommender", func(s *rpc.Server) {
		registerRecommender(s, cl("recommender", "socialGraph"))
	})
	start("favorite", func(s *rpc.Server) {
		registerFavorite(s, db("favorite", "db-favorites"), mc("favorite", "mc-favorites"))
	})
	start("composePost", func(s *rpc.Server) {
		registerComposePost(s, composeDeps{
			user:     cl("composePost", "user"),
			uniqueID: cl("composePost", "uniqueID"),
			text:     cl("composePost", "text"),
			media:    cl("composePost", "media"),
			storage:  cl("composePost", "postStorage"),
			timeline: cl("composePost", "writeTimeline"),
			search:   cl("composePost", "search"),
			readPost: cl("composePost", "readPost"),
			now:      cfg.Clock,
		}, degrade)
	})
	if err := stack.Boot(); err != nil {
		return nil, err
	}
	// Stop the fanout consumers on app teardown even when the caller never
	// calls SocialNetwork.Close: their long polls must not outlive the stack.
	app.OnClose(sn.Close)

	// Front door (nginx tier).
	if _, err := app.StartREST("social.frontend", func(s *rest.Server) {
		registerFrontend(s, frontendDeps{
			compose:      cl("frontend", "composePost"),
			readTimeline: cl("frontend", "readTimeline"),
			readPost:     cl("frontend", "readPost"),
			user:         cl("frontend", "user"),
			graph:        cl("frontend", "socialGraph"),
			blocked:      cl("frontend", "blockedUsers"),
			search:       cl("frontend", "search"),
			ads:          cl("frontend", "ads"),
			recommender:  cl("frontend", "recommender"),
			favorite:     cl("frontend", "favorite"),
		})
	}); err != nil {
		return nil, err
	}

	var err error
	if sn.Frontend, err = app.REST("client", "social.frontend"); err != nil {
		return nil, err
	}
	if sn.Compose, err = app.RPC("client", "social.composePost"); err != nil {
		return nil, err
	}
	if sn.ReadTimeline, err = app.RPC("client", "social.readTimeline"); err != nil {
		return nil, err
	}
	if sn.User, err = app.RPC("client", "social.user"); err != nil {
		return nil, err
	}
	if sn.Graph, err = app.RPC("client", "social.socialGraph"); err != nil {
		return nil, err
	}
	if sn.Search, err = app.RPC("client", "social.search"); err != nil {
		return nil, err
	}
	return sn, nil
}
