package socialnetwork

import (
	"context"
	"encoding/base64"
	"strings"
	"testing"

	"dsb/internal/core"
	"dsb/internal/rpc"
)

// boot creates a full deployment and registers + logs in the given users,
// returning their tokens.
func boot(t *testing.T, users ...string) (*SocialNetwork, map[string]string) {
	t.Helper()
	app := core.NewApp("social-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	sn, err := New(app, Config{SearchShards: 2})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	ctx := context.Background()
	tokens := make(map[string]string, len(users))
	for _, u := range users {
		if err := sn.User.Call(ctx, "Register", RegisterReq{Username: u, Password: "pw-" + u}, nil); err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
		var lr LoginResp
		if err := sn.User.Call(ctx, "Login", LoginReq{Username: u, Password: "pw-" + u}, &lr); err != nil {
			t.Fatalf("login %s: %v", u, err)
		}
		tokens[u] = lr.Token
	}
	return sn, tokens
}

func compose(t *testing.T, sn *SocialNetwork, token, text string) Post {
	t.Helper()
	var resp ComposePostResp
	if err := sn.Compose.Call(context.Background(), "Compose", ComposePostReq{Token: token, Text: text}, &resp); err != nil {
		t.Fatalf("compose: %v", err)
	}
	return resp.Post
}

func timeline(t *testing.T, sn *SocialNetwork, user string) []Post {
	t.Helper()
	var resp ReadTimelineResp
	if err := sn.ReadTimeline.Call(context.Background(), "Read", ReadTimelineReq{User: user, Limit: 50}, &resp); err != nil {
		t.Fatalf("timeline %s: %v", user, err)
	}
	return resp.Posts
}

func TestPostReachesFollowersTimeline(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob", "carol")
	ctx := context.Background()
	// bob and carol follow alice.
	for _, f := range []string{"bob", "carol"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: f, Followee: "alice"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	post := compose(t, sn, tokens["alice"], "hello world from alice")

	for _, reader := range []string{"alice", "bob", "carol"} {
		posts := timeline(t, sn, reader)
		if len(posts) != 1 || posts[0].ID != post.ID {
			t.Fatalf("%s timeline = %+v", reader, posts)
		}
	}
	// A non-follower sees nothing.
	if posts := timeline(t, sn, "carol"); posts[0].Author != "alice" {
		t.Fatalf("author = %s", posts[0].Author)
	}
	sn2, _ := boot(t, "dave")
	_ = sn2
}

func TestTimelineNewestFirst(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	first := compose(t, sn, tokens["alice"], "first post")
	second := compose(t, sn, tokens["alice"], "second post")
	posts := timeline(t, sn, "bob")
	if len(posts) != 2 || posts[0].ID != second.ID || posts[1].ID != first.ID {
		t.Fatalf("order wrong: %+v", posts)
	}
}

func TestComposeRequiresAuth(t *testing.T) {
	sn, _ := boot(t, "alice")
	err := sn.Compose.Call(context.Background(), "Compose", ComposePostReq{Token: "bogus", Text: "x"}, nil)
	if !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("want unauthorized, got %v", err)
	}
}

func TestMentionsAndURLs(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob")
	post := compose(t, sn, tokens["alice"], "hey @bob @ghost check https://example.com/very/long/path")
	if len(post.Mentions) != 1 || post.Mentions[0] != "bob" {
		t.Fatalf("mentions = %v (ghost must be dropped)", post.Mentions)
	}
	if len(post.URLs) != 1 || !strings.HasPrefix(post.URLs[0], shortPrefix) {
		t.Fatalf("urls = %v", post.URLs)
	}
	if strings.Contains(post.Text, "example.com") {
		t.Fatalf("text not rewritten: %q", post.Text)
	}
	if !strings.Contains(post.Text, post.URLs[0]) {
		t.Fatalf("short url missing from text: %q", post.Text)
	}
}

func TestRepostQuotesOriginal(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob")
	orig := compose(t, sn, tokens["alice"], "original thought")
	var resp ComposePostResp
	err := sn.Compose.Call(context.Background(), "Compose",
		ComposePostReq{Token: tokens["bob"], Text: "so true", RepostOf: orig.ID}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Post.Text, "RT @alice: original thought") {
		t.Fatalf("repost text = %q", resp.Post.Text)
	}
	// Repost of a missing post fails cleanly.
	err = sn.Compose.Call(context.Background(), "Compose",
		ComposePostReq{Token: tokens["bob"], Text: "x", RepostOf: "nope"}, nil)
	if !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("want not found, got %v", err)
	}
}

func TestSearchFindsPosts(t *testing.T) {
	sn, tokens := boot(t, "alice")
	compose(t, sn, tokens["alice"], "kubernetes cluster scaling tricks")
	compose(t, sn, tokens["alice"], "my coffee brewing notes")
	var resp SearchResp
	if err := sn.Search.Call(context.Background(), "Query", SearchReq{Query: "coffee brewing"}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 1 {
		t.Fatalf("hits = %+v", resp.Hits)
	}
	if err := sn.Search.Call(context.Background(), "Query", SearchReq{Query: "kubernetes"}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 1 {
		t.Fatalf("kubernetes hits = %+v", resp.Hits)
	}
}

func TestBlockedAuthorFiltered(t *testing.T) {
	sn, tokens := boot(t, "alice", "bob", "troll")
	ctx := context.Background()
	for _, a := range []string{"alice", "troll"} {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: a}, nil); err != nil {
			t.Fatal(err)
		}
	}
	compose(t, sn, tokens["alice"], "nice content")
	compose(t, sn, tokens["troll"], "bad content")
	if posts := timeline(t, sn, "bob"); len(posts) != 2 {
		t.Fatalf("pre-block timeline = %d posts", len(posts))
	}
	// Block via the REST front door (exercises auth path).
	if err := sn.Frontend.Do(ctx, "POST", "/block", BlockBody{Token: tokens["bob"], Target: "troll"}, nil); err != nil {
		t.Fatal(err)
	}
	posts := timeline(t, sn, "bob")
	if len(posts) != 1 || posts[0].Author != "alice" {
		t.Fatalf("post-block timeline = %+v", posts)
	}
}

func TestFollowUpdatesCounts(t *testing.T) {
	sn, _ := boot(t, "alice", "bob")
	ctx := context.Background()
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	var info InfoResp
	if err := sn.User.Call(ctx, "Info", InfoReq{Username: "alice"}, &info); err != nil {
		t.Fatal(err)
	}
	if info.Info.Followers != 1 {
		t.Fatalf("alice followers = %d", info.Info.Followers)
	}
	if err := sn.Graph.Call(ctx, "Unfollow", FollowReq{Follower: "bob", Followee: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sn.User.Call(ctx, "Info", InfoReq{Username: "alice"}, &info); err != nil {
		t.Fatal(err)
	}
	if info.Info.Followers != 0 {
		t.Fatalf("post-unfollow followers = %d", info.Info.Followers)
	}
	// Self-follow rejected.
	if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: "alice", Followee: "alice"}, nil); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("self-follow: %v", err)
	}
}

func TestRecommenderFriendsOfFriends(t *testing.T) {
	sn, _ := boot(t, "alice", "bob", "carol", "dave")
	ctx := context.Background()
	// alice -> bob, carol; bob -> dave; carol -> dave.
	follows := [][2]string{{"alice", "bob"}, {"alice", "carol"}, {"bob", "dave"}, {"carol", "dave"}}
	for _, f := range follows {
		if err := sn.Graph.Call(ctx, "Follow", FollowReq{Follower: f[0], Followee: f[1]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var rec RecommendResp
	var recClient = sn.App
	_ = recClient
	c, err := sn.App.RPC("test", "social.recommender")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call(ctx, "Recommend", RecommendReq{User: "alice", Limit: 5}, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Users) != 1 || rec.Users[0] != "dave" {
		t.Fatalf("recommendations = %v, want [dave]", rec.Users)
	}
}

func TestFrontendEndToEnd(t *testing.T) {
	sn, _ := boot(t)
	ctx := context.Background()
	fe := sn.Frontend

	// Register + login over REST.
	if err := fe.Do(ctx, "POST", "/register", CredentialsBody{Username: "eve", Password: "s3cret"}, nil); err != nil {
		t.Fatal(err)
	}
	var login LoginResp
	if err := fe.Do(ctx, "POST", "/login", CredentialsBody{Username: "eve", Password: "s3cret"}, &login); err != nil {
		t.Fatal(err)
	}
	// Wrong password rejected.
	if err := fe.Do(ctx, "POST", "/login", CredentialsBody{Username: "eve", Password: "wrong"}, nil); !rpc.IsCode(err, rpc.CodeUnauthorized) {
		t.Fatalf("bad login: %v", err)
	}

	// Post with an image attachment.
	img := base64.StdEncoding.EncodeToString(make([]byte, 4096))
	var post Post
	if err := fe.Do(ctx, "POST", "/posts", PostBody{Token: login.Token, Text: "coffee time", Images: []string{img}}, &post); err != nil {
		t.Fatal(err)
	}
	if post.Author != "eve" || len(post.MediaIDs) != 1 {
		t.Fatalf("post = %+v", post)
	}

	// Read it back by ID and via timeline.
	var got Post
	if err := fe.Do(ctx, "GET", "/posts/"+post.ID, nil, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != post.ID {
		t.Fatalf("got = %+v", got)
	}
	var tl []Post
	if err := fe.Do(ctx, "GET", "/timeline/eve", nil, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl) != 1 {
		t.Fatalf("timeline = %+v", tl)
	}

	// Search, ads, favorite, user info.
	var hits []SearchHit
	if err := fe.Do(ctx, "GET", "/search?q=coffee", nil, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("search hits = %+v", hits)
	}
	var ad AdsResp
	if err := fe.Do(ctx, "GET", "/ads?q=coffee+time", nil, &ad); err != nil {
		t.Fatal(err)
	}
	if !ad.Found || ad.Ad.Keyword != "coffee" {
		t.Fatalf("ad = %+v", ad)
	}
	var fav FavoriteCountResp
	if err := fe.Do(ctx, "POST", "/favorite", FavoriteBody{Token: login.Token, PostID: post.ID}, &fav); err != nil {
		t.Fatal(err)
	}
	if fav.Count != 1 {
		t.Fatalf("favorite count = %d", fav.Count)
	}
	// Favoriting twice stays at 1 (idempotent per user).
	if err := fe.Do(ctx, "POST", "/favorite", FavoriteBody{Token: login.Token, PostID: post.ID}, &fav); err != nil {
		t.Fatal(err)
	}
	if fav.Count != 1 {
		t.Fatalf("double favorite count = %d", fav.Count)
	}
	var info UserInfo
	if err := fe.Do(ctx, "GET", "/user/eve", nil, &info); err != nil {
		t.Fatal(err)
	}
	if info.Posts != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestTraceCoversComposePath(t *testing.T) {
	sn, tokens := boot(t, "alice")
	compose(t, sn, tokens["alice"], "trace me please")
	sn.App.FlushTraces()
	// Find the compose trace: it must include spans from composePost,
	// text, uniqueID, postStorage, writeTimeline, and search.
	want := []string{"social.composePost", "social.text", "social.uniqueID", "social.postStorage", "social.writeTimeline", "social.search"}
	found := map[string]bool{}
	for _, id := range sn.App.Traces.TraceIDs() {
		for _, span := range sn.App.Traces.Spans(id) {
			found[span.Service] = true
		}
	}
	for _, svc := range want {
		if !found[svc] {
			t.Fatalf("no span from %s; services seen: %v", svc, found)
		}
	}
}

func TestVideoUploadLimit(t *testing.T) {
	sn, tokens := boot(t, "alice")
	err := sn.Compose.Call(context.Background(), "Compose", ComposePostReq{
		Token:  tokens["alice"],
		Text:   "big video",
		Videos: [][]byte{make([]byte, maxVideoBytes+1)},
	}, nil)
	if !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("oversize video: %v", err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	sn, _ := boot(t, "alice")
	err := sn.User.Call(context.Background(), "Register", RegisterReq{Username: "alice", Password: "x"}, nil)
	if !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("duplicate register: %v", err)
	}
}
