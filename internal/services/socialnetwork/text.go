package socialnetwork

import (
	"strings"

	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// TextProcessReq carries the raw post text.
type TextProcessReq struct{ Text string }

// TextProcessResp carries the rewritten text and extracted entities.
type TextProcessResp struct {
	Text     string
	Mentions []string
	URLs     []string
}

// registerText installs the text-processing service: it extracts @mentions
// (verified against the user service via userTag) and links (shortened via
// urlShorten), and rewrites the post text with the shortened forms.
func registerText(srv *rpc.Server, shorten, tag svcutil.Caller) {
	svcutil.Handle(srv, "Process", func(ctx *rpc.Ctx, req *TextProcessReq) (*TextProcessResp, error) {
		if len(req.Text) > 4096 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "text: post exceeds 4096 chars")
		}
		tokens := strings.Fields(req.Text)
		var mentions, urls []string
		for _, tok := range tokens {
			switch {
			case strings.HasPrefix(tok, "@") && len(tok) > 1:
				mentions = append(mentions, strings.TrimRight(tok[1:], ".,!?;:"))
			case strings.HasPrefix(tok, "http://"), strings.HasPrefix(tok, "https://"):
				urls = append(urls, tok)
			}
		}

		// Verify mentions against real accounts.
		if len(mentions) > 0 {
			var vr UserTagResp
			if err := tag.Call(ctx, "Verify", UserTagReq{Usernames: mentions}, &vr); err != nil {
				return nil, err
			}
			mentions = vr.Valid
		}

		// Shorten every URL and substitute into the text.
		out := req.Text
		shortened := make([]string, 0, len(urls))
		for _, u := range urls {
			var sr ShortenResp
			if err := shorten.Call(ctx, "Shorten", ShortenReq{URL: u}, &sr); err != nil {
				return nil, err
			}
			shortened = append(shortened, sr.Short)
			out = strings.Replace(out, u, sr.Short, 1)
		}
		return &TextProcessResp{Text: out, Mentions: mentions, URLs: shortened}, nil
	})
}

// UserTagReq asks which of the given usernames exist.
type UserTagReq struct{ Usernames []string }

// UserTagResp returns the verified subset, in request order.
type UserTagResp struct{ Valid []string }

// registerUserTag installs the mention-verification service, which defers
// existence checks to the user service.
func registerUserTag(srv *rpc.Server, user svcutil.Caller) {
	svcutil.Handle(srv, "Verify", func(ctx *rpc.Ctx, req *UserTagReq) (*UserTagResp, error) {
		var er ExistsResp
		if err := user.Call(ctx, "Exists", ExistsReq{Usernames: req.Usernames}, &er); err != nil {
			return nil, err
		}
		return &UserTagResp{Valid: er.Existing}, nil
	})
}
