package socialnetwork

import (
	"fmt"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// AppendTimelineReq broadcasts a new post to its audience.
type AppendTimelineReq struct {
	Author string
	PostID string
	Ts     int64
}

// ReadTimelineReq fetches a user's home timeline.
type ReadTimelineReq struct {
	User  string
	Limit int64
}

// ReadTimelineResp returns posts, newest first, with blocked authors
// filtered out.
type ReadTimelineResp struct{ Posts []Post }

// timelineCap bounds stored timelines, like production fan-out caps.
const timelineCap = 1000

const timelineCacheTTL = time.Minute

// registerWriteTimeline installs the writeTimeline service: on every new
// post it fetches the author's followers from the social graph and
// prepends the post ID to each follower's home timeline and to the
// author's own, invalidating cache entries — write-path fan-out, the most
// expensive query in the application (the paper's repost/composePost
// observations hinge on it).
func registerWriteTimeline(srv *rpc.Server, graph svcutil.Caller, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Append", func(ctx *rpc.Ctx, req *AppendTimelineReq) (*struct{}, error) {
		if req.Author == "" || req.PostID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "writeTimeline: author and post required")
		}
		var followers NeighborsResp
		if err := graph.Call(ctx, "Followers", NeighborsReq{User: req.Author}, &followers); err != nil {
			return nil, err
		}
		audience := append(followers.Users, req.Author)
		for _, user := range audience {
			if err := prependTimeline(ctx, db, user, req.PostID); err != nil {
				return nil, err
			}
			mc.Delete(ctx, "tl:"+user) //nolint:errcheck // invalidation is best-effort
		}
		return nil, nil
	})
}

func prependTimeline(ctx *rpc.Ctx, db svcutil.DB, user, postID string) error {
	key := "tl:" + user
	doc, found, err := db.Get(ctx, "timelines", key)
	var ids []string
	if err != nil {
		return err
	}
	if found {
		if err := codec.Unmarshal(doc.Body, &ids); err != nil {
			return fmt.Errorf("writeTimeline: corrupt timeline %s: %w", user, err)
		}
	}
	ids = append([]string{postID}, ids...)
	if len(ids) > timelineCap {
		ids = ids[:timelineCap]
	}
	body, err := codec.Marshal(ids)
	if err != nil {
		return err
	}
	return db.Put(ctx, "timelines", docstore.Doc{ID: key, Body: body})
}

// registerReadTimeline installs the readTimeline service: cache-first
// timeline ID lookup, batched post hydration via readPost, and block-list
// filtering via blockedUsers.
func registerReadTimeline(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, readPost, blocked svcutil.Caller) {
	svcutil.Handle(srv, "Read", func(ctx *rpc.Ctx, req *ReadTimelineReq) (*ReadTimelineResp, error) {
		if req.User == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "readTimeline: user required")
		}
		limit := int(req.Limit)
		if limit <= 0 || limit > timelineCap {
			limit = 20
		}
		key := "tl:" + req.User
		var ids []string
		if v, found, err := mc.Get(ctx, key); err == nil && found {
			codec.Unmarshal(v, &ids) //nolint:errcheck // cache miss path below covers corruption
		}
		if ids == nil {
			doc, found, err := db.Get(ctx, "timelines", key)
			if err != nil {
				return nil, err
			}
			if found {
				if err := codec.Unmarshal(doc.Body, &ids); err != nil {
					return nil, fmt.Errorf("readTimeline: corrupt timeline %s: %w", req.User, err)
				}
				mc.Set(ctx, key, doc.Body, timelineCacheTTL) //nolint:errcheck
			}
		}
		if len(ids) > limit {
			ids = ids[:limit]
		}
		if len(ids) == 0 {
			return &ReadTimelineResp{}, nil
		}
		var posts ReadPostsResp
		if err := readPost.Call(ctx, "Read", ReadPostsReq{IDs: ids}, &posts); err != nil {
			return nil, err
		}
		var bl BlockedListResp
		if err := blocked.Call(ctx, "List", BlockedListReq{User: req.User}, &bl); err != nil {
			return nil, err
		}
		if len(bl.Users) == 0 {
			return &ReadTimelineResp{Posts: posts.Posts}, nil
		}
		blockedSet := make(map[string]bool, len(bl.Users))
		for _, u := range bl.Users {
			blockedSet[u] = true
		}
		out := posts.Posts[:0]
		for _, p := range posts.Posts {
			if !blockedSet[p.Author] {
				out = append(out, p)
			}
		}
		return &ReadTimelineResp{Posts: out}, nil
	})
}
