package socialnetwork

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/codec"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// AppendTimelineReq broadcasts a new post to its audience.
type AppendTimelineReq struct {
	Author string
	PostID string
	Ts     int64
}

// ReadTimelineReq fetches a user's home timeline.
type ReadTimelineReq struct {
	User  string
	Limit int64
}

// ReadTimelineResp returns posts, newest first, with blocked authors
// filtered out. Degraded marks a response assembled without a non-critical
// downstream — stale cached posts instead of fresh hydration, or an
// unfiltered timeline when the block list was unreachable — served instead
// of an error while that tier is partitioned or crashed.
type ReadTimelineResp struct {
	Posts    []Post
	Degraded bool
}

// timelineCap bounds stored timelines, like production fan-out caps.
const timelineCap = 1000

const timelineCacheTTL = time.Minute

// staleTimelineTTL bounds how old a degraded (stale-cache) timeline may be;
// generously longer than the ID cache, because serving it is already the
// fallback of last resort.
const staleTimelineTTL = 5 * time.Minute

// defaultFanoutWorkers bounds the write-path fan-out parallelism when the
// deployment does not set Config.FanoutWorkers.
const defaultFanoutWorkers = 8

// registerWriteTimeline installs the writeTimeline service: on every new
// post it fetches the author's followers from the social graph and
// prepends the post ID to each follower's home timeline and to the
// author's own, invalidating cache entries — write-path fan-out, the most
// expensive query in the application (the paper's repost/composePost
// observations hinge on it). Each per-follower push is one atomic
// ListPrepend on the timeline store (an unguarded get/modify/put cycle
// here used to lose concurrent appends), and the audience is walked by a
// bounded worker pool so a high-follower author costs ~ceil(F/workers)
// sequential RPC round-trips instead of F.
//
// With bus set (Config.AsyncFanout) the follower fan-out leaves the write
// path entirely: Append prepends the author's own timeline synchronously —
// authors always read their own writes — then publishes a FanoutEvent and
// returns at broker ack. The fanout consumer group pushes follower
// timelines behind the write (see fanout.go).
func registerWriteTimeline(srv *rpc.Server, graph svcutil.Caller, db svcutil.DB, mc svcutil.KV, workers int, bus mq.Bus) {
	if workers <= 0 {
		workers = defaultFanoutWorkers
	}
	svcutil.Handle(srv, "Append", func(ctx *rpc.Ctx, req *AppendTimelineReq) (*struct{}, error) {
		if req.Author == "" || req.PostID == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "writeTimeline: author and post required")
		}
		if bus != nil {
			if err := fanoutPush(ctx, db, mc, []string{req.Author}, req.PostID, 1, true); err != nil {
				return nil, err
			}
			body, err := codec.Marshal(FanoutEvent{Author: req.Author, PostID: req.PostID})
			if err != nil {
				return nil, err
			}
			// The key is the event's stable identity: a client retrying a
			// failed Append republishes the same key, and broker-side
			// publish dedup plus consumer-side idempotency make the retry
			// safe end to end.
			if _, err := bus.PublishKey(ctx, timelineTopic, req.Author+"/"+req.PostID, body); err != nil {
				return nil, err
			}
			return nil, nil
		}
		var followers NeighborsResp
		if err := graph.Call(ctx, "Followers", NeighborsReq{User: req.Author}, &followers); err != nil {
			return nil, err
		}
		audience := append(followers.Users, req.Author)
		if err := fanoutPush(ctx, db, mc, audience, req.PostID, workers, false); err != nil {
			return nil, err
		}
		return nil, nil
	})
}

// registerReadTimeline installs the readTimeline service: cache-first
// timeline ID lookup, batched post hydration via readPost, and block-list
// filtering via blockedUsers. The ID lookup runs through the shared
// svcutil.ReadPath, which purges corrupt cache entries instead of trusting
// a partial decode (a truncated "tl:" value used to shadow the real
// timeline forever) and coalesces concurrent misses on a hot key into a
// single store read. With degrade set, failures of the two enrichment hops
// downgrade the response instead of failing it: a dead readPost tier is
// bridged by the last successfully hydrated timeline ("tlp:" cache), and
// an unreachable blockedUsers tier skips filtering — both marked Degraded.
func registerReadTimeline(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, readPost, blocked svcutil.Caller, degrade, noCoalesce bool) {
	idsPath := &svcutil.ReadPath[[]string]{
		MC:         mc,
		TTL:        timelineCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) ([]string, error) {
			var ids []string
			if err := codec.Unmarshal(b, &ids); err != nil {
				return nil, err
			}
			return ids, nil
		},
		Fetch: func(ctx context.Context, key string) ([]string, []byte, bool, error) {
			doc, found, err := db.Get(ctx, "timelines", key)
			if err != nil || !found {
				return nil, nil, false, err
			}
			var ids []string
			if err := codec.Unmarshal(doc.Body, &ids); err != nil {
				return nil, nil, false, fmt.Errorf("readTimeline: corrupt timeline %s: %w", key, err)
			}
			return ids, doc.Body, true, nil
		},
	}
	svcutil.Handle(srv, "Read", func(ctx *rpc.Ctx, req *ReadTimelineReq) (*ReadTimelineResp, error) {
		if req.User == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "readTimeline: user required")
		}
		limit := int(req.Limit)
		if limit <= 0 || limit > timelineCap {
			limit = 20
		}
		ids, _, err := idsPath.Get(ctx, "tl:"+req.User)
		if err != nil {
			return nil, err
		}
		if len(ids) > limit {
			ids = ids[:limit]
		}
		if len(ids) == 0 {
			return &ReadTimelineResp{}, nil
		}
		staleKey := "tlp:" + req.User
		var posts ReadPostsResp
		if err := callBounded(ctx, degrade, readPost, "Read", ReadPostsReq{IDs: ids}, &posts); err != nil {
			if !degrade {
				return nil, err
			}
			// Hydration tier down: serve the last good timeline from the
			// stale-posts cache rather than erroring the whole read.
			if v, found, cerr := mc.Get(ctx, staleKey); cerr == nil && found {
				var stale []Post
				if codec.Unmarshal(v, &stale) == nil {
					return &ReadTimelineResp{Posts: stale, Degraded: true}, nil
				}
			}
			return nil, err
		}
		degraded := false
		var bl BlockedListResp
		if err := callBounded(ctx, degrade, blocked, "List", BlockedListReq{User: req.User}, &bl); err != nil {
			if !degrade {
				return nil, err
			}
			// Block list unreachable: an unfiltered timeline beats no
			// timeline; skip the filter and say so.
			degraded = true
			bl.Users = nil
		}
		out := posts.Posts
		if len(bl.Users) > 0 {
			blockedSet := make(map[string]bool, len(bl.Users))
			for _, u := range bl.Users {
				blockedSet[u] = true
			}
			out = posts.Posts[:0]
			for _, p := range posts.Posts {
				if !blockedSet[p.Author] {
					out = append(out, p)
				}
			}
		}
		if degrade && !degraded {
			// Only fully assembled timelines become the stale fallback.
			if body, err := codec.Marshal(out); err == nil {
				mc.Set(ctx, staleKey, body, staleTimelineTTL) //nolint:errcheck // best-effort
			}
		}
		return &ReadTimelineResp{Posts: out, Degraded: degraded}, nil
	})
}
