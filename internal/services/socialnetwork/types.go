// Package socialnetwork implements the suite's flagship application: a
// broadcast-style social network with uni-directional follow relationships,
// mirroring Figure 4 of the paper. A REST front door (the nginx tier)
// fans out over Thrift-style RPCs to ~30 microservices: post composition
// (unique IDs, text processing, URL shortening, user tags, media), post
// storage, write/read timelines, the social graph, login/user info,
// full-text search over index shards, ads, a follow recommender, favorites,
// and blocked users — each stateful tier backed by its own cache
// ("memcached") and document store ("MongoDB") microservices.
package socialnetwork

// Post is the stored post record shared by storage, timelines, and search.
type Post struct {
	ID        string
	Author    string
	Text      string   // processed text, with URLs shortened
	Mentions  []string // verified @user tags
	URLs      []string // shortened URLs
	MediaIDs  []string // attached media object IDs
	CreatedAt int64    // unix nanoseconds
}

// MediaKind discriminates image and video attachments.
const (
	MediaImage = "image"
	MediaVideo = "video"
)

// Media is an uploaded attachment's metadata.
type Media struct {
	ID       string
	Kind     string
	Bytes    int64
	Hash     uint64 // perceptual hash for images, checksum for video
	Duration int64  // video only, nanoseconds
}

// UserInfo is the public profile record.
type UserInfo struct {
	Username  string
	Followers int64
	Followees int64
	Posts     int64
}

// Ad is one advertisement.
type Ad struct {
	ID       string
	Keyword  string
	Text     string
	BidCents int64
}
