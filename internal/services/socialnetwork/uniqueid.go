package socialnetwork

import (
	"fmt"
	"sync"
	"time"

	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// UniqueIDReq asks for one snowflake-style ID.
type UniqueIDReq struct{}

// UniqueIDResp carries the generated ID.
type UniqueIDResp struct{ ID string }

// uniqueID issues time-ordered unique IDs: 41 bits of millisecond
// timestamp, 10 bits of machine ID, 12 bits of per-millisecond sequence —
// the classic snowflake layout the real service uses.
type uniqueID struct {
	machine uint64
	mu      sync.Mutex
	lastMs  int64
	seq     uint64
	now     func() time.Time
}

func registerUniqueID(srv *rpc.Server, machine uint64, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	u := &uniqueID{machine: machine & 0x3FF, now: now}
	svcutil.Handle(srv, "Next", func(ctx *rpc.Ctx, req *UniqueIDReq) (*UniqueIDResp, error) {
		return &UniqueIDResp{ID: u.next()}, nil
	})
}

func (u *uniqueID) next() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	ms := u.now().UnixMilli()
	if ms == u.lastMs {
		u.seq = (u.seq + 1) & 0xFFF
		if u.seq == 0 {
			// Sequence exhausted within this millisecond; spin to the next.
			for ms <= u.lastMs {
				ms = u.now().UnixMilli()
			}
		}
	} else {
		u.seq = 0
	}
	u.lastMs = ms
	id := uint64(ms)<<22 | u.machine<<12 | u.seq
	return fmt.Sprintf("%016x", id)
}
