package socialnetwork

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTokenize(t *testing.T) {
	got := tokenize("The quick BROWN-fox, jumps! over 42 a i")
	want := []string{"quick", "brown", "fox", "jumps", "over", "42"}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokenize = %v, want %v", got, want)
		}
	}
	if out := tokenize(""); len(out) != 0 {
		t.Fatalf("empty tokenize = %v", out)
	}
}

func TestSearchShardScoring(t *testing.T) {
	s := newSearchShard()
	s.index("p1", "coffee coffee coffee")
	s.index("p2", "coffee tea")
	s.index("p3", "tea only here")
	hits := s.query([]string{"coffee"}, 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].PostID != "p1" {
		t.Fatalf("tf ordering wrong: %+v", hits)
	}
	if got := s.query([]string{"nothing"}, 10); len(got) != 0 {
		t.Fatalf("miss = %+v", got)
	}
	if got := s.query([]string{"coffee"}, 1); len(got) != 1 {
		t.Fatalf("limit = %+v", got)
	}
}

func TestSearchShardEmpty(t *testing.T) {
	s := newSearchShard()
	if got := s.query([]string{"x"}, 5); got != nil {
		t.Fatalf("empty shard = %v", got)
	}
}

func TestAverageHashProperties(t *testing.T) {
	if averageHash(nil) != 0 {
		t.Fatal("empty hash != 0")
	}
	// Uniform images hash to 0 (no pixel above the mean).
	if h := averageHash(make([]byte, 4096)); h != 0 {
		t.Fatalf("uniform hash = %x", h)
	}
	// An image striped at cell granularity (8-row bands on a 64x64 grid)
	// has roughly half its hash bits set.
	img := make([]byte, 64*64)
	for i := range img {
		if (i/64/8)%2 == 0 {
			img[i] = 255
		}
	}
	h := averageHash(img)
	ones := 0
	for i := 0; i < 64; i++ {
		if h&(1<<i) != 0 {
			ones++
		}
	}
	if ones < 24 || ones > 40 {
		t.Fatalf("striped image set %d bits", ones)
	}
	// Hash is deterministic and shift-sensitive.
	if averageHash(img) != h {
		t.Fatal("hash not deterministic")
	}
}

// Property: averageHash never panics and similar images (one byte changed)
// have close hashes (Hamming distance <= 8).
func TestAverageHashStabilityProperty(t *testing.T) {
	f := func(data []byte, flip uint16) bool {
		h1 := averageHash(data)
		if len(data) == 0 {
			return h1 == 0
		}
		mutated := append([]byte(nil), data...)
		mutated[int(flip)%len(mutated)] ^= 0x10
		h2 := averageHash(mutated)
		diff := h1 ^ h2
		ones := 0
		for i := 0; i < 64; i++ {
			if diff&(1<<i) != 0 {
				ones++
			}
		}
		return ones <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnowflakeUniqueAndOrdered(t *testing.T) {
	now := time.Unix(1000, 0)
	u := &uniqueID{machine: 5, now: func() time.Time { return now }}
	seen := map[string]bool{}
	prev := ""
	for i := 0; i < 5000; i++ {
		if i%100 == 0 {
			now = now.Add(time.Millisecond)
		}
		id := u.next()
		if seen[id] {
			t.Fatalf("duplicate id %s at %d", id, i)
		}
		seen[id] = true
		if id < prev {
			t.Fatalf("ids not monotone: %s < %s", id, prev)
		}
		prev = id
	}
}

func TestHashPasswordSaltMatters(t *testing.T) {
	if hashPassword("pw", "a") == hashPassword("pw", "b") {
		t.Fatal("salt ignored")
	}
	if hashPassword("pw", "a") != hashPassword("pw", "a") {
		t.Fatal("hash not deterministic")
	}
}
