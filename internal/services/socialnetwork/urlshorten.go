package socialnetwork

import (
	"crypto/sha256"
	"encoding/hex"

	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// ShortenReq carries a full URL.
type ShortenReq struct{ URL string }

// ShortenResp carries the shortened form.
type ShortenResp struct{ Short string }

// ResolveReq looks up a short URL.
type ResolveReq struct{ Short string }

// ResolveResp returns the original URL.
type ResolveResp struct{ URL string }

const shortPrefix = "http://dsb.ly/"

// registerURLShorten installs the URL shortener: content-addressed short
// codes (so shortening is idempotent), persisted in its document store with
// a cache in front for resolution.
func registerURLShorten(srv *rpc.Server, db svcutil.DB, mc svcutil.KV) {
	svcutil.Handle(srv, "Shorten", func(ctx *rpc.Ctx, req *ShortenReq) (*ShortenResp, error) {
		if req.URL == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "urlShorten: empty URL")
		}
		sum := sha256.Sum256([]byte(req.URL))
		code := hex.EncodeToString(sum[:5])
		if err := db.Put(ctx, "urls", docstore.Doc{ID: code, Body: []byte(req.URL)}); err != nil {
			return nil, err
		}
		return &ShortenResp{Short: shortPrefix + code}, nil
	})
	svcutil.Handle(srv, "Resolve", func(ctx *rpc.Ctx, req *ResolveReq) (*ResolveResp, error) {
		code := req.Short
		if len(code) > len(shortPrefix) && code[:len(shortPrefix)] == shortPrefix {
			code = code[len(shortPrefix):]
		}
		if v, found, err := mc.Get(ctx, "url:"+code); err == nil && found {
			return &ResolveResp{URL: string(v)}, nil
		}
		doc, found, err := db.Get(ctx, "urls", code)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("urlShorten: unknown code %q", code)
		}
		mc.Set(ctx, "url:"+code, doc.Body, 0) //nolint:errcheck // cache fill is best-effort
		return &ResolveResp{URL: string(doc.Body)}, nil
	})
}
