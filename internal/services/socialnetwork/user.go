package socialnetwork

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// RegisterReq creates an account.
type RegisterReq struct{ Username, Password string }

// RegisterResp confirms creation.
type RegisterResp struct{ Username string }

// LoginReq authenticates a user.
type LoginReq struct{ Username, Password string }

// LoginResp returns a session token.
type LoginResp struct{ Token string }

// VerifyTokenReq validates a session token.
type VerifyTokenReq struct{ Token string }

// VerifyTokenResp returns the logged-in username.
type VerifyTokenResp struct {
	Username string
	Valid    bool
}

// ExistsReq asks which usernames exist.
type ExistsReq struct{ Usernames []string }

// ExistsResp returns the existing subset, in request order.
type ExistsResp struct{ Existing []string }

// InfoReq fetches a profile.
type InfoReq struct{ Username string }

// InfoResp returns the profile.
type InfoResp struct{ Info UserInfo }

// BumpStatReq adjusts a profile counter (posts/followers/followees).
type BumpStatReq struct {
	Username string
	Stat     string
	Delta    int64
}

const tokenTTL = time.Hour

// profileCacheTTL bounds cached profiles; short, because follower counts
// move constantly and BumpStat invalidation is best-effort.
const profileCacheTTL = 30 * time.Second

// registerUser installs the login/userInfo service: account registration
// with salted password hashes, token-based sessions kept in the cache tier
// with a TTL, existence checks for mention verification, and profile
// counters. Profile reads ("u:" keys) run through the shared
// svcutil.ReadPath — a celebrity profile is the textbook hot key, and
// before coalescing every concurrent Info miss became its own users-store
// read — with BumpStat invalidating the entry after every counter change.
func registerUser(srv *rpc.Server, db svcutil.DB, mc svcutil.KV, noCoalesce bool) {
	profilePath := &svcutil.ReadPath[UserInfo]{
		MC:         mc,
		TTL:        profileCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) (UserInfo, error) {
			var u UserInfo
			err := codec.Unmarshal(b, &u)
			return u, err
		},
		Fetch: func(ctx context.Context, key string) (UserInfo, []byte, bool, error) {
			username := strings.TrimPrefix(key, "u:")
			doc, found, err := db.Get(ctx, "users", username)
			if err != nil || !found {
				return UserInfo{}, nil, false, err
			}
			info := UserInfo{
				Username:  username,
				Followers: doc.Nums["followers"],
				Followees: doc.Nums["followees"],
				Posts:     doc.Nums["posts"],
			}
			enc, err := codec.Marshal(info)
			return info, enc, true, err
		},
	}
	svcutil.Handle(srv, "Register", func(ctx *rpc.Ctx, req *RegisterReq) (*RegisterResp, error) {
		if req.Username == "" || req.Password == "" {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "user: username and password required")
		}
		if _, found, err := db.Get(ctx, "users", req.Username); err != nil {
			return nil, err
		} else if found {
			return nil, rpc.Errorf(rpc.CodeConflict, "user: %q taken", req.Username)
		}
		salt := randomHex(8)
		doc := docstore.Doc{
			ID: req.Username,
			Fields: map[string]string{
				"salt": salt,
				"hash": hashPassword(req.Password, salt),
			},
			Nums: map[string]int64{"posts": 0, "followers": 0, "followees": 0},
		}
		if err := db.Put(ctx, "users", doc); err != nil {
			return nil, err
		}
		return &RegisterResp{Username: req.Username}, nil
	})

	svcutil.Handle(srv, "Login", func(ctx *rpc.Ctx, req *LoginReq) (*LoginResp, error) {
		doc, found, err := db.Get(ctx, "users", req.Username)
		if err != nil {
			return nil, err
		}
		if !found || hashPassword(req.Password, doc.Fields["salt"]) != doc.Fields["hash"] {
			return nil, rpc.Errorf(rpc.CodeUnauthorized, "user: bad credentials")
		}
		token := randomHex(16)
		if err := mc.Set(ctx, "tok:"+token, []byte(req.Username), tokenTTL); err != nil {
			return nil, err
		}
		return &LoginResp{Token: token}, nil
	})

	svcutil.Handle(srv, "VerifyToken", func(ctx *rpc.Ctx, req *VerifyTokenReq) (*VerifyTokenResp, error) {
		v, found, err := mc.Get(ctx, "tok:"+req.Token)
		if err != nil {
			return nil, err
		}
		if !found {
			return &VerifyTokenResp{}, nil
		}
		return &VerifyTokenResp{Username: string(v), Valid: true}, nil
	})

	svcutil.Handle(srv, "Exists", func(ctx *rpc.Ctx, req *ExistsReq) (*ExistsResp, error) {
		var out []string
		for _, u := range req.Usernames {
			if _, found, err := db.Get(ctx, "users", u); err != nil {
				return nil, err
			} else if found {
				out = append(out, u)
			}
		}
		return &ExistsResp{Existing: out}, nil
	})

	svcutil.Handle(srv, "Info", func(ctx *rpc.Ctx, req *InfoReq) (*InfoResp, error) {
		info, found, err := profilePath.Get(ctx, "u:"+req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("user: no user %q", req.Username)
		}
		return &InfoResp{Info: info}, nil
	})

	svcutil.Handle(srv, "BumpStat", func(ctx *rpc.Ctx, req *BumpStatReq) (*struct{}, error) {
		switch req.Stat {
		case "posts", "followers", "followees":
		default:
			return nil, rpc.Errorf(rpc.CodeBadRequest, "user: unknown stat %q", req.Stat)
		}
		doc, found, err := db.Get(ctx, "users", req.Username)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rpc.NotFoundf("user: no user %q", req.Username)
		}
		doc.Nums[req.Stat] += req.Delta
		if err := db.Put(ctx, "users", doc); err != nil {
			return nil, err
		}
		// Drop the cached profile so the next Info reflects the new count.
		mc.Delete(ctx, "u:"+req.Username) //nolint:errcheck // best-effort; TTL bounds staleness
		return nil, nil
	})
}

func hashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) //nolint:errcheck // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b)
}
