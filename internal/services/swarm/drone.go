package swarm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// syncMutex lets services.go avoid importing sync twice across files.
type syncMutex = sync.Mutex

// Placement selects where the heavy computation runs.
type Placement int

// Placements.
const (
	Edge Placement = iota
	Cloud
)

func (p Placement) String() string {
	if p == Edge {
		return "edge"
	}
	return "cloud"
}

// Clients are the service handles a drone uses; the boot code wires them
// with or without the wifi hop depending on placement.
type Clients struct {
	Route     svcutil.Caller // always cloud (constructRoute)
	Avoid     svcutil.Caller // on-drone (edge) or cloud
	Recognize svcutil.Caller // on-drone (edge) or cloud
	Telemetry svcutil.Caller // always cloud (sensor DBs)
	Log       svcutil.Caller // always on-drone
}

// Drone is one simulated vehicle.
type Drone struct {
	ID      string
	World   *World
	Pos     Point
	Heading int64 // degrees
	Seed    uint64
	Clients Clients
	// OnTick, if set, runs synchronously at the top of every mission loop
	// iteration — a hook for failure injection (e.g. dropping an obstacle
	// onto the remaining path mid-flight).
	OnTick func(pos Point, remaining []Point)
	// Degrade makes the telemetry hops (Report, StoreFrame) non-critical:
	// when the cloud sensor DBs are unreachable the mission flies on with
	// samples dropped and the result marked Degraded, instead of aborting
	// mid-air. Route construction and obstacle avoidance stay critical —
	// a drone without them cannot safely move.
	Degrade bool
	// StreamTelemetry batches the mission's sensor samples and frame
	// archives onto one standing Telemetry stream instead of a unary call
	// per tick — behind the wifi hop that turns an RTT per sample into an
	// RTT per mission. If the stream cannot open or dies mid-flight the
	// drone falls back to unary calls, keeping Degrade semantics.
	StreamTelemetry bool
}

// telemetry is one mission's telemetry session: the open stream, or nil
// when streaming is off / unavailable — then every push is a unary call.
type telemetry struct {
	d  *Drone
	st *transport.Stream
}

// open starts the mission stream if configured and the transport supports
// it; failures are not fatal (the session just stays unary).
func (d *Drone) openTelemetry(ctx context.Context) *telemetry {
	ts := &telemetry{d: d}
	if !d.StreamTelemetry {
		return ts
	}
	sc, ok := d.Clients.Telemetry.(transport.Streamer)
	if !ok {
		return ts
	}
	st, err := sc.Stream(ctx, "Telemetry", TelemetryOpen{DroneID: d.ID})
	if err == nil {
		ts.st = st
	}
	return ts
}

// push sends one item on the stream, falling back to the given unary call
// if the stream is gone (and disabling it for the rest of the mission on a
// send failure — the conn died; unary calls will redial).
func (ts *telemetry) push(ctx context.Context, item TelemetryItem, method string, req any) error {
	if ts.st != nil {
		if err := ts.st.Send(item); err == nil {
			return nil
		}
		ts.st.Cancel()
		ts.st = nil
	}
	return svcutil.CallBounded(ctx, ts.d.Degrade, ts.d.Clients.Telemetry, method, req, nil)
}

// finish half-closes the stream and waits for the server's end-of-stream,
// surfacing any persist error the server hit after the last accepted Send.
func (ts *telemetry) finish() error {
	if ts.st == nil {
		return nil
	}
	st := ts.st
	ts.st = nil
	if err := st.CloseSend(); err != nil {
		return err
	}
	var ack struct{}
	err := st.Recv(&ack)
	if transport.IsStreamEnd(err) {
		return nil
	}
	if err == nil {
		err = fmt.Errorf("swarm: unexpected item on telemetry stream")
		st.Cancel()
	}
	return err
}

// MissionResult summarizes one photograph-the-target mission.
type MissionResult struct {
	Steps      int
	Replans    int
	Held       int // ticks spent holding position for obstacles
	Label      string
	Confident  bool
	SensorLogs int
	Elapsed    time.Duration
	// Degraded marks a mission that completed while shedding telemetry
	// because the cloud sensor DBs were unreachable.
	Degraded bool
}

// maxMissionSteps bounds runaway missions.
const maxMissionSteps = 10000

// FlyTo executes a mission: route to target, avoid obstacles (re-routing
// when the path is blocked by something the planner didn't know), stream
// telemetry, photograph the target, and run image recognition.
func (d *Drone) FlyTo(ctx context.Context, target Point) (MissionResult, error) {
	start := time.Now()
	var res MissionResult
	var route RouteResp
	if err := d.Clients.Route.Call(ctx, "Construct", RouteReq{DroneID: d.ID, From: d.Pos, To: target}, &route); err != nil {
		return res, err
	}
	d.log(ctx, fmt.Sprintf("mission to (%d,%d): %d waypoints", target.X, target.Y, len(route.Path)))

	ts := d.openTelemetry(ctx)
	defer func() {
		if ts.st != nil {
			ts.st.Cancel() // early return: don't leak the mission stream
		}
	}()

	path := route.Path
	for len(path) > 0 {
		if d.OnTick != nil {
			d.OnTick(d.Pos, path)
		}
		if res.Steps+res.Held >= maxMissionSteps {
			return res, fmt.Errorf("swarm: mission exceeded %d steps", maxMissionSteps)
		}
		next := path[0]
		move := Point{next.X - d.Pos.X, next.Y - d.Pos.Y}
		var avoid AvoidResp
		if err := d.Clients.Avoid.Call(ctx, "Check", AvoidReq{Proximity: d.World.Proximity(d.Pos), Move: move}, &avoid); err != nil {
			return res, err
		}
		switch {
		case !avoid.Blocked:
			d.Pos = next
			path = path[1:]
			res.Steps++
		case avoid.Detour != (Point{}):
			// Step aside, then ask the cloud for a fresh route.
			d.Pos = Point{d.Pos.X + avoid.Detour.X, d.Pos.Y + avoid.Detour.Y}
			res.Steps++
			if err := d.Clients.Route.Call(ctx, "Construct", RouteReq{DroneID: d.ID, From: d.Pos, To: target}, &route); err != nil {
				return res, err
			}
			path = route.Path
			res.Replans++
			d.log(ctx, fmt.Sprintf("replanned at (%d,%d)", d.Pos.X, d.Pos.Y))
		default:
			res.Held++
			if res.Held > 100 {
				return res, fmt.Errorf("swarm: drone %s boxed in at %v", d.ID, d.Pos)
			}
		}
		d.Heading = headingOf(move)
		if err := d.report(ctx, ts); err != nil {
			if !d.Degrade {
				return res, err
			}
			res.Degraded = true
		} else {
			res.SensorLogs++
		}
	}

	// On target: photograph and recognize.
	frame := CaptureFrame(d.World, d.Pos, d.Seed)
	var rec RecognizeResp
	if err := d.Clients.Recognize.Call(ctx, "Recognize", RecognizeReq{Frame: frame}, &rec); err != nil {
		return res, err
	}
	res.Label, res.Confident = rec.Label, rec.Confident
	sf := StoreFrameReq{DroneID: d.ID, At: d.Pos, Frame: frame, Label: rec.Label}
	if err := ts.push(ctx, TelemetryItem{Frame: &sf}, "StoreFrame", sf); err != nil {
		if !d.Degrade {
			return res, err
		}
		res.Degraded = true
	}
	// Drain the stream: a persist error the server hit after the last
	// accepted Send surfaces here, where the unary path would have seen it
	// per call.
	if err := ts.finish(); err != nil {
		if !d.Degrade {
			return res, err
		}
		res.Degraded = true
	}
	d.log(ctx, fmt.Sprintf("recognized %q (confident=%v)", rec.Label, rec.Confident))
	res.Elapsed = time.Since(start)
	return res, nil
}

func headingOf(m Point) int64 {
	switch m {
	case Point{1, 0}:
		return 90
	case Point{-1, 0}:
		return 270
	case Point{0, 1}:
		return 180
	default:
		return 0
	}
}

func (d *Drone) report(ctx context.Context, ts *telemetry) error {
	rep := SensorReport{
		DroneID:        d.ID,
		Location:       d.Pos,
		SpeedMilli:     5000,
		OrientationDeg: d.Heading,
		LuminosityPct:  int64(60 + (d.Pos.X+d.Pos.Y)%40),
	}
	return ts.push(ctx, TelemetryItem{Report: &rep}, "Report", rep)
}

func (d *Drone) log(ctx context.Context, line string) {
	if d.Clients.Log != nil {
		d.Clients.Log.Call(ctx, "Append", LogReq{DroneID: d.ID, Line: line}, nil) //nolint:errcheck
	}
}
