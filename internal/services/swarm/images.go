package swarm

import (
	"math/bits"
	"math/rand/v2"
	"sort"
)

// frameSide is the synthetic camera resolution (frameSide² grayscale
// bytes per frame).
const frameSide = 32

// stockObjects maps labels to pattern generators. Each pattern is a
// distinctive grayscale shape, so the average-hash classifier has real
// structure to discriminate.
var stockObjects = map[string]func(x, y int) byte{
	"landing-pad": func(x, y int) byte { // concentric rings
		cx, cy := x-frameSide/2, y-frameSide/2
		d := cx*cx + cy*cy
		if (d/32)%2 == 0 {
			return 220
		}
		return 30
	},
	"vehicle": func(x, y int) byte { // bright horizontal slab
		if y > frameSide/3 && y < 2*frameSide/3 {
			return 200
		}
		return 40
	},
	"antenna": func(x, y int) byte { // vertical line + crossbar
		if x > frameSide/2-2 && x < frameSide/2+2 {
			return 230
		}
		if y < 5 {
			return 180
		}
		return 25
	},
	"solar-panel": func(x, y int) byte { // diagonal stripes
		if (x+y)%8 < 4 {
			return 190
		}
		return 60
	},
	"water-tank": func(x, y int) byte { // bright disc
		cx, cy := x-frameSide/2, y-frameSide/2
		if cx*cx+cy*cy < (frameSide/3)*(frameSide/3) {
			return 240
		}
		return 20
	},
}

// StockLabels returns the known object labels, sorted.
func StockLabels() []string {
	out := make([]string, 0, len(stockObjects))
	for l := range stockObjects {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// RenderObject produces a clean frame of the labeled object.
func RenderObject(label string) []byte {
	gen, ok := stockObjects[label]
	if !ok {
		gen = func(x, y int) byte { return 0 }
	}
	frame := make([]byte, frameSide*frameSide)
	for y := 0; y < frameSide; y++ {
		for x := 0; x < frameSide; x++ {
			frame[y*frameSide+x] = gen(x, y)
		}
	}
	return frame
}

// CaptureFrame renders what the camera sees at p: the target's object with
// sensor noise, or textured ground when there is nothing to see.
func CaptureFrame(w *World, p Point, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, uint64(p.X)<<32|uint64(uint32(p.Y))))
	var frame []byte
	if label, ok := w.Targets[p]; ok {
		frame = RenderObject(label)
	} else {
		frame = make([]byte, frameSide*frameSide)
		for i := range frame {
			frame[i] = byte(80 + rng.IntN(40)) // ground texture
		}
	}
	// Additive sensor noise.
	for i := range frame {
		n := rng.IntN(17) - 8
		v := int(frame[i]) + n
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		frame[i] = byte(v)
	}
	return frame
}

// frameHash is the 64-bit average hash of a frame (8x8 block means
// thresholded at the global mean).
func frameHash(frame []byte) uint64 {
	if len(frame) != frameSide*frameSide {
		return 0
	}
	cell := frameSide / 8
	var sums [64]uint64
	for y := 0; y < frameSide; y++ {
		for x := 0; x < frameSide; x++ {
			sums[(y/cell)*8+x/cell] += uint64(frame[y*frameSide+x])
		}
	}
	var total uint64
	for _, s := range sums {
		total += s
	}
	mean := total / 64
	var h uint64
	for _, s := range sums {
		h <<= 1
		if s > mean {
			h |= 1
		}
	}
	return h
}

// StockDB is the image-recognition reference database (StockImageDB in
// Figure 8): label -> reference hash.
type StockDB struct {
	hashes map[string]uint64
}

// NewStockDB hashes every stock object.
func NewStockDB() *StockDB {
	db := &StockDB{hashes: make(map[string]uint64, len(stockObjects))}
	for label := range stockObjects {
		db.hashes[label] = frameHash(RenderObject(label))
	}
	return db
}

// Recognize classifies a frame: the stock object with the smallest hash
// Hamming distance wins if it is within the confidence threshold.
func (db *StockDB) Recognize(frame []byte) (label string, confident bool) {
	h := frameHash(frame)
	best, bestDist := "", 65
	for l, ref := range db.hashes {
		d := bits.OnesCount64(h ^ ref)
		if d < bestDist || (d == bestDist && l < best) {
			best, bestDist = l, d
		}
	}
	return best, bestDist <= 12
}
