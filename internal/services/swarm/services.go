package swarm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
)

// RouteReq asks constructRoute for a path.
type RouteReq struct {
	DroneID  string
	From, To Point
}

// RouteResp returns the waypoints (excluding From, including To).
type RouteResp struct{ Path []Point }

const routeCacheTTL = time.Minute

// registerConstructRoute installs the cloud constructRoute service (Java
// tier in Figure 8): BFS shortest path over the shared world map. Route
// construction — the hottest read in the app, hit once per mission plus
// once per replan by every drone in the fleet — runs through the shared
// cache-aside ReadPath, keyed by (world version, from, to): a whole fleet
// launching at the same corner coalesces into one BFS, and any obstacle
// change bumps the version so stale paths are never served.
func registerConstructRoute(srv *rpc.Server, world *World, mc svcutil.KV, noCoalesce bool) {
	routePath := &svcutil.ReadPath[[]Point]{
		MC:         mc,
		TTL:        routeCacheTTL,
		NoCoalesce: noCoalesce,
		Decode: func(b []byte) ([]Point, error) {
			var resp RouteResp
			err := codec.Unmarshal(b, &resp)
			return resp.Path, err
		},
		Fetch: func(ctx context.Context, key string) ([]Point, []byte, bool, error) {
			var version int64
			var from, to Point
			if _, err := fmt.Sscanf(key, "route:v%d:%d,%d-%d,%d", &version, &from.X, &from.Y, &to.X, &to.Y); err != nil {
				return nil, nil, false, rpc.Errorf(rpc.CodeBadRequest, "constructRoute: bad route key %q", key)
			}
			path, err := world.Route(from, to)
			if err != nil {
				return nil, nil, false, rpc.Errorf(rpc.CodeBadRequest, "constructRoute: %v", err)
			}
			body, err := codec.Marshal(RouteResp{Path: path})
			if err != nil {
				return nil, nil, false, err
			}
			return path, body, true, nil
		},
	}
	svcutil.Handle(srv, "Construct", func(ctx *rpc.Ctx, req *RouteReq) (*RouteResp, error) {
		key := fmt.Sprintf("route:v%d:%d,%d-%d,%d", world.Version(), req.From.X, req.From.Y, req.To.X, req.To.Y)
		path, _, err := routePath.Get(ctx, key)
		if err != nil {
			return nil, err
		}
		return &RouteResp{Path: path}, nil
	})
}

// AvoidReq asks obstacle avoidance to vet a move.
type AvoidReq struct {
	// Proximity is the 3x3 obstacle neighborhood (row-major, center=4).
	Proximity [9]byte
	// Move is the intended unit step.
	Move Point
}

// AvoidResp reports whether the move is safe and, if not, a safe detour
// (zero Point means hold position).
type AvoidResp struct {
	Blocked bool
	Detour  Point
}

// proximityIndex maps a unit move to its 3x3 neighborhood index.
func proximityIndex(m Point) int {
	return int((m.Y+1)*3 + (m.X + 1))
}

// registerObstacleAvoidance installs the obstacleAvoidance service (C++
// tier): if the intended cell is occupied, propose a perpendicular detour,
// preferring a free one.
func registerObstacleAvoidance(srv *rpc.Server) {
	svcutil.Handle(srv, "Check", func(ctx *rpc.Ctx, req *AvoidReq) (*AvoidResp, error) {
		if req.Move.X < -1 || req.Move.X > 1 || req.Move.Y < -1 || req.Move.Y > 1 {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "obstacleAvoidance: non-unit move")
		}
		if req.Proximity[proximityIndex(req.Move)] == 0 {
			return &AvoidResp{}, nil
		}
		// Perpendicular detours.
		detours := []Point{{req.Move.Y, req.Move.X}, {-req.Move.Y, -req.Move.X}}
		for _, d := range detours {
			if req.Proximity[proximityIndex(d)] == 0 {
				return &AvoidResp{Blocked: true, Detour: d}, nil
			}
		}
		return &AvoidResp{Blocked: true}, nil // hold position
	})
}

// RecognizeReq submits a camera frame for classification.
type RecognizeReq struct{ Frame []byte }

// RecognizeResp returns the best label and confidence.
type RecognizeResp struct {
	Label     string
	Confident bool
}

// registerImageRecognition installs the imageRecognition service (jimp /
// OpenCV tier) over the StockImageDB.
func registerImageRecognition(srv *rpc.Server, db *StockDB) {
	svcutil.Handle(srv, "Recognize", func(ctx *rpc.Ctx, req *RecognizeReq) (*RecognizeResp, error) {
		if len(req.Frame) != frameSide*frameSide {
			return nil, rpc.Errorf(rpc.CodeBadRequest, "imageRecognition: frame must be %d bytes", frameSide*frameSide)
		}
		label, ok := db.Recognize(req.Frame)
		return &RecognizeResp{Label: label, Confident: ok}, nil
	})
}

// SensorReport is one telemetry sample from a drone.
type SensorReport struct {
	DroneID        string
	Location       Point
	SpeedMilli     int64 // m/s * 1000
	OrientationDeg int64
	LuminosityPct  int64
	At             int64
}

// StoreFrameReq archives a captured frame in ImageDB.
type StoreFrameReq struct {
	DroneID string
	At      Point
	Frame   []byte
	Label   string
}

// TelemetryOpen opens a drone's per-mission telemetry stream.
type TelemetryOpen struct{ DroneID string }

// TelemetryItem is one frame on a drone's telemetry stream: a sensor
// sample or a captured frame, exactly one field set. Batching many items on
// one standing stream replaces a unary Report call per mission tick —
// which, behind the wifi hop, paid the full RTT per sample.
type TelemetryItem struct {
	Report *SensorReport
	Frame  *StoreFrameReq
}

// persistReport writes one sensor sample into the four per-sensor
// collections; shared by the unary Report handler and the stream path.
func persistReport(ctx context.Context, db svcutil.DB, seq *atomic.Int64, now func() time.Time, req *SensorReport) error {
	if req.DroneID == "" {
		return rpc.Errorf(rpc.CodeBadRequest, "telemetry: drone ID required")
	}
	if req.At == 0 {
		req.At = now().UnixNano()
	}
	body, err := codec.Marshal(*req)
	if err != nil {
		return err
	}
	n := seq.Add(1)
	for _, col := range []string{"location", "speed", "orientation", "luminosity"} {
		doc := docstore.Doc{
			ID:     fmt.Sprintf("%s-%d-%d", req.DroneID, req.At, n),
			Fields: map[string]string{"drone": req.DroneID},
			Nums:   map[string]int64{"ts": req.At},
			Body:   body,
		}
		if err := db.Put(ctx, col, doc); err != nil {
			return err
		}
	}
	return nil
}

// persistFrame archives one captured frame; shared by the unary StoreFrame
// handler and the stream path.
func persistFrame(ctx context.Context, db svcutil.DB, now func() time.Time, req *StoreFrameReq) error {
	body, err := codec.Marshal(*req)
	if err != nil {
		return err
	}
	doc := docstore.Doc{
		ID:     fmt.Sprintf("%s-%d-%d-%d", req.DroneID, req.At.X, req.At.Y, now().UnixNano()),
		Fields: map[string]string{"drone": req.DroneID, "label": req.Label},
		Body:   body,
	}
	return db.Put(ctx, "images", doc)
}

// registerTelemetry installs the cloud sensor databases (LocationDB,
// SpeedDB, OrientationDB, LuminosityDB, ImageDB of Figure 8) behind one
// RPC surface. The tier itself is stateless logic: samples persist into
// per-sensor collections of the db-telemetry store tier, which shards like
// every other stateful tier in the suite. Samples arrive either as unary
// Report/StoreFrame calls (one RTT each) or batched on a per-mission
// Telemetry stream.
func registerTelemetry(srv *rpc.Server, db svcutil.DB, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	var seq atomic.Int64
	svcutil.Handle(srv, "Report", func(ctx *rpc.Ctx, req *SensorReport) (*struct{}, error) {
		return nil, persistReport(ctx, db, &seq, now, req)
	})
	svcutil.Handle(srv, "StoreFrame", func(ctx *rpc.Ctx, req *StoreFrameReq) (*struct{}, error) {
		return nil, persistFrame(ctx, db, now, req)
	})
	srv.HandleStream("Telemetry", func(ctx *rpc.Ctx, payload []byte, st *rpc.ServerStream) error {
		for {
			var item TelemetryItem
			if err := st.RecvMsg(&item); err != nil {
				if errors.Is(err, io.EOF) {
					return nil // drone half-closed: mission over, stream drained
				}
				return err
			}
			switch {
			case item.Report != nil:
				if err := persistReport(ctx, db, &seq, now, item.Report); err != nil {
					return err
				}
			case item.Frame != nil:
				if err := persistFrame(ctx, db, now, item.Frame); err != nil {
					return err
				}
			default:
				return rpc.Errorf(rpc.CodeBadRequest, "telemetry: empty stream item")
			}
		}
	})
	svcutil.Handle(srv, "History", func(ctx *rpc.Ctx, req *SensorReport) (*struct{ Count int64 }, error) {
		docs, err := db.Find(ctx, "location", "drone", req.DroneID, 0)
		if err != nil {
			return nil, err
		}
		return &struct{ Count int64 }{Count: int64(len(docs))}, nil
	})
}

// LogReq appends a line to the on-drone diagnostics log (Log.js tier).
type LogReq struct {
	DroneID string
	Line    string
}

// LogTailReq reads back recent lines.
type LogTailReq struct {
	DroneID string
	Limit   int64
}

// LogTailResp returns recent lines, oldest first.
type LogTailResp struct{ Lines []string }

// registerLog installs the local logging service that runs on each drone.
func registerLog(srv *rpc.Server) {
	logs := make(map[string][]string)
	var mu syncMutex
	svcutil.Handle(srv, "Append", func(ctx *rpc.Ctx, req *LogReq) (*struct{}, error) {
		mu.Lock()
		defer mu.Unlock()
		lines := append(logs[req.DroneID], req.Line)
		if len(lines) > 1000 {
			lines = lines[len(lines)-1000:]
		}
		logs[req.DroneID] = lines
		return nil, nil
	})
	svcutil.Handle(srv, "Tail", func(ctx *rpc.Ctx, req *LogTailReq) (*LogTailResp, error) {
		mu.Lock()
		defer mu.Unlock()
		lines := logs[req.DroneID]
		limit := int(req.Limit)
		if limit > 0 && len(lines) > limit {
			lines = lines[len(lines)-limit:]
		}
		out := make([]string, len(lines))
		copy(out, lines)
		return &LogTailResp{Lines: out}, nil
	})
}
