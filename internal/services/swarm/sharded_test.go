package swarm

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/fault"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// bootShardedSwarm boots the swarm with the telemetry store and route cache
// running shards×replicas instances behind consistent-hash routing.
func bootShardedSwarm(t *testing.T, app *core.App, shards, replicas int) *Swarm {
	t.Helper()
	sw, err := New(app, Config{
		Placement: Edge, Drones: 2, WorldSize: 24, Seed: 7,
		WifiRTT: 200 * time.Microsecond,
		Shards:  shards, ShardReplicas: replicas,
	})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return sw
}

// TestShardedMission flies a full mission on a 3-shard×2-replica telemetry
// layout and checks the samples landed across the shards.
func TestShardedMission(t *testing.T) {
	app := core.NewApp("swarm-sharded", core.Options{})
	t.Cleanup(func() { app.Close() })
	sw := bootShardedSwarm(t, app, 3, 2)
	ctx := context.Background()

	instances := sw.App.Registry.Instances("swarm.db-telemetry")
	if len(instances) != 6 {
		t.Fatalf("db-telemetry has %d instances, want 6", len(instances))
	}
	labels := make(map[string]int)
	for _, inst := range instances {
		labels[inst.Meta[shard.MetaShard]]++
	}
	if len(labels) != 3 {
		t.Fatalf("db-telemetry shard labels = %v, want 3 distinct", labels)
	}

	target, wantLabel := anyTarget(t, sw.World)
	res, err := sw.Drones[0].FlyTo(ctx, target)
	if err != nil {
		t.Fatalf("mission: %v", err)
	}
	if res.Label != wantLabel || res.Degraded {
		t.Fatalf("res = %+v, want %q undegraded", res, wantLabel)
	}
	locs, err := sw.Telemetry.Find(ctx, "location", "drone", sw.Drones[0].ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) < res.Steps {
		t.Fatalf("location samples = %d, steps = %d", len(locs), res.Steps)
	}
}

// TestShardedSurvivesReplicaFault errors the first replica of each
// db-telemetry shard: with two replicas per shard, telemetry writes land on
// the healthy sibling and the mission stays undegraded.
func TestShardedSurvivesReplicaFault(t *testing.T) {
	inj := fault.NewInjector(31)
	app := core.NewApp("swarm-sharded-fault", core.Options{Network: inj.Wrap(rpc.NewMem())})
	t.Cleanup(func() { app.Close() })
	sw := bootShardedSwarm(t, app, 2, 2)

	seen := make(map[string]bool)
	for _, inst := range sw.App.Registry.Instances("swarm.db-telemetry") {
		label := inst.Meta[shard.MetaShard]
		if seen[label] {
			continue
		}
		seen[label] = true
		defer inj.Add(fault.Rule{To: "swarm.db-telemetry", Addr: inst.Addr, ErrCode: rpc.CodeUnavailable})()
	}

	target, _ := anyTarget(t, sw.World)
	res, err := sw.Drones[0].FlyTo(context.Background(), target)
	if err != nil {
		t.Fatalf("mission under replica fault: %v", err)
	}
	if res.Degraded {
		t.Fatalf("mission degraded despite healthy sibling replicas: %+v", res)
	}
	if res.SensorLogs == 0 {
		t.Fatalf("no telemetry archived: %+v", res)
	}
}

// TestMissionDegradesWithoutTelemetry kills the whole telemetry tier: with
// degradation on the mission completes with samples shed and Degraded set;
// with it off the same fault aborts the flight.
func TestMissionDegradesWithoutTelemetry(t *testing.T) {
	boot := func(t *testing.T, disable bool) (*Swarm, *fault.Injector) {
		inj := fault.NewInjector(37)
		app := core.NewApp("swarm-degrade", core.Options{Network: inj.Wrap(rpc.NewMem())})
		t.Cleanup(func() { app.Close() })
		sw, err := New(app, Config{
			Placement: Edge, Drones: 1, WorldSize: 24, Seed: 7,
			WifiRTT: 200 * time.Microsecond, DisableDegradation: disable,
		})
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		return sw, inj
	}

	t.Run("degraded", func(t *testing.T) {
		sw, inj := boot(t, false)
		defer inj.Add(fault.Rule{To: "swarm.telemetry", ErrCode: rpc.CodeUnavailable})()
		target, wantLabel := anyTarget(t, sw.World)
		res, err := sw.Drones[0].FlyTo(context.Background(), target)
		if err != nil {
			t.Fatalf("degraded mission should still fly: %v", err)
		}
		if !res.Degraded || res.SensorLogs != 0 {
			t.Fatalf("res = %+v, want Degraded with all samples shed", res)
		}
		if res.Label != wantLabel || !res.Confident {
			t.Fatalf("critical recognition lost under degradation: %+v", res)
		}
	})
	t.Run("failhard", func(t *testing.T) {
		sw, inj := boot(t, true)
		defer inj.Add(fault.Rule{To: "swarm.telemetry", ErrCode: rpc.CodeUnavailable})()
		target, _ := anyTarget(t, sw.World)
		if _, err := sw.Drones[0].FlyTo(context.Background(), target); err == nil {
			t.Fatal("fail-hard mode completed mission despite telemetry fault")
		}
	})
}

// TestRouteCacheInvalidatedByWorldChange checks the version-keyed route
// cache: the same query twice hits the cache, and a world mutation bumps
// the version so the next query recomputes against the new grid.
func TestRouteCacheInvalidatedByWorldChange(t *testing.T) {
	app := core.NewApp("swarm-routecache", core.Options{})
	t.Cleanup(func() { app.Close() })
	sw := bootShardedSwarm(t, app, 2, 2)
	ctx := context.Background()
	route, err := app.RPC("test", "swarm.constructRoute")
	if err != nil {
		t.Fatal(err)
	}

	target, _ := anyTarget(t, sw.World)
	var first, second RouteResp
	if err := route.Call(ctx, "Construct", RouteReq{From: Point{0, 0}, To: target}, &first); err != nil {
		t.Fatal(err)
	}
	if err := route.Call(ctx, "Construct", RouteReq{From: Point{0, 0}, To: target}, &second); err != nil {
		t.Fatal(err)
	}
	if len(first.Path) == 0 || len(first.Path) != len(second.Path) {
		t.Fatalf("cached route differs: %d vs %d waypoints", len(first.Path), len(second.Path))
	}

	// Block the first waypoint: the version bump must force a fresh BFS
	// that routes around it.
	blocked := first.Path[0]
	if _, isTarget := sw.World.Targets[blocked]; isTarget {
		t.Skip("first waypoint is the target; cannot block it")
	}
	sw.PlaceObstacle(blocked)
	var replanned RouteResp
	if err := route.Call(ctx, "Construct", RouteReq{From: Point{0, 0}, To: target}, &replanned); err != nil {
		t.Fatal(err)
	}
	for _, p := range replanned.Path {
		if p == blocked {
			t.Fatalf("stale cached route served through new obstacle at %v", p)
		}
	}
}
