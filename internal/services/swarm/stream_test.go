package swarm

// Streaming telemetry: missions batch sensor samples on one standing
// stream instead of a unary call per tick, with the same archived state and
// degrade semantics as the unary path.

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
)

func bootStreamingSwarm(t *testing.T, cfg Config) *Swarm {
	t.Helper()
	app := core.NewApp("swarm-stream-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	cfg.StreamTelemetry = true
	if cfg.Drones == 0 {
		cfg.Drones = 2
	}
	if cfg.WorldSize == 0 {
		cfg.WorldSize = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.WifiRTT == 0 {
		cfg.WifiRTT = 200 * time.Microsecond
	}
	sw, err := New(app, cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return sw
}

// TestStreamedMissionArchivesTelemetry flies a full mission with streaming
// telemetry and checks the cloud DBs hold exactly what the unary path would
// have archived: a location sample per report and the captured frame.
func TestStreamedMissionArchivesTelemetry(t *testing.T) {
	sw := bootStreamingSwarm(t, Config{})
	target, wantLabel := anyTarget(t, sw.World)
	drone := sw.Drones[0]
	res, err := drone.FlyTo(context.Background(), target)
	if err != nil {
		t.Fatalf("mission: %v", err)
	}
	if res.Degraded {
		t.Fatalf("streamed mission degraded: %+v", res)
	}
	if res.Label != wantLabel || !res.Confident {
		t.Fatalf("recognized %q (confident=%v), want %q", res.Label, res.Confident, wantLabel)
	}
	ctx := context.Background()
	locs, err := sw.Telemetry.Find(ctx, "location", "drone", drone.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != res.SensorLogs || res.SensorLogs == 0 {
		t.Fatalf("location samples = %d, sensor logs = %d", len(locs), res.SensorLogs)
	}
	frames, err := sw.ArchivedSamples(ctx, "images")
	if err != nil {
		t.Fatal(err)
	}
	if frames != 1 {
		t.Fatalf("archived frames = %d, want 1", frames)
	}
}

// TestStreamedMissionSharded runs streaming telemetry over the sharded
// store layout: stream items fan out into the same sharded collections.
func TestStreamedMissionSharded(t *testing.T) {
	sw := bootStreamingSwarm(t, Config{Shards: 2, ShardReplicas: 2})
	target, _ := anyTarget(t, sw.World)
	res, err := sw.Drones[0].FlyTo(context.Background(), target)
	if err != nil {
		t.Fatalf("mission: %v", err)
	}
	locs, err := sw.Telemetry.Find(context.Background(), "location", "drone", sw.Drones[0].ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != res.SensorLogs || res.SensorLogs == 0 {
		t.Fatalf("location samples = %d, sensor logs = %d", len(locs), res.SensorLogs)
	}
}
