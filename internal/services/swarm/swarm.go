package swarm

import (
	"context"
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config shapes the deployment.
type Config struct {
	// Placement selects Swarm-Edge or Swarm-Cloud.
	Placement Placement
	// Drones is the fleet size (default 4).
	Drones int
	// WorldSize is the grid side (default 32).
	WorldSize int64
	// WifiRTT is the injected cloud↔edge round-trip (default 2ms in tests;
	// the paper's drones saw tens of ms over a shared router).
	WifiRTT time.Duration
	// Seed drives world generation and camera noise.
	Seed uint64
	// Shards partitions the telemetry/route storage tiers into this many
	// consistent-hash shards (default 1 = single-instance layout).
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	ShardReplicas int
	// CacheBytes bounds the route cache tier (0 = unbounded).
	CacheBytes int64
	// Middleware is installed on every inter-tier client wire.
	Middleware []transport.Middleware
	// Replicas scales replicable logic tiers out at boot, keyed by tier name.
	Replicas map[string]int
	// DisableDegradation makes missions abort when the cloud sensor DBs are
	// unreachable instead of flying on with telemetry shed.
	DisableDegradation bool
	// DisableCoalescing turns off miss coalescing on the route-construction
	// read path.
	DisableCoalescing bool
	// StreamTelemetry has drones batch sensor samples and frame archives on
	// one per-mission Telemetry stream instead of a unary call per tick —
	// one wifi RTT per mission rather than per sample. Drones fall back to
	// unary calls when the stream dies, preserving Degrade semantics.
	StreamTelemetry bool
	// Spawner, when set, receives replicable tier boots so the control plane
	// can autoscale them.
	Spawner svcutil.Definer
}

// swarmReplicable names the logic tiers safe to run multi-instance: their
// state lives in the db/mc tiers or the shared in-process world. The
// on-drone log tier stays single-instance — its ring buffers live in the
// process.
var swarmReplicable = map[string]bool{
	"constructRoute": true, "telemetry": true,
	"obstacleAvoidance": true, "imageRecognition": true,
}

// Swarm is a running deployment: the fleet plus cloud services.
type Swarm struct {
	App       *core.App
	World     *World
	Drones    []*Drone
	Telemetry svcutil.DB // client handle onto the cloud sensor DB tier
	Placement Placement
}

// New boots the Swarm service in the requested placement. Cloud services
// (constructRoute, the telemetry tier and its db-telemetry store) always
// sit behind the wifi hop; the compute tiers (obstacleAvoidance,
// imageRecognition) run on-drone for Edge and behind the wifi hop for
// Cloud.
func New(app *core.App, cfg Config) (*Swarm, error) {
	if cfg.Drones <= 0 {
		cfg.Drones = 4
	}
	if cfg.WorldSize <= 0 {
		cfg.WorldSize = 32
	}
	if cfg.WifiRTT <= 0 {
		cfg.WifiRTT = 2 * time.Millisecond
	}
	world := NewWorld(cfg.WorldSize, cfg.Seed)
	stock := NewStockDB()

	stack := &svcutil.Stack{
		App:           app,
		Prefix:        "swarm.",
		Shards:        cfg.Shards,
		ShardReplicas: cfg.ShardReplicas,
		CacheBytes:    cfg.CacheBytes,
		Middleware:    cfg.Middleware,
		Replicable:    swarmReplicable,
		Replicas:      cfg.Replicas,
		Spawner:       cfg.Spawner,
	}
	if err := stack.StartStores("db-telemetry"); err != nil {
		return nil, err
	}
	if err := stack.StartCaches("mc-routes"); err != nil {
		return nil, err
	}

	db, mc, start := stack.DB, stack.KV, stack.Start

	// Cloud services.
	start("constructRoute", func(s *rpc.Server) {
		registerConstructRoute(s, world, mc("constructRoute", "mc-routes"), cfg.DisableCoalescing)
	})
	start("telemetry", func(s *rpc.Server) {
		registerTelemetry(s, db("telemetry", "db-telemetry"), nil)
	})
	// Compute tiers exist once; placement decides which side of the wifi
	// hop the *callers* are on.
	start("obstacleAvoidance", registerObstacleAvoidance)
	start("imageRecognition", func(s *rpc.Server) {
		registerImageRecognition(s, stock)
	})
	start("log", registerLog)
	if err := stack.Boot(); err != nil {
		return nil, fmt.Errorf("swarm: boot: %w", err)
	}

	sw := &Swarm{App: app, World: world, Telemetry: db("client", "db-telemetry"), Placement: cfg.Placement}
	for i := 0; i < cfg.Drones; i++ {
		droneID := fmt.Sprintf("drone-%02d", i)
		clients, err := wireClients(app, droneID, cfg)
		if err != nil {
			return nil, err
		}
		sw.Drones = append(sw.Drones, &Drone{
			ID:              droneID,
			World:           world,
			Pos:             Point{0, 0},
			Seed:            cfg.Seed + uint64(i),
			Clients:         clients,
			Degrade:         !cfg.DisableDegradation,
			StreamTelemetry: cfg.StreamTelemetry,
		})
	}
	return sw, nil
}

// wireClients builds a drone's service handles. Calls that cross the
// cloud↔edge boundary get a transport.Delay middleware of the wifi RTT
// (applied once per call, covering the round trip).
func wireClients(app *core.App, droneID string, cfg Config) (Clients, error) {
	wifi := func(target string) (svcutil.Caller, error) {
		// app.RPC puts tracing outermost, so spans include the wifi time,
		// exactly like a real client-observed latency.
		return app.RPC(droneID, target, transport.Delay(cfg.WifiRTT))
	}
	local := func(target string) (svcutil.Caller, error) {
		return app.RPC(droneID, target)
	}

	var c Clients
	var err error
	if c.Route, err = wifi("swarm.constructRoute"); err != nil {
		return c, err
	}
	if c.Telemetry, err = wifi("swarm.telemetry"); err != nil {
		return c, err
	}
	if c.Log, err = local("swarm.log"); err != nil {
		return c, err
	}
	compute := local
	if cfg.Placement == Cloud {
		compute = wifi
	}
	if c.Avoid, err = compute("swarm.obstacleAvoidance"); err != nil {
		return c, err
	}
	if c.Recognize, err = compute("swarm.imageRecognition"); err != nil {
		return c, err
	}
	return c, nil
}

// ArchivedSamples counts telemetry documents in one sensor collection
// across the fleet (the boot-time drone IDs).
func (s *Swarm) ArchivedSamples(ctx context.Context, collection string) (int, error) {
	total := 0
	for _, d := range s.Drones {
		docs, err := s.Telemetry.Find(ctx, collection, "drone", d.ID, 0)
		if err != nil {
			return 0, err
		}
		total += len(docs)
	}
	return total, nil
}

// PlaceObstacle injects a dynamic obstacle (for avoidance/replan tests and
// failure injection). Placing one on a target removes the target.
func (s *Swarm) PlaceObstacle(p Point) { s.World.set(p, CellObstacle) }
