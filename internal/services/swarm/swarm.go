package swarm

import (
	"fmt"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/rpc"
	"dsb/internal/svcutil"
	"dsb/internal/transport"
)

// Config shapes the deployment.
type Config struct {
	// Placement selects Swarm-Edge or Swarm-Cloud.
	Placement Placement
	// Drones is the fleet size (default 4).
	Drones int
	// WorldSize is the grid side (default 32).
	WorldSize int64
	// WifiRTT is the injected cloud↔edge round-trip (default 2ms in tests;
	// the paper's drones saw tens of ms over a shared router).
	WifiRTT time.Duration
	// Seed drives world generation and camera noise.
	Seed uint64
}

// Swarm is a running deployment: the fleet plus cloud services.
type Swarm struct {
	App       *core.App
	World     *World
	Drones    []*Drone
	Telemetry *docstore.Store
	Placement Placement
}

// New boots the Swarm service in the requested placement. Cloud services
// (constructRoute, telemetry DBs) always sit behind the wifi hop; the
// compute tiers (obstacleAvoidance, imageRecognition) run on-drone for
// Edge and behind the wifi hop for Cloud.
func New(app *core.App, cfg Config) (*Swarm, error) {
	if cfg.Drones <= 0 {
		cfg.Drones = 4
	}
	if cfg.WorldSize <= 0 {
		cfg.WorldSize = 32
	}
	if cfg.WifiRTT <= 0 {
		cfg.WifiRTT = 2 * time.Millisecond
	}
	world := NewWorld(cfg.WorldSize, cfg.Seed)
	telemetryStore := docstore.NewStore()
	stock := NewStockDB()

	// Cloud services.
	if _, err := app.StartRPC("swarm.constructRoute", func(s *rpc.Server) {
		registerConstructRoute(s, world)
	}); err != nil {
		return nil, err
	}
	if _, err := app.StartRPC("swarm.telemetry", func(s *rpc.Server) {
		registerTelemetry(s, telemetryStore, nil)
	}); err != nil {
		return nil, err
	}
	// Compute tiers exist once; placement decides which side of the wifi
	// hop the *callers* are on.
	if _, err := app.StartRPC("swarm.obstacleAvoidance", registerObstacleAvoidance); err != nil {
		return nil, err
	}
	if _, err := app.StartRPC("swarm.imageRecognition", func(s *rpc.Server) {
		registerImageRecognition(s, stock)
	}); err != nil {
		return nil, err
	}
	if _, err := app.StartRPC("swarm.log", registerLog); err != nil {
		return nil, err
	}

	sw := &Swarm{App: app, World: world, Telemetry: telemetryStore, Placement: cfg.Placement}
	for i := 0; i < cfg.Drones; i++ {
		droneID := fmt.Sprintf("drone-%02d", i)
		clients, err := wireClients(app, droneID, cfg)
		if err != nil {
			return nil, err
		}
		sw.Drones = append(sw.Drones, &Drone{
			ID:      droneID,
			World:   world,
			Pos:     Point{0, 0},
			Seed:    cfg.Seed + uint64(i),
			Clients: clients,
		})
	}
	return sw, nil
}

// wireClients builds a drone's service handles. Calls that cross the
// cloud↔edge boundary get a transport.Delay middleware of the wifi RTT
// (applied once per call, covering the round trip).
func wireClients(app *core.App, droneID string, cfg Config) (Clients, error) {
	wifi := func(target string) (svcutil.Caller, error) {
		// app.RPC puts tracing outermost, so spans include the wifi time,
		// exactly like a real client-observed latency.
		return app.RPC(droneID, target, transport.Delay(cfg.WifiRTT))
	}
	local := func(target string) (svcutil.Caller, error) {
		return app.RPC(droneID, target)
	}

	var c Clients
	var err error
	if c.Route, err = wifi("swarm.constructRoute"); err != nil {
		return c, err
	}
	if c.Telemetry, err = wifi("swarm.telemetry"); err != nil {
		return c, err
	}
	if c.Log, err = local("swarm.log"); err != nil {
		return c, err
	}
	compute := local
	if cfg.Placement == Cloud {
		compute = wifi
	}
	if c.Avoid, err = compute("swarm.obstacleAvoidance"); err != nil {
		return c, err
	}
	if c.Recognize, err = compute("swarm.imageRecognition"); err != nil {
		return c, err
	}
	return c, nil
}

// PlaceObstacle injects a dynamic obstacle (for avoidance/replan tests and
// failure injection). Placing one on a target removes the target.
func (s *Swarm) PlaceObstacle(p Point) { s.World.set(p, CellObstacle) }
