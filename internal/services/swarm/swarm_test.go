package swarm

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
)

func bootSwarm(t *testing.T, placement Placement) *Swarm {
	t.Helper()
	app := core.NewApp("swarm-test", core.Options{})
	t.Cleanup(func() { app.Close() })
	sw, err := New(app, Config{Placement: placement, Drones: 2, WorldSize: 24, Seed: 7, WifiRTT: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return sw
}

func anyTarget(t *testing.T, w *World) (Point, string) {
	t.Helper()
	if len(w.Targets) == 0 {
		t.Fatal("world has no targets")
	}
	// Deterministic pick: smallest (Y, X) — map iteration order varies.
	var best Point
	first := true
	for p := range w.Targets {
		if first || p.Y < best.Y || (p.Y == best.Y && p.X < best.X) {
			best = p
			first = false
		}
	}
	return best, w.Targets[best]
}

func TestWorldRouteAvoidsObstacles(t *testing.T) {
	w := NewWorld(24, 7)
	target, _ := anyTarget(t, w)
	path, err := w.Route(Point{0, 0}, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || path[len(path)-1] != target {
		t.Fatalf("path = %v", path)
	}
	prev := Point{0, 0}
	for _, p := range path {
		if w.At(p) == CellObstacle {
			t.Fatalf("route passes through obstacle at %v", p)
		}
		dx, dy := p.X-prev.X, p.Y-prev.Y
		if dx*dx+dy*dy != 1 {
			t.Fatalf("non-unit step %v -> %v", prev, p)
		}
		prev = p
	}
	// Degenerate cases.
	if _, err := w.Route(Point{-1, 0}, target); err == nil {
		t.Fatal("out-of-world route accepted")
	}
	if p, err := w.Route(target, target); err != nil || p != nil {
		t.Fatalf("self route = %v, %v", p, err)
	}
}

func TestRouteUnreachable(t *testing.T) {
	w := NewWorld(8, 1)
	// Wall off a corner cell completely.
	for _, p := range []Point{{1, 0}, {0, 1}, {1, 1}} {
		w.set(p, CellObstacle)
	}
	if _, err := w.Route(Point{5, 5}, Point{0, 0}); err == nil {
		t.Fatal("route into sealed corner succeeded")
	}
}

func TestRecognizeAllStockObjects(t *testing.T) {
	db := NewStockDB()
	for _, label := range StockLabels() {
		got, confident := db.Recognize(RenderObject(label))
		if got != label || !confident {
			t.Fatalf("Recognize(%s) = %s, %v", label, got, confident)
		}
		// Noisy capture still recognized.
		w := NewWorld(16, 3)
		var tp Point
		for p, l := range w.Targets {
			if l == label {
				tp = p
			}
		}
		if tp != (Point{}) {
			frame := CaptureFrame(w, tp, 99)
			got, confident = db.Recognize(frame)
			if got != label || !confident {
				t.Fatalf("noisy Recognize(%s) = %s, %v", label, got, confident)
			}
		}
	}
	// Ground texture must not be a confident match.
	w := NewWorld(16, 3)
	frame := CaptureFrame(w, Point{1, 1}, 5)
	if _, ok := w.Targets[Point{1, 1}]; !ok {
		if _, confident := db.Recognize(frame); confident {
			t.Fatal("confidently recognized bare ground")
		}
	}
}

func TestMissionEdgeAndCloud(t *testing.T) {
	for _, placement := range []Placement{Edge, Cloud} {
		t.Run(placement.String(), func(t *testing.T) {
			sw := bootSwarm(t, placement)
			target, wantLabel := anyTarget(t, sw.World)
			drone := sw.Drones[0]
			res, err := drone.FlyTo(context.Background(), target)
			if err != nil {
				t.Fatalf("mission: %v", err)
			}
			if drone.Pos != target {
				t.Fatalf("drone at %v, want %v", drone.Pos, target)
			}
			if res.Label != wantLabel || !res.Confident {
				t.Fatalf("recognized %q (confident=%v), want %q", res.Label, res.Confident, wantLabel)
			}
			if res.Steps == 0 || res.SensorLogs == 0 {
				t.Fatalf("res = %+v", res)
			}
			// Telemetry archived in the cloud DBs.
			ctx := context.Background()
			locs, err := sw.Telemetry.Find(ctx, "location", "drone", drone.ID, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(locs) < res.Steps {
				t.Fatalf("location samples = %d, steps = %d", len(locs), res.Steps)
			}
			frames, err := sw.ArchivedSamples(ctx, "images")
			if err != nil {
				t.Fatal(err)
			}
			if frames != 1 {
				t.Fatalf("archived frames = %d", frames)
			}
		})
	}
}

func TestDynamicObstacleForcesReplan(t *testing.T) {
	sw := bootSwarm(t, Edge)
	target, _ := anyTarget(t, sw.World)
	drone := sw.Drones[0]

	// Mid-flight, drop an obstacle onto the next waypoint — the planner
	// could not have known about it, so avoidance must kick in.
	injected := false
	drone.OnTick = func(pos Point, remaining []Point) {
		if injected || len(remaining) < 3 {
			return
		}
		next := remaining[0]
		if _, isTarget := sw.World.Targets[next]; isTarget {
			return
		}
		sw.PlaceObstacle(next)
		injected = true
	}

	res, err := drone.FlyTo(context.Background(), target)
	if err != nil {
		t.Fatalf("mission with dynamic obstacle: %v", err)
	}
	if drone.Pos != target {
		t.Fatalf("drone at %v", drone.Pos)
	}
	if res.Replans == 0 && res.Held == 0 {
		t.Fatalf("obstacle never sensed: %+v", res)
	}
}

func TestCloudPlacementPaysWifiOnCompute(t *testing.T) {
	// With a large RTT, the cloud placement's mission takes visibly longer
	// than edge for the same world — the Figure 9 low-load regime.
	rtt := 3 * time.Millisecond
	durations := map[Placement]time.Duration{}
	for _, placement := range []Placement{Edge, Cloud} {
		app := core.NewApp("swarm-rtt", core.Options{DisableTracing: true})
		sw, err := New(app, Config{Placement: placement, Drones: 1, WorldSize: 16, Seed: 11, WifiRTT: rtt})
		if err != nil {
			t.Fatal(err)
		}
		target, _ := anyTarget(t, sw.World)
		start := time.Now()
		if _, err := sw.Drones[0].FlyTo(context.Background(), target); err != nil {
			t.Fatal(err)
		}
		durations[placement] = time.Since(start)
		app.Close()
	}
	if durations[Cloud] <= durations[Edge] {
		t.Fatalf("cloud (%v) not slower than edge (%v) at low load", durations[Cloud], durations[Edge])
	}
}

func TestMultiDroneFleetSharesWorld(t *testing.T) {
	sw := bootSwarm(t, Edge)
	target, _ := anyTarget(t, sw.World)
	ctx := context.Background()
	done := make(chan error, len(sw.Drones))
	for _, d := range sw.Drones {
		go func(d *Drone) {
			_, err := d.FlyTo(ctx, target)
			done <- err
		}(d)
	}
	for range sw.Drones {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All telemetry landed, attributed per drone.
	tel, err := sw.App.RPC("test", "swarm.telemetry")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sw.Drones {
		var hist struct{ Count int64 }
		if err := tel.Call(ctx, "History", SensorReport{DroneID: d.ID}, &hist); err != nil {
			t.Fatal(err)
		}
		if hist.Count == 0 {
			t.Fatalf("no telemetry for %s", d.ID)
		}
	}
}

func TestDroneLogTail(t *testing.T) {
	sw := bootSwarm(t, Edge)
	target, _ := anyTarget(t, sw.World)
	drone := sw.Drones[0]
	if _, err := drone.FlyTo(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	var tail LogTailResp
	if err := drone.Clients.Log.Call(context.Background(), "Tail", LogTailReq{DroneID: drone.ID, Limit: 10}, &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Lines) < 2 {
		t.Fatalf("log lines = %v", tail.Lines)
	}
}

func TestProximitySensor(t *testing.T) {
	w := NewWorld(8, 2)
	w.set(Point{3, 2}, CellObstacle) // north of (3,3)
	prox := w.Proximity(Point{3, 3})
	if prox[1] != 1 { // row-major 3x3: index 1 = (0,-1)
		t.Fatalf("prox = %v", prox)
	}
	// World edges read as obstacles.
	edge := w.Proximity(Point{0, 0})
	if edge[0] != 1 || edge[1] != 1 || edge[3] != 1 {
		t.Fatalf("edge prox = %v", edge)
	}
}
