// Package swarm implements the suite's IoT swarm-coordination service
// (Figure 8 of the paper): programmable drones flying a grid world,
// performing image recognition and obstacle avoidance, in two placements —
// Swarm-Edge, where motion planning, recognition, and avoidance run on the
// drones and the cloud only constructs routes and archives sensor data, and
// Swarm-Cloud, where the drones only stream sensors and every decision is
// made in the cloud across a simulated wifi hop.
package swarm

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
)

// Cell contents in the world grid.
const (
	CellFree     = 0
	CellObstacle = 1
	CellTarget   = 2
)

// Point is a grid coordinate.
type Point struct{ X, Y int64 }

// World is the shared 2D environment drones fly through.
type World struct {
	Size    int64
	grid    []byte
	Targets map[Point]string // target position -> object label
	// version counts grid mutations; constructRoute keys its route cache by
	// it, so any obstacle change instantly orphans every cached path.
	version atomic.Int64
}

// Version returns the current world-mutation counter.
func (w *World) Version() int64 { return w.version.Load() }

// NewWorld generates a deterministic world: obstacle density ~15%, plus
// labeled targets drawn from the stock-object set.
func NewWorld(size int64, seed uint64) *World {
	if size < 8 {
		size = 8
	}
	w := &World{Size: size, grid: make([]byte, size*size), Targets: make(map[Point]string)}
	rng := rand.New(rand.NewPCG(seed, 0xD20E))
	for i := range w.grid {
		if rng.Float64() < 0.15 {
			w.grid[i] = CellObstacle
		}
	}
	// Clear a border and the conventional start corner so missions are
	// never born stuck.
	for i := int64(0); i < size; i++ {
		w.set(Point{i, 0}, CellFree)
		w.set(Point{0, i}, CellFree)
		w.set(Point{i, size - 1}, CellFree)
		w.set(Point{size - 1, i}, CellFree)
	}
	labels := StockLabels()
	for i := 0; i < len(labels) && int64(i) < size/4; i++ {
		for {
			p := Point{rng.Int64N(size), rng.Int64N(size)}
			if w.At(p) == CellFree && (p != Point{0, 0}) {
				w.set(p, CellTarget)
				w.Targets[p] = labels[i]
				break
			}
		}
	}
	return w
}

func (w *World) idx(p Point) int64 { return p.Y*w.Size + p.X }

// In reports whether p lies inside the world.
func (w *World) In(p Point) bool {
	return p.X >= 0 && p.Y >= 0 && p.X < w.Size && p.Y < w.Size
}

// At returns the cell content at p (obstacle if out of bounds).
func (w *World) At(p Point) byte {
	if !w.In(p) {
		return CellObstacle
	}
	return w.grid[w.idx(p)]
}

func (w *World) set(p Point, v byte) {
	if w.In(p) {
		if w.grid[w.idx(p)] == CellTarget {
			delete(w.Targets, p)
		}
		w.grid[w.idx(p)] = v
		w.version.Add(1)
	}
}

// neighbors are 4-connected moves.
var moves = []Point{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// Route computes a shortest obstacle-free path from src to dst with BFS,
// excluding src and including dst. Returns an error when unreachable.
func (w *World) Route(src, dst Point) ([]Point, error) {
	if !w.In(src) || !w.In(dst) {
		return nil, fmt.Errorf("swarm: route endpoints out of world")
	}
	if w.At(dst) == CellObstacle {
		return nil, fmt.Errorf("swarm: destination blocked")
	}
	if src == dst {
		return nil, nil
	}
	prev := make(map[Point]Point, 256)
	visited := map[Point]bool{src: true}
	queue := []Point{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range moves {
			next := Point{cur.X + m.X, cur.Y + m.Y}
			if visited[next] || w.At(next) == CellObstacle {
				continue
			}
			visited[next] = true
			prev[next] = cur
			if next == dst {
				// Reconstruct.
				var path []Point
				for p := dst; p != src; p = prev[p] {
					path = append(path, p)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("swarm: no route from %v to %v", src, dst)
}

// Proximity returns the 3x3 obstacle neighborhood around p, the input to
// obstacle avoidance (a synthetic ultrasonic array).
func (w *World) Proximity(p Point) [9]byte {
	var out [9]byte
	i := 0
	for dy := int64(-1); dy <= 1; dy++ {
		for dx := int64(-1); dx <= 1; dx++ {
			if w.At(Point{p.X + dx, p.Y + dy}) == CellObstacle {
				out[i] = 1
			}
			i++
		}
	}
	return out
}
