// Package shard implements the sharded stateful tier: a consistent-hash
// ring with virtual nodes for deterministic key→shard routing, and a
// registry-driven Router that groups the replicas of one service into
// replica sets per shard. The paper's §8 tail-at-scale results (Figs 21–22)
// hinge on exactly this regime — request skew concentrating on one
// stateful backend, or a single slow server dragging end-to-end p99 — and
// a single-replica store can reach neither. With the ring, every kv and
// docstore tier can run as N shards × R replicas behind the same service
// name, routed per key, with read-one/write-all replica sets (read-repair
// healing divergence) layered on top by svcutil.KV and svcutil.DB.
package shard

import (
	"sort"
	"strconv"
)

// MetaShard is the registry instance-metadata key carrying a replica's
// shard index. core.App.StartRPCShard stamps it and Router groups by it;
// replicas registered without it are indistinguishable to the ring and are
// grouped under one catch-all shard.
const MetaShard = "shard"

// DefaultVnodes is the virtual-node count per member when a Ring or Router
// is built without an explicit setting. 128 vnodes bound the per-shard load
// imbalance to within ±15% across 8 shards (pinned by TestRingBalanceGuard).
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over named members (shard
// labels). Each member is projected onto the hash circle at vnodes points;
// a key is owned by the member whose point follows the key's hash. Removing
// a member remaps only the keys that member owned — the property that lets
// the ring re-form cheaply when a health lease evicts a shard.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with the given virtual-node count per
// member (<=0 uses DefaultVnodes). Construction is deterministic: the same
// member set yields the same ring regardless of input order.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{
		points:  make([]ringPoint, 0, vnodes*len(sorted)),
		members: sorted,
	}
	for _, m := range sorted {
		base := hash64(m)
		for v := 0; v < vnodes; v++ {
			// Each vnode's position derives from the member hash and the
			// vnode index through one extra mix round, so vnodes of one
			// member spread independently instead of clustering.
			r.points = append(r.points, ringPoint{
				hash:   mix64(base + uint64(v)*0x9e3779b97f4a7c15),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member labels, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point to the first
	}
	return r.points[i].member
}

// OwnerSuccessors returns up to n distinct members starting at key's owner
// and walking the ring — the deterministic fallback order when a whole
// shard is unreachable.
func (r *Ring) OwnerSuccessors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		m := r.points[(i+j)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Labels returns the canonical shard labels "0".."n-1" for an n-shard tier.
func Labels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}

// hash64 is FNV-1a finished with a splitmix64 mix round. Plain FNV-1a over
// short numeric-ish strings ("0", "1", "key-42") leaves too much structure
// in the low bits for an evenly loaded ring; the finalizer scrambles it.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
