package shard

import (
	"fmt"
	"testing"
)

// TestRingBalanceGuard pins the distribution the suite's sharded tiers rely
// on: with the default 128 vnodes per member, hashing a large key
// population over 8 shards must load every shard to within ±15% of the
// even share. This is the `make shard-balance` guard — a hash or vnode
// change that skews the ring fails here before it skews an experiment.
func TestRingBalanceGuard(t *testing.T) {
	const (
		shards    = 8
		keys      = 100_000
		tolerance = 0.15
	)
	r := NewRing(DefaultVnodes, Labels(shards))
	counts := make(map[string]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	mean := float64(keys) / float64(shards)
	for _, m := range r.Members() {
		dev := (float64(counts[m]) - mean) / mean
		t.Logf("shard %s: %d keys (%+.1f%%)", m, counts[m], dev*100)
		if dev > tolerance || dev < -tolerance {
			t.Fatalf("shard %s holds %d of %d keys (%+.1f%%), outside ±%.0f%%",
				m, counts[m], keys, dev*100, tolerance*100)
		}
	}
}

// TestRingDeterministic asserts the same member set yields the same
// ownership regardless of construction order.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(64, []string{"0", "1", "2", "3"})
	b := NewRing(64, []string{"3", "1", "0", "2"})
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%s): %q vs %q under reordered construction", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingRemovalOnlyRemapsRemoved asserts the consistent-hashing property
// the eviction path depends on: dropping one member must not move keys
// between surviving members.
func TestRingRemovalOnlyRemapsRemoved(t *testing.T) {
	full := NewRing(DefaultVnodes, Labels(8))
	reduced := NewRing(DefaultVnodes, []string{"0", "1", "2", "3", "4", "5", "6"}) // "7" evicted
	moved := 0
	for i := 0; i < 10_000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == after {
			continue
		}
		moved++
		if before != "7" {
			t.Fatalf("key %s moved %s -> %s, but only shard 7 was removed", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys remapped after removing a shard; ring is not rebalancing")
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(8, nil)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	single := NewRing(8, []string{"only"})
	if got := single.Owner("anything"); got != "only" {
		t.Fatalf("single-member owner = %q", got)
	}
	succ := NewRing(8, Labels(3)).OwnerSuccessors("k", 5)
	if len(succ) != 3 {
		t.Fatalf("successors = %v, want all 3 distinct members", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate member %q in successors %v", s, succ)
		}
		seen[s] = true
	}
}
