package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dsb/internal/codec"
	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// Router routes keys to the replica sets of one sharded service. All
// replicas register under a single service name, distinguished by the
// shard index in their registry instance metadata (MetaShard); the Router
// groups them into replica groups, places the group labels on a
// consistent-hash ring, and hands callers the ordered replicas for a key.
// Membership is registry-driven: when a health lease evicts a replica —
// or a whole shard — the ring re-forms on the next Changed notification,
// exactly as load balancers follow stateless tiers.
//
// The Router is transport-level only: it decides *which* replicas a key
// maps to and in what read order, while the read-one/write-all and
// read-repair policies live in the typed clients layered on top
// (svcutil.KV, svcutil.DB). Every per-replica invoker runs the full
// middleware chain the Router was built with, so tracing, fault injection,
// deadline budgets, retries, and per-replica circuit breakers all see the
// sharded backends individually.
type Router struct {
	network    rpc.Network
	target     string
	vnodes     int
	mws        []transport.Middleware
	instrument func(addr string) ([]transport.Middleware, func() string)
	replicaMW  func(addr string) []transport.Middleware
	clientOpts []rpc.ClientOption

	mu     sync.RWMutex
	groups map[string]*group
	ring   *Ring
	closed bool
}

// group is one shard's replica set.
type group struct {
	label    string
	replicas []*Replica // sorted by address; copy-on-write under Router.mu
	rr       atomic.Uint64
}

// Replica is one addressable replica of one shard: a dedicated client
// wrapped in the router's middleware chain. It satisfies transport.Caller.
type Replica struct {
	addr    string
	shard   string
	target  string
	client  *rpc.Client
	invoke  transport.Invoker
	breaker func() string // nil without an instrumented factory
}

// Addr returns the replica's instance address.
func (r *Replica) Addr() string { return r.addr }

// Shard returns the replica's shard label.
func (r *Replica) Shard() string { return r.shard }

// Target returns the sharded service name.
func (r *Replica) Target() string { return r.target }

// Call invokes method on this replica through the middleware chain. The
// call is stamped with the replica address before the chain runs, so
// middleware that targets individual replicas (fault rules with Addr set)
// can tell siblings apart.
func (r *Replica) Call(ctx context.Context, method string, req, resp any) error {
	call := transport.AcquireCall(r.target, method)
	call.Body = req
	call.Addr = r.addr
	err := r.invoke(ctx, call)
	if err == nil && resp != nil {
		if uerr := codec.Unmarshal(call.Reply, resp); uerr != nil {
			err = fmt.Errorf("shard: unmarshal %s.%s reply: %w", r.target, method, uerr)
		}
	}
	transport.ReleaseBuf(call.Reply)
	transport.ReleaseCall(call)
	return err
}

// Stream opens a streaming call pinned to this replica, through the same
// middleware chain as Call (the call is stamped with the replica address
// first). The partitioned broker's push consumers use it to hold a standing
// delivery stream to each shard primary.
func (r *Replica) Stream(ctx context.Context, method string, req any) (*transport.Stream, error) {
	return transport.OpenStream(ctx, r.invoke, r.target, r.addr, method, req)
}

var _ transport.Streamer = (*Replica)(nil)

// Option configures a Router.
type Option func(*Router)

// WithVnodes sets the virtual-node count per shard (default DefaultVnodes).
func WithVnodes(n int) Option {
	return func(r *Router) { r.vnodes = n }
}

// WithMiddleware appends the per-call chain every replica invocation runs,
// outermost first — tracing, app middleware, and the per-target half of the
// resilience stack (deadline budget, retry, hedge) install here.
func WithMiddleware(mws ...transport.Middleware) Option {
	return func(r *Router) { r.mws = append(r.mws, mws...) }
}

// WithReplicaInstrument installs a per-replica middleware factory with a
// health probe — the circuit breaker, one instance per replica, matching
// lb.WithBackendInstrument. It sits under the per-call chain, so retries
// and budgets wrap it and its rejections surface as fast failures the
// typed clients fall over on.
func WithReplicaInstrument(f func(addr string) ([]transport.Middleware, func() string)) Option {
	return func(r *Router) { r.instrument = f }
}

// WithReplicaMiddleware installs per-replica middleware *inside* the
// breaker, adjacent to the wire. Fault injection hooks in here so injected
// slowness and errors are timed and attributed by the replica's breaker —
// on the sharded path the fault layer plays the wire, not the caller.
func WithReplicaMiddleware(f func(addr string) []transport.Middleware) Option {
	return func(r *Router) { r.replicaMW = f }
}

// WithClientOptions passes options down to every replica's rpc.Client.
func WithClientOptions(opts ...rpc.ClientOption) Option {
	return func(r *Router) { r.clientOpts = append(r.clientOpts, opts...) }
}

// NewRouter creates a router for the sharded service target. It starts
// empty; call Sync (or run FollowRegistry) to populate membership.
func NewRouter(network rpc.Network, target string, opts ...Option) *Router {
	r := &Router{
		network: network,
		target:  target,
		vnodes:  DefaultVnodes,
		groups:  make(map[string]*group),
		ring:    NewRing(DefaultVnodes, nil),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Target returns the sharded service name.
func (r *Router) Target() string { return r.target }

// Sync reconciles membership against the given instance set: new replicas
// are wired, removed ones closed, and the ring is rebuilt over the shard
// labels that still have live replicas. Instances without a MetaShard
// label group under the catch-all "" shard.
func (r *Router) Sync(instances []registry.Instance) {
	want := make(map[string]map[string]bool) // label -> addr set
	for _, inst := range instances {
		label := inst.Meta[MetaShard]
		if want[label] == nil {
			want[label] = make(map[string]bool)
		}
		want[label][inst.Addr] = true
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	var stale []*Replica
	changed := false
	// Drop groups and replicas that left.
	for label, g := range r.groups {
		keep := g.replicas[:0:0]
		for _, rep := range g.replicas {
			if want[label][rep.addr] {
				keep = append(keep, rep)
			} else {
				stale = append(stale, rep)
				changed = true
			}
		}
		if len(keep) == 0 {
			delete(r.groups, label)
			continue
		}
		g.replicas = keep
	}
	// Add groups and replicas that joined.
	for label, addrs := range want {
		g, ok := r.groups[label]
		if !ok {
			g = &group{label: label}
			r.groups[label] = g
		}
		have := make(map[string]bool, len(g.replicas))
		for _, rep := range g.replicas {
			have[rep.addr] = true
		}
		for addr := range addrs {
			if have[addr] {
				continue
			}
			g.replicas = append(g.replicas, r.newReplica(label, addr))
			changed = true
		}
		sort.Slice(g.replicas, func(i, j int) bool { return g.replicas[i].addr < g.replicas[j].addr })
	}
	if changed || r.ring.Size() != len(r.groups) {
		labels := make([]string, 0, len(r.groups))
		for label := range r.groups {
			labels = append(labels, label)
		}
		r.ring = NewRing(r.vnodes, labels)
	}
	// Close evicted clients outside nothing: Close is non-blocking enough,
	// and in-flight calls holding the old replica fail over at the caller.
	for _, rep := range stale {
		rep.client.Close() //nolint:errcheck // best-effort teardown
	}
}

func (r *Router) newReplica(label, addr string) *Replica {
	opts := r.clientOpts
	rep := &Replica{addr: addr, shard: label, target: r.target}
	var inner []transport.Middleware
	if r.instrument != nil {
		mws, probe := r.instrument(addr)
		inner = append(inner, mws...)
		rep.breaker = probe
	}
	if r.replicaMW != nil {
		inner = append(inner, r.replicaMW(addr)...)
	}
	rep.client = rpc.NewClient(r.network, r.target, addr, opts...)
	chain := make([]transport.Middleware, 0, len(r.mws)+len(inner))
	chain = append(chain, r.mws...)
	chain = append(chain, inner...)
	rep.invoke = transport.Build(rep.client.Invoke, chain...)
	return rep
}

// FollowRegistry keeps membership synchronized with the registry until
// stop closes, re-forming the ring on every Changed notification — the
// same watcher machinery stateless balancers use, so a shard replica
// evicted by lease expiry leaves the routing tables within one TTL.
// It blocks; run it on its own goroutine.
func (r *Router) FollowRegistry(reg *registry.Registry, stop <-chan struct{}) {
	for {
		// Watch before reconciling so a change between the two is not lost.
		ch := reg.Changed(r.target)
		r.Sync(reg.Instances(r.target))
		select {
		case <-stop:
			return
		case <-ch:
		}
	}
}

// Shards returns the live shard labels, sorted.
func (r *Router) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Members()
}

// Owner returns the shard label owning key ("" when no shards are live).
func (r *Router) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Owner(key)
}

// Route returns the owning shard's replicas for key in read order: the
// rotation pick first (spreading read load across the set), then its
// siblings as fallbacks. Read-one consumers take the head and fall back
// down the slice; write-all consumers write the whole slice. Empty when no
// shards are live.
func (r *Router) Route(key string) []*Replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.groups[r.ring.Owner(key)].rotated()
}

// GroupReplicas returns the replicas of one shard label in read order —
// the per-shard handle batch operations use after grouping keys by Owner.
func (r *Router) GroupReplicas(label string) []*Replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.groups[label].rotated()
}

// Scatter returns every live shard's replicas in read order, sorted by
// shard label — the fan-out set for whole-tier queries (Find, FindRange).
func (r *Router) Scatter() [][]*Replica {
	r.mu.RLock()
	groups := make([]*group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	// Snapshot each group's read order while still holding the lock:
	// rotated reads g.replicas, which Sync reassigns under the write lock.
	out := make([][]*Replica, len(groups))
	for i, g := range groups {
		out[i] = g.rotated()
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i][0].shard < out[j][0].shard })
	return out
}

// rotated snapshots the group's replicas starting at the next rotation
// pick; callers must hold the router's lock (Sync reassigns g.replicas).
// A nil group yields nil.
func (g *group) rotated() []*Replica {
	if g == nil {
		return nil
	}
	reps := g.replicas
	n := len(reps)
	if n == 0 {
		return nil
	}
	start := int(g.rr.Add(1)-1) % n
	out := make([]*Replica, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, reps[(start+i)%n])
	}
	return out
}

// ReplicaStats is a point-in-time view of one routed replica.
type ReplicaStats struct {
	Shard string
	Addr  string
	// Breaker is the replica's circuit-breaker state ("closed", "open",
	// "half-open"), or "" without an instrumented factory.
	Breaker string
}

// Stats returns a snapshot of every replica, sorted by (shard, addr).
func (r *Router) Stats() []ReplicaStats {
	r.mu.RLock()
	var out []ReplicaStats
	for _, g := range r.groups {
		for _, rep := range g.replicas {
			s := ReplicaStats{Shard: g.label, Addr: rep.addr}
			if rep.breaker != nil {
				s.Breaker = rep.breaker()
			}
			out = append(out, s)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Close closes every replica client and stops accepting Syncs.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	for _, g := range r.groups {
		for _, rep := range g.replicas {
			rep.client.Close() //nolint:errcheck
		}
	}
	r.groups = make(map[string]*group)
	r.ring = NewRing(r.vnodes, nil)
	return nil
}
