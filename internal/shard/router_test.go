package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/registry"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

type echoResp struct{ Instance string }

// startShardServers boots shards×replicas echo servers on net, registering
// each with its shard index as instance metadata, and returns addrs[shard].
func startShardServers(t testing.TB, net rpc.Network, reg *registry.Registry, shards, replicas int) [][]string {
	t.Helper()
	addrs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for rep := 0; rep < replicas; rep++ {
			name := fmt.Sprintf("s%d-r%d", s, rep)
			srv := rpc.NewServer("store")
			srv.Handle("Who", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
				return codec.Marshal(echoResp{Instance: name})
			})
			addr, err := srv.Start(net, fmt.Sprintf("store/%s", name))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			if reg != nil {
				reg.RegisterInstance("store", addr, map[string]string{MetaShard: strconv.Itoa(s)})
			}
			addrs[s] = append(addrs[s], addr)
		}
	}
	return addrs
}

// TestRouterGroupsByShardMeta checks that Sync partitions one service name
// into replica groups by the MetaShard label and routes every key to
// exactly the owning group's replicas.
func TestRouterGroupsByShardMeta(t *testing.T) {
	net := rpc.NewMem()
	reg := registry.New()
	addrs := startShardServers(t, net, reg, 4, 2)

	r := NewRouter(net, "store")
	defer r.Close()
	r.Sync(reg.Instances("store"))

	if got := r.Shards(); len(got) != 4 {
		t.Fatalf("Shards() = %v, want 4 labels", got)
	}
	byShard := make(map[string]map[string]bool)
	for s := range addrs {
		set := make(map[string]bool)
		for _, a := range addrs[s] {
			set[a] = true
		}
		byShard[strconv.Itoa(s)] = set
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := r.Owner(key)
		reps := r.Route(key)
		if len(reps) != 2 {
			t.Fatalf("Route(%q) returned %d replicas, want 2", key, len(reps))
		}
		for _, rep := range reps {
			if rep.Shard() != owner {
				t.Fatalf("Route(%q) replica shard %s, owner %s", key, rep.Shard(), owner)
			}
			if !byShard[owner][rep.Addr()] {
				t.Fatalf("Route(%q) replica addr %s not in shard %s", key, rep.Addr(), owner)
			}
		}
	}
}

// TestRouterReadRotation checks that consecutive routes of the same key
// rotate the replica read order, spreading read load across the set while
// keeping the full set available as fallbacks.
func TestRouterReadRotation(t *testing.T) {
	net := rpc.NewMem()
	reg := registry.New()
	startShardServers(t, net, reg, 1, 3)
	r := NewRouter(net, "store")
	defer r.Close()
	r.Sync(reg.Instances("store"))

	heads := make(map[string]bool)
	for i := 0; i < 9; i++ {
		reps := r.Route("same-key")
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %d", len(reps))
		}
		heads[reps[0].Addr()] = true
		seen := map[string]bool{}
		for _, rep := range reps {
			seen[rep.Addr()] = true
		}
		if len(seen) != 3 {
			t.Fatalf("route %d contains duplicates: %v", i, reps)
		}
	}
	if len(heads) != 3 {
		t.Fatalf("read rotation used %d distinct heads, want 3", len(heads))
	}
}

// TestRouterCallStampsAddr checks the live call path: Replica.Call reaches
// the right server through the middleware chain, and the call is stamped
// with the replica address before the chain runs so per-replica fault rules
// can match it.
func TestRouterCallStampsAddr(t *testing.T) {
	net := rpc.NewMem()
	reg := registry.New()
	addrs := startShardServers(t, net, reg, 2, 1)

	var mu sync.Mutex
	seen := make(map[string]string) // addr stamped on call -> replica mw addr
	r := NewRouter(net, "store",
		WithMiddleware(func(next transport.Invoker) transport.Invoker {
			return func(ctx context.Context, call *transport.Call) error {
				mu.Lock()
				seen[call.Addr] = ""
				mu.Unlock()
				return next(ctx, call)
			}
		}),
		WithReplicaMiddleware(func(addr string) []transport.Middleware {
			return []transport.Middleware{func(next transport.Invoker) transport.Invoker {
				return func(ctx context.Context, call *transport.Call) error {
					mu.Lock()
					seen[call.Addr] = addr
					mu.Unlock()
					return next(ctx, call)
				}
			}}
		}),
	)
	defer r.Close()
	r.Sync(reg.Instances("store"))

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := r.Route(key)
		var resp echoResp
		if err := reps[0].Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatal(err)
		}
		wantShard := "s0"
		if reps[0].Addr() == addrs[1][0] {
			wantShard = "s1"
		}
		if resp.Instance != wantShard+"-r0" {
			t.Fatalf("key %q answered by %s, routed to %s", key, resp.Instance, reps[0].Addr())
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("middleware never saw a call")
	}
	for callAddr, mwAddr := range seen {
		if callAddr == "" {
			t.Fatal("call reached middleware without a stamped Addr")
		}
		if mwAddr != callAddr {
			t.Fatalf("replica middleware built for %s saw call stamped %s", mwAddr, callAddr)
		}
	}
}

// TestRouterLeaseEvictionReformsRing is the registry-driven membership
// contract: when every replica of a shard lets its health lease lapse, the
// ring must re-form without the dead shard within one TTL — keys remap to
// surviving shards, and the survivors' keys do not move.
func TestRouterLeaseEvictionReformsRing(t *testing.T) {
	net := rpc.NewMem()
	reg := registry.New()
	addrs := startShardServers(t, net, nil, 3, 2)

	const ttl = 60 * time.Millisecond
	var leases []*registry.Lease
	for s := range addrs {
		for _, a := range addrs[s] {
			leases = append(leases, reg.RegisterLeaseMeta("store", a, ttl,
				map[string]string{MetaShard: strconv.Itoa(s)}))
		}
	}

	r := NewRouter(net, "store")
	defer r.Close()
	stop := make(chan struct{})
	defer close(stop)
	go r.FollowRegistry(reg, stop)

	waitShards := func(n int) {
		t.Helper()
		deadline := time.Now().Add(ttl + 100*time.Millisecond)
		for {
			if len(r.Shards()) == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("shards = %v, want %d live", r.Shards(), n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitShards(3)

	before := make(map[string]string)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = r.Owner(key)
	}

	// Crash shard 1: its replicas stop heartbeating; keep the rest renewed.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				for i, l := range leases {
					if i/2 != 1 {
						l.Renew()
					}
				}
			}
		}
	}()
	waitShards(2)

	for key, owner := range before {
		now := r.Owner(key)
		if owner == "1" {
			if now == "1" || now == "" {
				t.Fatalf("key %q still owned by evicted shard (owner %q)", key, now)
			}
		} else if now != owner {
			t.Fatalf("key %q moved %s→%s though its shard survived", key, owner, now)
		}
	}
	// The survivors still serve their keys end to end.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		var resp echoResp
		if err := r.Route(key)[0].Call(context.Background(), "Who", nil, &resp); err != nil {
			t.Fatalf("post-eviction call for %q: %v", key, err)
		}
	}
}

// TestRouterScatter checks the fan-out view covers every live shard once,
// in label order.
func TestRouterScatter(t *testing.T) {
	net := rpc.NewMem()
	reg := registry.New()
	startShardServers(t, net, reg, 3, 2)
	r := NewRouter(net, "store")
	defer r.Close()
	r.Sync(reg.Instances("store"))

	sets := r.Scatter()
	if len(sets) != 3 {
		t.Fatalf("Scatter() = %d groups, want 3", len(sets))
	}
	for i, reps := range sets {
		if len(reps) != 2 {
			t.Fatalf("group %d has %d replicas, want 2", i, len(reps))
		}
		if reps[0].Shard() != strconv.Itoa(i) {
			t.Fatalf("group %d label %q, want %d (sorted)", i, reps[0].Shard(), i)
		}
	}
}
