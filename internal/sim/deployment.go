package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"dsb/internal/archsim"
	"dsb/internal/graph"
	"dsb/internal/loadgen"
	"dsb/internal/metrics"
)

// Config describes a simulated deployment of one application.
type Config struct {
	App      *graph.App
	Platform archsim.Platform
	Net      archsim.Network
	// Replicas gives instances per service (default 1).
	Replicas map[string]int
	// EdgeServices marks services placed on edge-class machines (Swarm);
	// they run on EdgePlatform and reach cloud services across the app's
	// wire (wifi), while edge↔edge and cloud↔cloud hops use LocalWireNs
	// and the datacenter wire respectively.
	EdgeServices map[string]bool
	EdgePlatform archsim.Platform
	// ClientEdge places the workload source on the edge side (a drone).
	ClientEdge bool
	// LocalWireNs is the IPC-ish hop between colocated edge services.
	LocalWireNs float64
	// WorkerScale multiplies every profile's worker pool (min 1 worker);
	// experiments use fractions to provision saturation at the QPS scales
	// the paper's figures sweep.
	WorkerScale float64
	// HotFraction routes this share of picks to instance 0 of every
	// replicated service, modeling request skew concentrating load on hot
	// shards (Fig 22b). 0 = round robin.
	HotFraction float64
	// ConnsPerInstance caps concurrent in-flight requests per instance of
	// the named services — HTTP/1's one-outstanding-request-per-connection
	// blocking (Fig 17 case B). A caller waits (holding its own worker!)
	// until a connection frees, so a slow but CPU-idle backend backpressures
	// its callers.
	ConnsPerInstance map[string]int
	Seed             uint64
}

// Service is the simulated view of one microservice.
type Service struct {
	Name      string
	Prof      graph.Profile
	Instances []*Instance
	rr        int

	// Resid records full per-invocation residence (queueing + processing +
	// downstream) since deployment start; Window is reset by Sample.
	Resid  *metrics.Histogram
	Window *metrics.Histogram
	// NetResid records per-invocation time in this service's NIC (both
	// directions, queueing included) — the per-tier TCP processing time of
	// Fig 15a.
	NetResid *metrics.Histogram
}

// Instance is one running copy of a service on its own machine.
type Instance struct {
	Proc *Station
	NIC  *Station
	// Conns, when non-nil, bounds concurrent exchanges with this instance
	// (connection-table limit); callers block holding their own workers.
	Conns *Station
	Plat  archsim.Platform
	Slow  float64 // time multiplier; 1 = nominal, >1 = degraded machine
	Edge  bool
}

// Deployment is a bootable simulated cluster for one app.
type Deployment struct {
	Sim *Sim
	cfg Config

	services map[string]*Service
	order    []string

	clientNIC  *Station
	clientPlat archsim.Platform
	clientEdge bool
	rng        *rand.Rand

	// E2E collects end-to-end latencies; NetNs/TotalNs accumulate the
	// network share; Issued/Completed count requests.
	E2E       *metrics.Histogram
	WindowE2E *metrics.Histogram
	NetNs     float64 // kernel NIC residence (offloadable)
	WireTotNs float64 // propagation (not offloadable)
	TotalNs   float64
	Issued    int64
	Completed int64
	// GoodTarget, when set, makes GoodCount tally completions within it —
	// per-request goodput, the Fig 22 metric.
	GoodTarget time.Duration
	GoodCount  int64
}

// NewDeployment builds the cluster: one machine per instance, each with a
// worker pool sized from the profile and a 2-queue NIC.
func NewDeployment(s *Sim, cfg Config) (*Deployment, error) {
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.Platform.FreqGHz <= 0 {
		cfg.Platform = archsim.XeonPlatform
	}
	if cfg.Net.PerMsgCycles == 0 {
		cfg.Net = archsim.DefaultNetwork
	}
	if cfg.LocalWireNs <= 0 {
		cfg.LocalWireNs = 1e3
	}
	d := &Deployment{
		Sim:        s,
		cfg:        cfg,
		services:   make(map[string]*Service),
		E2E:        metrics.NewHistogram(),
		WindowE2E:  metrics.NewHistogram(),
		clientPlat: cfg.Platform,
		clientEdge: cfg.ClientEdge,
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x51B)),
	}
	if cfg.ClientEdge && cfg.EdgePlatform.FreqGHz > 0 {
		d.clientPlat = cfg.EdgePlatform
	}
	d.clientNIC = NewStation(s, "client/nic", 8)
	for _, name := range cfg.App.Services() {
		prof := cfg.App.Profiles[name]
		svc := &Service{Name: name, Prof: prof, Resid: metrics.NewHistogram(), Window: metrics.NewHistogram(), NetResid: metrics.NewHistogram()}
		replicas := cfg.Replicas[name]
		if replicas < 1 {
			replicas = 1
		}
		for i := 0; i < replicas; i++ {
			svc.Instances = append(svc.Instances, d.newInstance(name, i, prof))
		}
		d.services[name] = svc
		d.order = append(d.order, name)
	}
	return d, nil
}

func (d *Deployment) newInstance(name string, idx int, prof graph.Profile) *Instance {
	plat := d.cfg.Platform
	edge := d.cfg.EdgeServices[name]
	if edge && d.cfg.EdgePlatform.FreqGHz > 0 {
		plat = d.cfg.EdgePlatform
	}
	workers := prof.Workers
	if d.cfg.WorkerScale > 0 {
		workers = int(float64(workers) * d.cfg.WorkerScale)
		if workers < 1 {
			workers = 1
		}
	}
	in := &Instance{
		Proc: NewStation(d.Sim, fmt.Sprintf("%s/%d", name, idx), workers),
		NIC:  NewStation(d.Sim, fmt.Sprintf("%s/%d/nic", name, idx), 2),
		Plat: plat,
		Slow: 1,
		Edge: edge,
	}
	if limit := d.cfg.ConnsPerInstance[name]; limit > 0 {
		in.Conns = NewStation(d.Sim, fmt.Sprintf("%s/%d/conns", name, idx), limit)
	}
	return in
}

// Service returns the named service's simulated state.
func (d *Deployment) Service(name string) *Service { return d.services[name] }

// Services returns service names in workflow order.
func (d *Deployment) Services() []string { return d.order }

// AddInstance scales a service out by one instance (autoscaling). The new
// instance inherits the current pool size of the service's first instance,
// so balanced provisioning survives scale-out.
func (d *Deployment) AddInstance(name string) {
	svc := d.services[name]
	if svc == nil {
		return
	}
	in := d.newInstance(name, len(svc.Instances), svc.Prof)
	in.Proc.SetWorkers(svc.Instances[0].Proc.Workers())
	svc.Instances = append(svc.Instances, in)
}

// BalanceWorkers implements the paper's Section 3.8 provisioning: size
// every service's worker pool so all tiers saturate at about the same
// offered load. Worker demand per tier is its expected busy (hold) time
// per end-to-end request — own service time plus the downstream chain the
// worker blocks on — times the target QPS, padded by headroom.
func (d *Deployment) BalanceWorkers(targetQPS, headroom float64) {
	if headroom < 1 {
		headroom = 1
	}
	// Provisioning is a design-time decision made at nominal hardware, so
	// demand is computed on the nominal Xeon regardless of the platform the
	// experiment then runs (frequency scaling keeps the fleet fixed).
	nominal := archsim.XeonPlatform
	demandNs := make(map[string]float64, len(d.services))
	var hold func(node *graph.Node, mult float64) float64
	hold = func(node *graph.Node, mult float64) float64 {
		svc := d.services[node.Service]
		inst := svc.Instances[0]
		own := archsim.ServiceTimeNs(svc.Prof, node.Work, nominal)
		stageMax := map[int]float64{}
		for _, c := range node.Calls {
			callee := d.services[c.Node.Service]
			hop := 4*d.cfg.Net.ProcNs(callee.Prof.MsgBytes, nominal.FreqGHz) + 2*d.wireNs(inst.Edge, callee.Instances[0].Edge)
			t := float64(c.Count) * (hop + hold(c.Node, mult*float64(c.Count)))
			if t > stageMax[c.Stage] {
				stageMax[c.Stage] = t
			}
		}
		var children float64
		for _, t := range stageMax {
			children += t
		}
		total := own + children
		demandNs[node.Service] += total * mult
		return total
	}
	hold(d.cfg.App.Root, 1)
	for name, svc := range d.services {
		needed := int(targetQPS*demandNs[name]/1e9*headroom) + 1
		per := needed / len(svc.Instances)
		if per < 1 {
			per = 1
		}
		for _, in := range svc.Instances {
			in.Proc.SetWorkers(per)
		}
	}
}

// SetHotFraction changes the skew routing knob at runtime — the Fig 22a
// routing-misconfiguration injection that concentrates traffic on one
// instance per service.
func (d *Deployment) SetHotFraction(f float64) { d.cfg.HotFraction = f }

// SetSlow degrades (or restores) one instance of a service by a time
// multiplier — the slow-server and power-management injections.
func (d *Deployment) SetSlow(name string, idx int, factor float64) error {
	svc := d.services[name]
	if svc == nil || idx < 0 || idx >= len(svc.Instances) {
		return fmt.Errorf("sim: no instance %s[%d]", name, idx)
	}
	if factor < 0.01 {
		factor = 0.01
	}
	svc.Instances[idx].Slow = factor
	return nil
}

func (d *Deployment) pick(svc *Service) *Instance {
	if len(svc.Instances) > 1 && d.cfg.HotFraction > 0 {
		if d.rng.Float64() < d.cfg.HotFraction {
			return svc.Instances[0]
		}
		// Spread the remainder over the non-hot instances.
		return svc.Instances[1+d.rng.IntN(len(svc.Instances)-1)]
	}
	svc.rr++
	return svc.Instances[svc.rr%len(svc.Instances)]
}

// reqCtx tracks one end-to-end request.
type reqCtx struct {
	start  time.Duration
	netNs  float64 // kernel NIC residence
	wireNs float64 // propagation
}

// wireNs returns the propagation delay between two placement domains.
func (d *Deployment) wireNs(fromEdge, toEdge bool) float64 {
	if fromEdge != toEdge {
		return d.cfg.App.WireNs
	}
	if fromEdge {
		return d.cfg.LocalWireNs
	}
	// Cloud-to-cloud always rides the datacenter fabric, even when the
	// app's client hop is wifi.
	if d.cfg.App.WireNs > graph.DatacenterWireNs {
		return graph.DatacenterWireNs
	}
	return d.cfg.App.WireNs
}

// nicUse runs a message through a NIC station, charging actual residence
// (queueing included) to the request's network time.
func (d *Deployment) nicUse(rc *reqCtx, nic *Station, procNs float64, then func()) {
	entered := d.Sim.Now()
	nic.Use(time.Duration(procNs), func() {
		rc.netNs += float64(d.Sim.Now() - entered)
		then()
	})
}

// call executes one workflow node from a caller's machine and runs done
// when the reply lands back at the caller.
func (d *Deployment) call(rc *reqCtx, fromNIC *Station, fromPlat archsim.Platform, fromSlow float64, fromEdge bool, node *graph.Node, done func()) {
	svc := d.services[node.Service]
	inst := d.pick(svc)
	msg := svc.Prof.MsgBytes
	wire := time.Duration(d.wireNs(fromEdge, inst.Edge))

	sendNs := d.cfg.Net.ProcNs(msg, fromPlat.FreqGHz) * fromSlow
	recvNs := d.cfg.Net.ProcNs(msg, inst.Plat.FreqGHz) * inst.Slow

	// invNetNs tracks this invocation's time in the callee's NIC for the
	// per-tier TCP-processing breakdown.
	var invNetNs float64
	calleeNIC := func(procNs float64, then func()) {
		entered := d.Sim.Now()
		inst.NIC.Use(time.Duration(procNs), func() {
			delta := float64(d.Sim.Now() - entered)
			rc.netNs += delta
			invNetNs += delta
			then()
		})
	}

	// The server-side exchange, optionally gated by the callee's
	// connection table.
	exchange := func(connRelease func()) {
		calleeNIC(recvNs, func() {
			arrived := d.Sim.Now()
			inst.Proc.Acquire(func(release func()) {
				serviceNs := archsim.ServiceTimeNs(svc.Prof, node.Work, inst.Plat) * inst.Slow
				d.Sim.After(time.Duration(serviceNs), func() {
					d.runStages(rc, inst, node, func() {
						release()
						resid := d.Sim.Now() - arrived
						svc.Resid.RecordDuration(resid)
						svc.Window.RecordDuration(resid)
						// Reply path.
						calleeNIC(recvNs, func() {
							svc.NetResid.Record(int64(invNetNs))
							if connRelease != nil {
								connRelease()
							}
							rc.wireNs += float64(wire)
							d.Sim.After(wire, func() {
								d.nicUse(rc, fromNIC, sendNs, done)
							})
						})
					})
				})
			})
		})
	}

	d.nicUse(rc, fromNIC, sendNs, func() {
		rc.wireNs += float64(wire)
		d.Sim.After(wire, func() {
			if inst.Conns != nil {
				inst.Conns.Acquire(func(release func()) { exchange(release) })
			} else {
				exchange(nil)
			}
		})
	})
}

// runStages executes a node's downstream calls: stages sequentially, calls
// within a stage in parallel, repetitions within a call sequentially.
func (d *Deployment) runStages(rc *reqCtx, inst *Instance, node *graph.Node, done func()) {
	if len(node.Calls) == 0 {
		done()
		return
	}
	// Group by stage.
	stages := map[int][]graph.Call{}
	var keys []int
	for _, c := range node.Calls {
		if _, ok := stages[c.Stage]; !ok {
			keys = append(keys, c.Stage)
		}
		stages[c.Stage] = append(stages[c.Stage], c)
	}
	sort.Ints(keys)

	var runStage func(k int)
	runStage = func(k int) {
		if k >= len(keys) {
			done()
			return
		}
		calls := stages[keys[k]]
		pending := len(calls)
		for _, c := range calls {
			c := c
			var repeat func(i int)
			repeat = func(i int) {
				if i >= c.Count {
					pending--
					if pending == 0 {
						runStage(k + 1)
					}
					return
				}
				d.call(rc, inst.NIC, inst.Plat, inst.Slow, inst.Edge, c.Node, func() { repeat(i + 1) })
			}
			repeat(0)
		}
	}
	runStage(0)
}

// Inject starts one end-to-end request now; onDone (optional) receives the
// latency and its network component.
func (d *Deployment) Inject(onDone func(lat time.Duration, netNs float64)) {
	d.Issued++
	rc := &reqCtx{start: d.Sim.Now()}
	d.call(rc, d.clientNIC, d.clientPlat, 1, d.clientEdge, d.cfg.App.Root, func() {
		lat := d.Sim.Now() - rc.start
		d.Completed++
		if d.GoodTarget > 0 && lat <= d.GoodTarget {
			d.GoodCount++
		}
		d.E2E.RecordDuration(lat)
		d.WindowE2E.RecordDuration(lat)
		d.NetNs += rc.netNs
		d.WireTotNs += rc.wireNs
		d.TotalNs += float64(lat)
		if onDone != nil {
			onDone(lat, rc.netNs)
		}
	})
}

// NetworkFraction returns the average share of end-to-end latency spent in
// network processing (kernel NIC residence + wire) so far.
func (d *Deployment) NetworkFraction() float64 {
	if d.TotalNs == 0 {
		return 0
	}
	return (d.NetNs + d.WireTotNs) / d.TotalNs
}

// KernelNetFraction returns only the kernel TCP-processing share — the part
// the FPGA offload removes (wire propagation stays).
func (d *Deployment) KernelNetFraction() float64 {
	if d.TotalNs == 0 {
		return 0
	}
	return d.NetNs / d.TotalNs
}

// Utilization returns a service's mean worker utilization across instances
// for the current sample window.
func (svc *Service) Utilization() float64 {
	var sum float64
	for _, in := range svc.Instances {
		sum += in.Proc.Utilization()
	}
	return sum / float64(len(svc.Instances))
}

// SampleReset starts a new sampling window for every station and windowed
// histogram.
func (d *Deployment) SampleReset() {
	for _, name := range d.order {
		svc := d.services[name]
		for _, in := range svc.Instances {
			in.Proc.SampleReset()
			in.NIC.SampleReset()
		}
		svc.Window.Reset()
	}
	d.clientNIC.SampleReset()
	d.WindowE2E.Reset()
}

// Result summarizes an open-loop run.
type Result struct {
	QPS        float64
	Issued     int64
	Completed  int64
	E2E        metrics.Snapshot
	NetFrac    float64
	PerService map[string]metrics.Snapshot
}

// Goodput returns completed requests per second of simulated time.
func (r Result) Goodput(dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(r.Completed) / dur.Seconds()
}

// RunOpenLoop drives the deployment with Poisson arrivals at qps for dur
// of virtual time, then drains in-flight requests (bounded) and reports.
func (d *Deployment) RunOpenLoop(qps float64, dur time.Duration) Result {
	arrivals := loadgen.NewPoisson(qps, d.cfg.Seed+1)
	until := d.Sim.Now() + dur
	var schedule func(at time.Duration)
	schedule = func(at time.Duration) {
		if at > until {
			return
		}
		d.Sim.After(at-d.Sim.Now(), func() {
			d.Inject(nil)
			schedule(d.Sim.Now() + arrivals.Next())
		})
	}
	schedule(d.Sim.Now() + arrivals.Next())
	d.Sim.Run(until)
	// Drain stragglers so tail latencies of queued requests are counted.
	d.Sim.Drain(50_000_000)

	res := Result{
		QPS:        qps,
		Issued:     d.Issued,
		Completed:  d.Completed,
		E2E:        d.E2E.Snapshot(),
		NetFrac:    d.NetworkFraction(),
		PerService: make(map[string]metrics.Snapshot, len(d.order)),
	}
	for _, name := range d.order {
		res.PerService[name] = d.services[name].Resid.Snapshot()
	}
	return res
}
