package sim

import (
	"testing"
	"time"

	"dsb/internal/graph"
)

// twoTierApp is a minimal caller→callee topology for focused tests.
func twoTierApp() *graph.App {
	p := map[string]graph.Profile{
		"front": {Language: "C", Cycles: 300e3, CodeKB: 100, KernelFrac: 0.4, LibFrac: 0.2, MsgBytes: 512, Workers: 8},
		"back":  {Language: "C", Cycles: 100e3, FixedNs: 10e3, CodeKB: 100, KernelFrac: 0.4, LibFrac: 0.2, MsgBytes: 512, Workers: 32},
	}
	root := &graph.Node{Service: "front", Work: 1, Calls: []graph.Call{
		{Stage: 0, Count: 1, Node: &graph.Node{Service: "back", Work: 1}},
	}}
	return &graph.App{Name: "mini", Profiles: p, Root: root, WireNs: graph.DatacenterWireNs}
}

func TestConnLimitBackpressuresCaller(t *testing.T) {
	// With a tight connection table on a slowed backend, the front tier
	// saturates (workers held) even though the backend CPU pool is idle.
	run := func(conns int) (frontUtil, backUtil float64, p99 time.Duration) {
		cfg := Config{App: twoTierApp(), Seed: 31}
		if conns > 0 {
			cfg.ConnsPerInstance = map[string]int{"back": conns}
		}
		d, _ := NewDeployment(New(), cfg)
		d.SetSlow("back", 0, 10) //nolint:errcheck
		d.SampleReset()
		res := d.RunOpenLoop(4000, time.Second)
		return d.Service("front").Utilization(), d.Service("back").Utilization(), time.Duration(res.E2E.P99)
	}
	fUnlimited, _, p99Unlimited := run(0)
	fLimited, bLimited, p99Limited := run(1)
	if p99Limited <= p99Unlimited {
		t.Fatalf("conn limit did not hurt tail: %v vs %v", p99Limited, p99Unlimited)
	}
	if fLimited < 0.9 {
		t.Fatalf("front util with conn limit = %f, want saturated", fLimited)
	}
	if bLimited > 0.5 {
		t.Fatalf("back CPU util = %f, should stay idle (conns are the bottleneck)", bLimited)
	}
	_ = fUnlimited
}

func TestBalanceWorkersEvensSaturation(t *testing.T) {
	d, _ := NewDeployment(New(), Config{App: graph.SocialNetwork(), Seed: 32})
	d.BalanceWorkers(400, 1.3)
	d.SampleReset()
	d.RunOpenLoop(380, 2*time.Second)
	// At ~95% of the provisioning target, every major tier should be
	// meaningfully utilized — no tier left at near-zero while another
	// saturates (the imbalance balanced provisioning removes).
	var min, max float64 = 2, 0
	for _, svc := range []string{"nginx", "composePost", "text", "postsStorage", "writeTimeline"} {
		u := d.Service(svc).Utilization()
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max > 0 && min/max < 0.15 {
		t.Fatalf("tiers badly imbalanced after BalanceWorkers: min=%f max=%f", min, max)
	}
}

func TestGoodTargetCounting(t *testing.T) {
	d, _ := NewDeployment(New(), Config{App: twoTierApp(), Seed: 33})
	d.GoodTarget = time.Second // everything qualifies at low load
	d.RunOpenLoop(50, time.Second)
	if d.GoodCount != d.Completed {
		t.Fatalf("good = %d, completed = %d", d.GoodCount, d.Completed)
	}
	d2, _ := NewDeployment(New(), Config{App: twoTierApp(), Seed: 33})
	d2.GoodTarget = time.Nanosecond // nothing qualifies
	d2.RunOpenLoop(50, time.Second)
	if d2.GoodCount != 0 {
		t.Fatalf("good = %d with impossible target", d2.GoodCount)
	}
}

func TestHotFractionConcentratesLoad(t *testing.T) {
	mk := func(hot float64) *Deployment {
		d, _ := NewDeployment(New(), Config{
			App: twoTierApp(), Seed: 34,
			Replicas:    map[string]int{"back": 4},
			HotFraction: hot,
		})
		d.SampleReset()
		d.RunOpenLoop(2000, time.Second)
		return d
	}
	balanced := mk(0)
	skewed := mk(0.9)
	utilOf := func(d *Deployment, idx int) float64 {
		return d.Service("back").Instances[idx].Proc.Utilization()
	}
	if utilOf(skewed, 0) <= 2*utilOf(balanced, 0) {
		t.Fatalf("hot instance util %f not concentrated vs balanced %f", utilOf(skewed, 0), utilOf(balanced, 0))
	}
	// SetHotFraction flips routing at runtime.
	d := mk(0)
	d.SetHotFraction(1.0)
	before := utilOf(d, 0)
	d.SampleReset()
	d.RunOpenLoop(1000, time.Second)
	if utilOf(d, 0) <= before/2 && utilOf(d, 0) < 0.1 {
		t.Fatalf("runtime hot fraction had no effect: %f", utilOf(d, 0))
	}
}

func TestAddInstanceInheritsWorkers(t *testing.T) {
	d, _ := NewDeployment(New(), Config{App: twoTierApp(), Seed: 35})
	d.Service("back").Instances[0].Proc.SetWorkers(3)
	d.AddInstance("back")
	insts := d.Service("back").Instances
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	if insts[1].Proc.Workers() != 3 {
		t.Fatalf("new instance workers = %d, want 3", insts[1].Proc.Workers())
	}
	d.AddInstance("ghost") // no panic on unknown service
}

func TestPerServiceNetResidRecorded(t *testing.T) {
	d, _ := NewDeployment(New(), Config{App: twoTierApp(), Seed: 36})
	d.RunOpenLoop(50, time.Second)
	back := d.Service("back")
	if back.NetResid.Count() == 0 {
		t.Fatal("no per-service network residence recorded")
	}
	// Network residence must be below total residence.
	if back.NetResid.Percentile(50) >= back.Resid.Percentile(50)+1 {
		t.Fatalf("net %d >= resid %d", back.NetResid.Percentile(50), back.Resid.Percentile(50))
	}
}
