// Package sim is the discrete-event simulator that executes the suite's
// dependency graphs as queueing networks over modeled hardware. Every
// service instance is a multi-worker station whose workers are held for a
// request's full residence — compute plus downstream calls — reproducing
// the synchronous-RPC semantics that make backpressure and cascading QoS
// violations emerge exactly as Section 6 of the paper describes. Message
// hops pass through per-machine kernel/NIC stations whose cost comes from
// the archsim network model, so network processing queues up at high load
// (Fig 15) and shrinks under FPGA offload (Fig 16).
//
// The simulator is deterministic: virtual time, seeded arrivals, and FIFO
// event ordering for equal timestamps.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is the event loop with a virtual clock.
type Sim struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
}

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// After schedules fn to run d from now. Negative d means now.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.heap, event{at: s.now + d, seq: s.seq, fn: fn})
}

// Step runs the next event; false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes all events up to and including time until, leaving the
// clock at until even if the queue drains early.
func (s *Sim) Run(until time.Duration) {
	for len(s.heap) > 0 && s.heap[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Drain runs every remaining event (bounded by maxEvents as a runaway
// guard) and returns whether the queue fully drained.
func (s *Sim) Drain(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if !s.Step() {
			return true
		}
	}
	return len(s.heap) == 0
}
