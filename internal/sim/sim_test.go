package sim

import (
	"testing"
	"time"

	"dsb/internal/archsim"
	"dsb/internal/graph"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(10*time.Millisecond, func() { order = append(order, 2) })
	s.After(5*time.Millisecond, func() { order = append(order, 1) })
	s.After(10*time.Millisecond, func() { order = append(order, 3) }) // FIFO at equal time
	s.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := New()
	fired := false
	s.After(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("future event fired early")
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(0, tick)
	if !s.Drain(1000) {
		t.Fatal("drain incomplete")
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
}

func TestStationConcurrencyLimit(t *testing.T) {
	s := New()
	st := NewStation(s, "x", 2)
	var maxBusy int
	probe := func() {
		if st.busy > maxBusy {
			maxBusy = st.busy
		}
	}
	for i := 0; i < 6; i++ {
		st.Use(10*time.Millisecond, func() {})
		s.After(time.Millisecond, probe)
	}
	s.Run(time.Second)
	if maxBusy > 2 {
		t.Fatalf("maxBusy = %d", maxBusy)
	}
	// 6 jobs × 10ms on 2 workers = 30ms makespan.
	s2 := New()
	st2 := NewStation(s2, "y", 2)
	var lastDone time.Duration
	for i := 0; i < 6; i++ {
		st2.Use(10*time.Millisecond, func() { lastDone = s2.Now() })
	}
	s2.Run(time.Second)
	if lastDone != 30*time.Millisecond {
		t.Fatalf("makespan = %v", lastDone)
	}
}

func TestStationFIFO(t *testing.T) {
	s := New()
	st := NewStation(s, "x", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		st.Use(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(time.Second)
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestStationUtilization(t *testing.T) {
	s := New()
	st := NewStation(s, "x", 1)
	st.SampleReset()
	st.Use(500*time.Millisecond, func() {})
	s.Run(time.Second)
	util := st.Utilization()
	if util < 0.49 || util > 0.51 {
		t.Fatalf("util = %f, want ~0.5", util)
	}
	st.SampleReset()
	s.Run(2 * time.Second)
	if got := st.Utilization(); got != 0 {
		t.Fatalf("idle window util = %f", got)
	}
}

func TestStationSetWorkersUnblocks(t *testing.T) {
	s := New()
	st := NewStation(s, "x", 1)
	done := 0
	for i := 0; i < 4; i++ {
		st.Use(10*time.Millisecond, func() { done++ })
	}
	s.Run(5 * time.Millisecond) // first job running, 3 queued
	st.SetWorkers(4)
	s.Run(time.Second)
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	s := New()
	st := NewStation(s, "x", 1)
	st.Acquire(func(release func()) {
		release()
		defer func() {
			if recover() == nil {
				t.Error("double release not caught")
			}
		}()
		release()
	})
	s.Drain(100)
}

// deploy boots a small social-network deployment for tests.
func deploy(t *testing.T, app *graph.App, cfg Config) *Deployment {
	t.Helper()
	s := New()
	cfg.App = app
	d, err := NewDeployment(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSingleRequestLatencyComposition(t *testing.T) {
	d := deploy(t, graph.Memcached(), Config{Seed: 1})
	var lat time.Duration
	var netNs float64
	d.Inject(func(l time.Duration, n float64) { lat, netNs = l, n })
	if !d.Sim.Drain(100000) {
		t.Fatal("request did not finish")
	}
	// memcached baseline: ~186µs end to end, ~20% network (Fig 3 targets).
	if lat < 100*time.Microsecond || lat > 400*time.Microsecond {
		t.Fatalf("memcached latency = %v", lat)
	}
	share := netNs / float64(lat)
	if share < 0.08 || share > 0.40 {
		t.Fatalf("memcached network share = %f", share)
	}
}

func TestSocialNetworkLatencyAndNetworkShare(t *testing.T) {
	d := deploy(t, graph.SocialNetwork(), Config{Seed: 2})
	res := d.RunOpenLoop(50, 2*time.Second)
	if res.Completed < 60 {
		t.Fatalf("completed = %d", res.Completed)
	}
	p50 := time.Duration(res.E2E.P50)
	// Target ≈3.8ms (Fig 3); accept a generous band around it.
	if p50 < 1500*time.Microsecond || p50 > 8*time.Millisecond {
		t.Fatalf("social p50 = %v", p50)
	}
	if res.NetFrac < 0.20 || res.NetFrac > 0.55 {
		t.Fatalf("social network fraction = %f, want ~0.36", res.NetFrac)
	}
	// Single-tier nginx has a much lower network share (Fig 3).
	dn := deploy(t, graph.Nginx(), Config{Seed: 3})
	rn := dn.RunOpenLoop(20, 2*time.Second)
	if rn.NetFrac >= res.NetFrac {
		t.Fatalf("nginx net frac %f >= social %f", rn.NetFrac, res.NetFrac)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	// WorkerScale 1/8 provisions saturation near a few hundred QPS.
	cfg := Config{Seed: 4, WorkerScale: 0.125}
	low := deploy(t, graph.SocialNetwork(), cfg).RunOpenLoop(10, 2*time.Second)
	high := deploy(t, graph.SocialNetwork(), cfg).RunOpenLoop(900, 2*time.Second)
	if high.E2E.P99 <= low.E2E.P99 {
		t.Fatalf("p99 low=%v high=%v", low.E2E.P99, high.E2E.P99)
	}
	// Network share grows as NIC queues build (Fig 15's high-load shift).
	if high.NetFrac <= low.NetFrac {
		t.Logf("warning: net frac did not grow: low=%f high=%f", low.NetFrac, high.NetFrac)
	}
}

func TestFrequencyScalingSensitivity(t *testing.T) {
	run := func(app *graph.App, freq float64) time.Duration {
		plat := archsim.XeonPlatform
		plat.FreqGHz = freq
		d := deploy(t, app, Config{Seed: 5, Platform: plat})
		res := d.RunOpenLoop(30, time.Second)
		return time.Duration(res.E2E.P99)
	}
	// Social Network suffers more from low frequency than MongoDB, whose
	// fixed I/O time dominates (Fig 12).
	socialRatio := float64(run(graph.SocialNetwork(), 1.0)) / float64(run(graph.SocialNetwork(), 2.4))
	mongoRatio := float64(run(graph.MongoDB(), 1.0)) / float64(run(graph.MongoDB(), 2.4))
	if socialRatio <= mongoRatio {
		t.Fatalf("freq sensitivity social=%f mongo=%f", socialRatio, mongoRatio)
	}
	if socialRatio < 1.5 {
		t.Fatalf("social ratio = %f, want > 1.5", socialRatio)
	}
}

func TestSlowServerDegradesTail(t *testing.T) {
	d := deploy(t, graph.SocialNetwork(), Config{Seed: 6})
	base := d.RunOpenLoop(50, time.Second)

	d2 := deploy(t, graph.SocialNetwork(), Config{Seed: 6})
	if err := d2.SetSlow("mongodb", 0, 8); err != nil {
		t.Fatal(err)
	}
	slowed := d2.RunOpenLoop(50, time.Second)
	if slowed.E2E.P99 <= base.E2E.P99 {
		t.Fatalf("slow server had no effect: %v vs %v", slowed.E2E.P99, base.E2E.P99)
	}
	if err := d2.SetSlow("nope", 0, 2); err == nil {
		t.Fatal("SetSlow on unknown service accepted")
	}
}

func TestScaleOutRelievesSaturation(t *testing.T) {
	// Saturate the single-worker queueMaster, then scale it out.
	app := graph.Ecommerce()
	one := deploy(t, app, Config{Seed: 7}).RunOpenLoop(120, time.Second)
	scaled := deploy(t, app, Config{Seed: 7, Replicas: map[string]int{"queueMaster": 8}}).RunOpenLoop(120, time.Second)
	if scaled.E2E.P99 >= one.E2E.P99 {
		t.Fatalf("scale-out did not help: %v vs %v", scaled.E2E.P99, one.E2E.P99)
	}
}

func TestSwarmEdgeVsCloudLowLoad(t *testing.T) {
	edgeCfg := Config{
		Seed:         8,
		EdgeServices: map[string]bool{"droneSensors": true, "cloudController": true, "imageRecognition": true, "obstacleAvoidance": true, "motionControl": true},
		EdgePlatform: archsim.Platform{Core: archsim.Xeon, FreqGHz: 0.6, Cores: 4},
		ClientEdge:   true,
	}
	edge := deploy(t, graph.SwarmEdge(), edgeCfg)
	edgeRes := edge.RunOpenLoop(2, 4*time.Second)

	cloud := deploy(t, graph.SwarmCloud(), Config{Seed: 8, ClientEdge: true})
	cloudRes := cloud.RunOpenLoop(2, 4*time.Second)

	// Image-recognition-dominated missions: the weak edge core loses even
	// after paying the wifi hop (Fig 9, left vs third panel).
	if cloudRes.E2E.P50 >= edgeRes.E2E.P50 {
		t.Fatalf("cloud p50 %v >= edge p50 %v", time.Duration(cloudRes.E2E.P50), time.Duration(edgeRes.E2E.P50))
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	d := deploy(t, graph.SocialNetwork(), Config{Seed: 9})
	d.SampleReset()
	d.RunOpenLoop(200, time.Second)
	util := d.Service("nginx").Utilization()
	if util <= 0 || util > 1 {
		t.Fatalf("nginx util = %f", util)
	}
	if d.Service("not-a-service") != nil {
		t.Fatal("unknown service lookup should be nil")
	}
}

// Conservation property: every issued request either completes or is
// still in flight; after drain, issued == completed.
func TestRequestConservation(t *testing.T) {
	for _, qps := range []float64{5, 50, 500} {
		d := deploy(t, graph.Banking(), Config{Seed: 10})
		res := d.RunOpenLoop(qps, time.Second)
		if res.Issued != res.Completed {
			t.Fatalf("qps %f: issued %d != completed %d after drain", qps, res.Issued, res.Completed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return deploy(t, graph.MediaService(), Config{Seed: 42}).RunOpenLoop(40, time.Second)
	}
	a, b := run(), run()
	if a.E2E != b.E2E || a.Completed != b.Completed || a.NetFrac != b.NetFrac {
		t.Fatalf("sim not deterministic:\n%+v\n%+v", a.E2E, b.E2E)
	}
}
