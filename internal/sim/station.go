package sim

import "time"

// Station is a multi-worker FIFO service center. A caller acquires a
// worker, holds it for however long it needs (compute, downstream calls),
// and releases it; queued acquisitions are granted in arrival order.
type Station struct {
	sim     *Sim
	Name    string
	workers int

	busy  int
	queue []func(release func())

	// Utilization accounting: busy worker-time integral.
	busyIntegral time.Duration
	lastChange   time.Duration
	// markIntegral/markAt support windowed utilization sampling.
	markIntegral time.Duration
	markAt       time.Duration

	// QueuePeak tracks the largest backlog since the last sample.
	QueuePeak int
}

// NewStation creates a station with the given parallelism.
func NewStation(s *Sim, name string, workers int) *Station {
	if workers < 1 {
		workers = 1
	}
	return &Station{sim: s, Name: name, workers: workers}
}

// Workers returns the station's parallelism.
func (st *Station) Workers() int { return st.workers }

// QueueLen returns the current backlog.
func (st *Station) QueueLen() int { return len(st.queue) }

func (st *Station) account() {
	now := st.sim.Now()
	st.busyIntegral += time.Duration(st.busy) * (now - st.lastChange)
	st.lastChange = now
}

// Acquire requests a worker; fn runs (via the event loop) once granted and
// must call release exactly once when done.
func (st *Station) Acquire(fn func(release func())) {
	if st.busy < st.workers {
		st.grant(fn)
		return
	}
	st.queue = append(st.queue, fn)
	if len(st.queue) > st.QueuePeak {
		st.QueuePeak = len(st.queue)
	}
}

func (st *Station) grant(fn func(release func())) {
	st.account()
	st.busy++
	released := false
	release := func() {
		if released {
			panic("sim: double release on station " + st.Name)
		}
		released = true
		st.account()
		st.busy--
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			// Grant through the event loop to bound stack depth under
			// deep backlogs.
			st.sim.After(0, func() { st.grant(next) })
		}
	}
	st.sim.After(0, func() { fn(release) })
}

// Use is the common acquire-hold-for-duration-release pattern: occupy a
// worker for d, then run done.
func (st *Station) Use(d time.Duration, done func()) {
	st.Acquire(func(release func()) {
		st.sim.After(d, func() {
			release()
			done()
		})
	})
}

// Utilization returns the busy fraction since the last SampleReset (or
// since creation), in [0, 1].
func (st *Station) Utilization() float64 {
	st.account()
	window := st.sim.Now() - st.markAt
	if window <= 0 {
		return 0
	}
	return float64(st.busyIntegral-st.markIntegral) / float64(window) / float64(st.workers)
}

// SampleReset starts a new utilization window and clears QueuePeak.
func (st *Station) SampleReset() {
	st.account()
	st.markIntegral = st.busyIntegral
	st.markAt = st.sim.Now()
	st.QueuePeak = len(st.queue)
}

// SetWorkers changes parallelism (scaling an instance up/down). Shrinking
// below the busy count lets current holders finish; no new grants happen
// until busy drops below the new limit.
func (st *Station) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	st.account()
	st.workers = n
	for st.busy < st.workers && len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		st.grant(next)
	}
}
