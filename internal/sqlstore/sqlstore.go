// Package sqlstore implements the suite's relational database — the role
// MySQL plays in DeathStarBench (the sharded, replicated MovieDB in the
// Media service and BankInfoDB in Banking). It is a minimal relational
// engine: tables with declared schemas, a primary key, secondary equality
// indexes, and ordered scans; plus sharding and replication wrappers that
// reproduce the deployment the paper describes, including per-replica
// fault injection used by the slow-server experiments.
package sqlstore

import (
	"fmt"
	"sort"
	"sync"

	"dsb/internal/rpc"
)

// Schema declares a table.
type Schema struct {
	Name       string
	PrimaryKey string
	// Columns lists all column names, including the primary key.
	Columns []string
	// Indexed lists columns with secondary equality indexes.
	Indexed []string
}

// Row is one record: column name to value. Values are strings, as in the
// text protocol of the database the suite models; numeric columns are
// stored in decimal.
type Row map[string]string

func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// DB is one database node holding a set of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	schema  Schema
	rows    map[string]Row
	indexes map[string]map[string]map[string]struct{} // col -> val -> pks
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a table schema. Creating an existing table is an
// error, as is a schema whose primary key is not among its columns.
func (db *DB) CreateTable(s Schema) error {
	if s.Name == "" || s.PrimaryKey == "" {
		return rpc.Errorf(rpc.CodeBadRequest, "sqlstore: table needs a name and primary key")
	}
	if !contains(s.Columns, s.PrimaryKey) {
		return rpc.Errorf(rpc.CodeBadRequest, "sqlstore: primary key %q not in columns", s.PrimaryKey)
	}
	for _, idx := range s.Indexed {
		if !contains(s.Columns, idx) {
			return rpc.Errorf(rpc.CodeBadRequest, "sqlstore: indexed column %q not in columns", idx)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[s.Name]; exists {
		return rpc.Errorf(rpc.CodeConflict, "sqlstore: table %q exists", s.Name)
	}
	t := &table{
		schema:  s,
		rows:    make(map[string]Row),
		indexes: make(map[string]map[string]map[string]struct{}),
	}
	for _, col := range s.Indexed {
		t.indexes[col] = make(map[string]map[string]struct{})
	}
	db.tables[s.Name] = t
	return nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, rpc.NotFoundf("sqlstore: no table %q", name)
	}
	return t, nil
}

// Insert adds a row; the primary key must be present and unique.
func (db *DB) Insert(tableName string, row Row) error {
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	pk := row[t.schema.PrimaryKey]
	if pk == "" {
		return rpc.Errorf(rpc.CodeBadRequest, "sqlstore: %s: missing primary key", tableName)
	}
	for col := range row {
		if !contains(t.schema.Columns, col) {
			return rpc.Errorf(rpc.CodeBadRequest, "sqlstore: %s: unknown column %q", tableName, col)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := t.rows[pk]; dup {
		return rpc.Errorf(rpc.CodeConflict, "sqlstore: %s: duplicate key %q", tableName, pk)
	}
	t.insertLocked(pk, row.clone())
	return nil
}

func (t *table) insertLocked(pk string, row Row) {
	t.rows[pk] = row
	for col, byVal := range t.indexes {
		v, ok := row[col]
		if !ok {
			continue
		}
		pks, ok := byVal[v]
		if !ok {
			pks = make(map[string]struct{})
			byVal[v] = pks
		}
		pks[pk] = struct{}{}
	}
}

func (t *table) removeLocked(pk string) {
	row, ok := t.rows[pk]
	if !ok {
		return
	}
	for col, byVal := range t.indexes {
		if v, ok := row[col]; ok {
			if pks, ok := byVal[v]; ok {
				delete(pks, pk)
				if len(pks) == 0 {
					delete(byVal, v)
				}
			}
		}
	}
	delete(t.rows, pk)
}

// Get returns the row with the given primary key.
func (db *DB) Get(tableName, pk string) (Row, error) {
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, rpc.NotFoundf("sqlstore: %s: no row %q", tableName, pk)
	}
	return row.clone(), nil
}

// Select returns rows where col equals val, ordered by primary key, up to
// limit (<=0 for all). Indexed columns use the index; others scan.
func (db *DB) Select(tableName, col, val string, limit int) ([]Row, error) {
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	if !contains(t.schema.Columns, col) {
		return nil, rpc.Errorf(rpc.CodeBadRequest, "sqlstore: %s: unknown column %q", tableName, col)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var pks []string
	if byVal, indexed := t.indexes[col]; indexed {
		for pk := range byVal[val] {
			pks = append(pks, pk)
		}
	} else {
		for pk, row := range t.rows {
			if row[col] == val {
				pks = append(pks, pk)
			}
		}
	}
	sort.Strings(pks)
	if limit > 0 && len(pks) > limit {
		pks = pks[:limit]
	}
	out := make([]Row, 0, len(pks))
	for _, pk := range pks {
		out = append(out, t.rows[pk].clone())
	}
	return out, nil
}

// Update applies fn to the row with primary key pk; fn receives a copy.
// Changing the primary key inside fn is ignored.
func (db *DB) Update(tableName, pk string, fn func(Row) Row) error {
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	row, ok := t.rows[pk]
	if !ok {
		return rpc.NotFoundf("sqlstore: %s: no row %q", tableName, pk)
	}
	updated := fn(row.clone())
	updated[t.schema.PrimaryKey] = pk
	t.removeLocked(pk)
	t.insertLocked(pk, updated)
	return nil
}

// Delete removes the row, reporting whether it existed.
func (db *DB) Delete(tableName, pk string) (bool, error) {
	t, err := db.table(tableName)
	if err != nil {
		return false, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := t.rows[pk]; !ok {
		return false, nil
	}
	t.removeLocked(pk)
	return true, nil
}

// Count returns the number of rows in the table.
func (db *DB) Count(tableName string) (int, error) {
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(t.rows), nil
}

// Scan returns up to limit rows ordered by primary key starting after the
// given key ("" for the beginning), for paging through a table.
func (db *DB) Scan(tableName, afterPK string, limit int) ([]Row, error) {
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	pks := make([]string, 0, len(t.rows))
	for pk := range t.rows {
		if pk > afterPK {
			pks = append(pks, pk)
		}
	}
	sort.Strings(pks)
	if limit > 0 && len(pks) > limit {
		pks = pks[:limit]
	}
	out := make([]Row, 0, len(pks))
	for _, pk := range pks {
		out = append(out, t.rows[pk].clone())
	}
	return out, nil
}

func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Cluster is a sharded, replicated deployment of the same schema set: rows
// are partitioned by primary-key hash across shards, and each shard keeps
// replicas that receive every write. Reads pick a healthy replica.
type Cluster struct {
	mu     sync.RWMutex
	shards [][]*DB // [shard][replica]
	slow   map[*DB]bool
	rr     int
}

// NewCluster creates a cluster with the given shard and replica counts.
func NewCluster(shards, replicas int) *Cluster {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	c := &Cluster{slow: make(map[*DB]bool)}
	for i := 0; i < shards; i++ {
		group := make([]*DB, replicas)
		for j := range group {
			group[j] = NewDB()
		}
		c.shards = append(c.shards, group)
	}
	return c
}

// CreateTable creates the table on every replica of every shard.
func (c *Cluster) CreateTable(s Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, group := range c.shards {
		for _, db := range group {
			if err := db.CreateTable(s); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Cluster) shardOf(pk string) []*DB {
	return c.shards[int(fnv1a(pk))%len(c.shards)]
}

// Insert writes the row to all replicas of its shard.
func (c *Cluster) Insert(tableName string, row Row, pk string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, db := range c.shardOf(pk) {
		if err := db.Insert(tableName, row); err != nil {
			return err
		}
	}
	return nil
}

// Get reads from a healthy replica of the row's shard, falling back to any
// replica if all are marked slow.
func (c *Cluster) Get(tableName, pk string) (Row, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	group := c.shardOf(pk)
	return c.pickReplica(group).Get(tableName, pk)
}

func (c *Cluster) pickReplica(group []*DB) *DB {
	c.rr++
	for i := 0; i < len(group); i++ {
		db := group[(c.rr+i)%len(group)]
		if !c.slow[db] {
			return db
		}
	}
	return group[c.rr%len(group)]
}

// SelectAll fans a Select out to one replica per shard and merges results
// ordered by primary key.
func (c *Cluster) SelectAll(tableName, col, val string, limit int) ([]Row, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Row
	var pkCol string
	for _, group := range c.shards {
		db := c.pickReplica(group)
		rows, err := db.Select(tableName, col, val, 0)
		if err != nil {
			return nil, err
		}
		if pkCol == "" {
			if t, err := db.table(tableName); err == nil {
				pkCol = t.schema.PrimaryKey
			}
		}
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][pkCol] < out[j][pkCol] })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Update applies fn on every replica of the row's shard.
func (c *Cluster) Update(tableName, pk string, fn func(Row) Row) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, db := range c.shardOf(pk) {
		if err := db.Update(tableName, pk, fn); err != nil {
			return err
		}
	}
	return nil
}

// MarkSlow flags the j-th replica of shard i as degraded so reads avoid it;
// the slow-server experiments use this to model a database shard landing on
// a bad machine.
func (c *Cluster) MarkSlow(shard, replica int, slow bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.shards) || replica < 0 || replica >= len(c.shards[shard]) {
		return fmt.Errorf("sqlstore: no replica %d/%d", shard, replica)
	}
	db := c.shards[shard][replica]
	if slow {
		c.slow[db] = true
	} else {
		delete(c.slow, db)
	}
	return nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }
