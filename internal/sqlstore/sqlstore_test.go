package sqlstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"dsb/internal/rpc"
)

func movieSchema() Schema {
	return Schema{
		Name:       "movies",
		PrimaryKey: "id",
		Columns:    []string{"id", "title", "year", "genre"},
		Indexed:    []string{"genre"},
	}
}

func newMovieDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable(movieSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(Schema{}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("empty schema: %v", err)
	}
	if err := db.CreateTable(Schema{Name: "t", PrimaryKey: "id", Columns: []string{"x"}}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("pk not in columns: %v", err)
	}
	if err := db.CreateTable(Schema{Name: "t", PrimaryKey: "id", Columns: []string{"id"}, Indexed: []string{"nope"}}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("bad index: %v", err)
	}
	good := Schema{Name: "t", PrimaryKey: "id", Columns: []string{"id"}}
	if err := db.CreateTable(good); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(good); !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("duplicate table: %v", err)
	}
}

func TestInsertGet(t *testing.T) {
	db := newMovieDB(t)
	row := Row{"id": "m1", "title": "Up", "year": "2009", "genre": "animation"}
	if err := db.Insert("movies", row); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("movies", "m1")
	if err != nil || got["title"] != "Up" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Returned row is a copy.
	got["title"] = "mutated"
	again, _ := db.Get("movies", "m1")
	if again["title"] != "Up" {
		t.Fatal("Get leaked internal row")
	}
	if _, err := db.Get("movies", "ghost"); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("missing row: %v", err)
	}
	if _, err := db.Get("ghost_table", "x"); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	db := newMovieDB(t)
	if err := db.Insert("movies", Row{"title": "nope"}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("missing pk: %v", err)
	}
	if err := db.Insert("movies", Row{"id": "m1", "bogus": "x"}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("unknown column: %v", err)
	}
	db.Insert("movies", Row{"id": "m1"}) //nolint:errcheck
	if err := db.Insert("movies", Row{"id": "m1"}); !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("duplicate pk: %v", err)
	}
}

func TestSelectIndexedAndScan(t *testing.T) {
	db := newMovieDB(t)
	for i := 0; i < 10; i++ {
		genre := "drama"
		if i%2 == 0 {
			genre = "comedy"
		}
		db.Insert("movies", Row{"id": fmt.Sprintf("m%02d", i), "year": "2000", "genre": genre}) //nolint:errcheck
	}
	// Indexed column.
	rows, err := db.Select("movies", "genre", "comedy", 0)
	if err != nil || len(rows) != 5 {
		t.Fatalf("Select indexed = %d, %v", len(rows), err)
	}
	if rows[0]["id"] != "m00" {
		t.Fatalf("not pk-ordered: %v", rows[0]["id"])
	}
	// Non-indexed column falls back to a scan.
	rows, err = db.Select("movies", "year", "2000", 3)
	if err != nil || len(rows) != 3 {
		t.Fatalf("Select scan = %d, %v", len(rows), err)
	}
	if _, err := db.Select("movies", "bogus", "x", 0); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("unknown column select: %v", err)
	}
}

func TestUpdateReindexes(t *testing.T) {
	db := newMovieDB(t)
	db.Insert("movies", Row{"id": "m1", "genre": "drama"}) //nolint:errcheck
	err := db.Update("movies", "m1", func(r Row) Row {
		r["genre"] = "comedy"
		r["id"] = "evil-rekey" // must be ignored
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := db.Select("movies", "genre", "drama", 0); len(rows) != 0 {
		t.Fatal("stale index after update")
	}
	rows, _ := db.Select("movies", "genre", "comedy", 0)
	if len(rows) != 1 || rows[0]["id"] != "m1" {
		t.Fatalf("update result: %v", rows)
	}
	if err := db.Update("movies", "ghost", func(r Row) Row { return r }); !rpc.IsCode(err, rpc.CodeNotFound) {
		t.Fatalf("update missing: %v", err)
	}
}

func TestDeleteAndCount(t *testing.T) {
	db := newMovieDB(t)
	db.Insert("movies", Row{"id": "m1", "genre": "g"}) //nolint:errcheck
	n, _ := db.Count("movies")
	if n != 1 {
		t.Fatalf("Count = %d", n)
	}
	existed, err := db.Delete("movies", "m1")
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if rows, _ := db.Select("movies", "genre", "g", 0); len(rows) != 0 {
		t.Fatal("index kept deleted row")
	}
	existed, _ = db.Delete("movies", "m1")
	if existed {
		t.Fatal("double delete")
	}
}

func TestScanPaging(t *testing.T) {
	db := newMovieDB(t)
	for i := 0; i < 10; i++ {
		db.Insert("movies", Row{"id": fmt.Sprintf("m%02d", i)}) //nolint:errcheck
	}
	page1, err := db.Scan("movies", "", 4)
	if err != nil || len(page1) != 4 || page1[0]["id"] != "m00" {
		t.Fatalf("page1 = %v, %v", page1, err)
	}
	page2, _ := db.Scan("movies", page1[3]["id"], 4)
	if len(page2) != 4 || page2[0]["id"] != "m04" {
		t.Fatalf("page2 = %v", page2)
	}
	page3, _ := db.Scan("movies", page2[3]["id"], 4)
	if len(page3) != 2 {
		t.Fatalf("page3 = %v", page3)
	}
}

// Property: Select over the indexed column always agrees with a full scan.
func TestIndexAgreesWithScanProperty(t *testing.T) {
	type op struct {
		Del   bool
		ID    uint8
		Genre uint8
	}
	f := func(ops []op) bool {
		db := NewDB()
		db.CreateTable(movieSchema()) //nolint:errcheck
		live := map[string]string{}
		for _, o := range ops {
			id := fmt.Sprintf("m%d", o.ID%32)
			if o.Del {
				db.Delete("movies", id) //nolint:errcheck
				delete(live, id)
				continue
			}
			g := fmt.Sprintf("g%d", o.Genre%3)
			if _, exists := live[id]; exists {
				db.Update("movies", id, func(r Row) Row { r["genre"] = g; return r }) //nolint:errcheck
			} else if db.Insert("movies", Row{"id": id, "genre": g}) != nil {
				return false
			}
			live[id] = g
		}
		for gi := 0; gi < 3; gi++ {
			g := fmt.Sprintf("g%d", gi)
			rows, err := db.Select("movies", "genre", g, 0)
			if err != nil {
				return false
			}
			want := 0
			for _, lg := range live {
				if lg == g {
					want++
				}
			}
			if len(rows) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertSelect(t *testing.T) {
	db := newMovieDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				db.Insert("movies", Row{"id": fmt.Sprintf("g%d-m%d", g, i), "genre": "x"}) //nolint:errcheck
				db.Select("movies", "genre", "x", 5)                                       //nolint:errcheck
			}
		}(g)
	}
	wg.Wait()
	n, _ := db.Count("movies")
	if n != 8*300 {
		t.Fatalf("Count = %d", n)
	}
}

func TestClusterShardingAndReplication(t *testing.T) {
	c := NewCluster(4, 2)
	if err := c.CreateTable(movieSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pk := fmt.Sprintf("m%03d", i)
		if err := c.Insert("movies", Row{"id": pk, "genre": fmt.Sprintf("g%d", i%3)}, pk); err != nil {
			t.Fatal(err)
		}
	}
	// Every row readable.
	for i := 0; i < 100; i++ {
		if _, err := c.Get("movies", fmt.Sprintf("m%03d", i)); err != nil {
			t.Fatalf("Get m%03d: %v", i, err)
		}
	}
	// Fan-out select sees all shards, merged in pk order.
	rows, err := c.SelectAll("movies", "genre", "g0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 34 {
		t.Fatalf("SelectAll = %d, want 34", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1]["id"] > rows[i]["id"] {
			t.Fatal("SelectAll not merged in pk order")
		}
	}
	if lim, _ := c.SelectAll("movies", "genre", "g0", 5); len(lim) != 5 {
		t.Fatalf("SelectAll limit = %d", len(lim))
	}
	// Updates hit all replicas: mark one replica slow per shard, reads
	// still see the update via the other replica.
	if err := c.Update("movies", "m001", func(r Row) Row { r["genre"] = "updated"; return r }); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < c.Shards(); s++ {
		if err := c.MarkSlow(s, 0, true); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Get("movies", "m001")
	if err != nil || got["genre"] != "updated" {
		t.Fatalf("replicated update: %v, %v", got, err)
	}
	if err := c.MarkSlow(99, 0, true); err == nil {
		t.Fatal("MarkSlow out of range accepted")
	}
}

func TestClusterAllReplicasSlowStillServes(t *testing.T) {
	c := NewCluster(1, 2)
	c.CreateTable(movieSchema())                     //nolint:errcheck
	c.Insert("movies", Row{"id": "m1"}, "m1")        //nolint:errcheck
	c.MarkSlow(0, 0, true)                           //nolint:errcheck
	c.MarkSlow(0, 1, true)                           //nolint:errcheck
	if _, err := c.Get("movies", "m1"); err != nil { // degraded but alive
		t.Fatalf("all-slow shard unreadable: %v", err)
	}
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	db.CreateTable(movieSchema()) //nolint:errcheck
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Insert("movies", Row{"id": fmt.Sprintf("m%d", i), "genre": fmt.Sprintf("g%d", i%8)}) //nolint:errcheck
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db := NewDB()
	db.CreateTable(movieSchema()) //nolint:errcheck
	for i := 0; i < 10000; i++ {
		db.Insert("movies", Row{"id": fmt.Sprintf("m%d", i), "genre": fmt.Sprintf("g%d", i%100)}) //nolint:errcheck
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Select("movies", "genre", fmt.Sprintf("g%d", i%100), 10) //nolint:errcheck
	}
}
