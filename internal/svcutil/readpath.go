package svcutil

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dsb/internal/coalesce"
	"dsb/internal/docstore"
)

// ReadPath is the shared cache-aside read path: check the cache tier,
// fall back to the authoritative fetch on a miss, and populate the cache
// with the result. It folds in the two hot-path behaviors every lookaside
// consumer needs and none of them got right independently:
//
//   - corrupt-entry purge: a cached value that fails Decode is deleted and
//     treated as a miss, so the authoritative store always backs a bad
//     entry (the timeline service used to keep serving a partial decode);
//   - miss coalescing: concurrent misses on one key collapse into a single
//     backing fetch (a hot-key stampede on a just-invalidated entry used
//     to multiply into one backing read per waiter).
type ReadPath[V any] struct {
	// MC is the cache tier.
	MC KV
	// TTL bounds cached entries (0 = no expiry).
	TTL time.Duration
	// Decode turns a cached value back into V. A Decode error marks the
	// entry corrupt: it is purged and the fetch path runs.
	Decode func([]byte) (V, error)
	// Fetch loads from the authoritative store on a miss, returning the
	// value, its cache encoding (nil = do not cache), and whether it
	// exists. It runs at most once per key per miss burst.
	Fetch func(ctx context.Context, key string) (V, []byte, bool, error)
	// NoCoalesce disables miss coalescing (experiment contrast arm).
	NoCoalesce bool

	group coalesce.Group[readResult[V]]
}

type readResult[V any] struct {
	val   V
	found bool
}

// Get returns the value for key, consulting the cache first.
func (rp *ReadPath[V]) Get(ctx context.Context, key string) (V, bool, error) {
	var zero V
	if raw, hit, err := rp.MC.Get(ctx, key); err != nil {
		return zero, false, err
	} else if hit {
		v, derr := rp.Decode(raw)
		if derr == nil {
			return v, true, nil
		}
		// Corrupt entry: purge it so the next reader goes straight to the
		// backing store too, and fall through to the authoritative fetch.
		// Best-effort — if the delete fails the entry stays poisoned but
		// this read is still served correctly from the store.
		rp.MC.Delete(ctx, key) //nolint:errcheck
	}
	fetch := func(ctx context.Context) (readResult[V], error) {
		v, encoded, found, err := rp.Fetch(ctx, key)
		if err != nil {
			return readResult[V]{}, err
		}
		if found && encoded != nil {
			// Best-effort populate; a failed Set just means the next
			// reader misses again.
			rp.MC.Set(ctx, key, encoded, rp.TTL) //nolint:errcheck
		}
		return readResult[V]{val: v, found: found}, nil
	}
	var res readResult[V]
	var err error
	if rp.NoCoalesce {
		res, err = fetch(ctx)
	} else {
		res, err = rp.group.Do(ctx, key, fetch)
	}
	if err != nil {
		return zero, false, err
	}
	return res.val, res.found, nil
}

// Stats exposes the coalescing counters (backing fetches vs. piggybacked
// waiters) for the experiments.
func (rp *ReadPath[V]) Stats() coalesce.Stats { return rp.group.Stats() }

// ListPrepend atomically prepends value to the []string body of the
// document, creating it if absent and capping the list at max entries
// (<=0 = unbounded). Returns the resulting list length.
func (d DB) ListPrepend(ctx context.Context, collection, id, value string, max int) (int, error) {
	return d.listPrepend(ctx, collection, id, value, max, false)
}

// ListPrependUnique is ListPrepend that skips the write when value is
// already in the list — the store-level idempotency backstop at-least-once
// delivery pipelines write through (see docstore.ListPrependUnique).
func (d DB) ListPrependUnique(ctx context.Context, collection, id, value string, max int) (int, error) {
	return d.listPrepend(ctx, collection, id, value, max, true)
}

func (d DB) listPrepend(ctx context.Context, collection, id, value string, max int, unique bool) (int, error) {
	if d.Shards != nil {
		return d.shardedListPrepend(ctx, collection, id, value, max, unique)
	}
	var resp docstore.ListPrependResp
	req := docstore.ListPrependReq{Collection: collection, ID: id, Value: value, Cap: int64(max), Unique: unique}
	if err := d.C.Call(ctx, "ListPrepend", req, &resp); err != nil {
		return 0, err
	}
	return int(resp.Len), nil
}

// Parallel runs fn(0..n-1) across at most workers goroutines and returns
// the first error (every index still runs). It is the bounded fan-out
// primitive for write paths that touch many downstream keys — pushing a
// post onto each follower's timeline, invalidating a batch of cache
// entries — where sequential calls serialize on per-call RPC latency and
// unbounded goroutines overwhelm the downstream tier.
func Parallel(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
