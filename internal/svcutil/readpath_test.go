package svcutil

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsb/internal/codec"
	"dsb/internal/kv"
	"dsb/internal/rpc"
)

// startCache boots a real kv tier over in-memory RPC and returns the typed
// client plus the raw cache for poisoning entries directly.
func startCache(t *testing.T) (KV, *kv.Cache) {
	t.Helper()
	n := rpc.NewMem()
	srv := rpc.NewServer("mc")
	raw := kv.New(0)
	kv.RegisterService(srv, raw)
	addr, err := srv.Start(n, "mc:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := rpc.NewClient(n, "mc", addr)
	t.Cleanup(func() { c.Close() })
	return KV{C: c}, raw
}

func stringsReadPath(mc KV, fetches *atomic.Int64, data map[string][]string) *ReadPath[[]string] {
	return &ReadPath[[]string]{
		MC:  mc,
		TTL: time.Minute,
		Decode: func(b []byte) ([]string, error) {
			var v []string
			if err := codec.Unmarshal(b, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
		Fetch: func(ctx context.Context, key string) ([]string, []byte, bool, error) {
			fetches.Add(1)
			v, ok := data[key]
			if !ok {
				return nil, nil, false, nil
			}
			enc, err := codec.Marshal(v)
			return v, enc, true, err
		},
	}
}

func TestReadPathHitMissPopulate(t *testing.T) {
	mc, _ := startCache(t)
	var fetches atomic.Int64
	rp := stringsReadPath(mc, &fetches, map[string][]string{"k": {"a", "b"}})
	ctx := context.Background()

	v, found, err := rp.Get(ctx, "k")
	if err != nil || !found || len(v) != 2 {
		t.Fatalf("Get = %v, %v, %v", v, found, err)
	}
	// Second read is a cache hit: no new backing fetch.
	if _, _, err := rp.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (second read must hit cache)", got)
	}
	if _, found, err := rp.Get(ctx, "ghost"); err != nil || found {
		t.Fatalf("ghost = %v, %v", found, err)
	}
}

// Regression shape for the timeline bug: a corrupt cache entry that decodes
// to non-nil garbage plus an error must be purged and served from the
// backing store, not returned as truth.
func TestReadPathPurgesCorruptEntry(t *testing.T) {
	mc, raw := startCache(t)
	var fetches atomic.Int64
	rp := stringsReadPath(mc, &fetches, map[string][]string{"k": {"real"}})
	ctx := context.Background()

	// A valid []string encoding with trailing junk: codec.Unmarshal fills
	// the target with garbage before reporting ErrTrailingBytes — exactly
	// the partial-decode corruption the timeline service used to trust.
	enc, err := codec.Marshal([]string{"bogus"})
	if err != nil {
		t.Fatal(err)
	}
	raw.Set("k", append(enc, 0x00), 0)

	v, found, err := rp.Get(ctx, "k")
	if err != nil || !found || len(v) != 1 || v[0] != "real" {
		t.Fatalf("Get = %v, %v, %v (corrupt entry served?)", v, found, err)
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
	// The corrupt entry was replaced by the fresh encoding.
	if cached, _, ok := raw.Get("k"); !ok {
		t.Fatal("cache not repopulated after purge")
	} else {
		var got []string
		if err := codec.Unmarshal(cached, &got); err != nil || len(got) != 1 || got[0] != "real" {
			t.Fatalf("cached = %v, %v (corrupt entry not replaced)", got, err)
		}
	}
}

// Concurrent misses on one key collapse into a single backing fetch.
func TestReadPathCoalescesMisses(t *testing.T) {
	mc, _ := startCache(t)
	var fetches atomic.Int64
	gate := make(chan struct{})
	rp := &ReadPath[[]string]{
		MC:  mc,
		TTL: time.Minute,
		Decode: func(b []byte) ([]string, error) {
			var v []string
			err := codec.Unmarshal(b, &v)
			return v, err
		},
		Fetch: func(ctx context.Context, key string) ([]string, []byte, bool, error) {
			fetches.Add(1)
			<-gate // hold the flight open so every reader joins it
			v := []string{"x"}
			enc, err := codec.Marshal(v)
			return v, enc, true, err
		},
	}
	ctx := context.Background()

	const readers = 24
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, found, err := rp.Get(ctx, "hot"); err != nil || !found || v[0] != "x" {
				t.Errorf("Get = %v, %v, %v", v, found, err)
			}
		}()
	}
	// Release the fetch once every reader has had a chance to pile in; the
	// piggyback counter is the signal that they joined the flight.
	for rp.Stats().Shared < readers-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (stampede not coalesced)", got)
	}
}

func TestReadPathNoCoalesceContrast(t *testing.T) {
	mc, raw := startCache(t)
	var fetches atomic.Int64
	rp := stringsReadPath(mc, &fetches, map[string][]string{"k": {"v"}})
	rp.NoCoalesce = true
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		raw.Delete("k")
		if _, _, err := rp.Get(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if got := fetches.Load(); got != 3 {
		t.Fatalf("fetches = %d, want 3 (NoCoalesce must hit the store per miss)", got)
	}
}

func TestParallel(t *testing.T) {
	const n = 100
	var (
		running, peak atomic.Int64
		done          [n]atomic.Bool
	)
	err := Parallel(4, n, func(i int) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		running.Add(-1)
		done[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("index %d never ran", i)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak concurrency = %d, want <= 4", p)
	}
}

func TestParallelFirstErrorEveryIndexRuns(t *testing.T) {
	var ran atomic.Int64
	wantErr := errors.New("boom")
	err := Parallel(3, 20, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return fmt.Errorf("index 5: %w", wantErr)
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran = %d, want 20 (an error must not cancel remaining work)", got)
	}
}

func TestParallelZeroAndClamps(t *testing.T) {
	if err := Parallel(4, 0, func(i int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	if err := Parallel(0, 5, func(i int) error { ran.Add(1); return nil }); err != nil || ran.Load() != 5 {
		t.Fatalf("workers=0: ran = %d, %v", ran.Load(), err)
	}
}
