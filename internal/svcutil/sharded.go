package svcutil

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rpc"
	"dsb/internal/shard"
)

// This file is the replica-set half of the KV/DB clients: the policies
// that turn the shard router's "which replicas own this key" answer into
// storage semantics. Reads are read-one — take the rotation head, fall
// down the replica list on transport errors — with read-repair: when a
// fallback replica has the value a sibling lacked (a replica revived
// empty, a write that missed one ack), the value is written back
// best-effort so the set reconverges. Writes are write-all with a
// one-ack success floor: a write that lands on any replica is durable for
// readers (they will find it via fallback and repair the rest), while a
// write no replica accepted fails loudly.
//
// Read-repair is deliberately TTL-bounded on the cache tier: repairing a
// key that a concurrent invalidation just deleted from the other replica
// can resurrect a stale entry, so repairs carry repairTTL rather than the
// original (possibly unbounded) TTL and the window closes on its own.

// repairTTL bounds cache entries written by read-repair.
const repairTTL = time.Minute

// ShardStarter is the slice of core.App that boots shard replicas;
// declared here so svcutil does not import the composition root.
type ShardStarter interface {
	StartRPCShard(service string, shard int, register func(*rpc.Server)) (string, error)
}

// StartShardReplicas boots shards×replicas instances of one stateful
// service tier under a single service name. register(s, r) builds the
// registration function for replica r of shard s — each (s, r) pair must
// construct its *own* backing store, since the replicas are independent
// copies converged only by write-all and read-repair. Unlike
// StartReplicas, every instance registers with its shard index as
// instance metadata, which is what lets shard routers reassemble the
// anonymous pool into replica sets. Counts below 1 are raised to 1.
func StartShardReplicas(app ShardStarter, service string, shards, replicas int, register func(shard, replica int) func(*rpc.Server)) error {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			if _, err := app.StartRPCShard(service, s, register(s, r)); err != nil {
				return err
			}
		}
	}
	return nil
}

func noShards(r *shard.Router) error {
	return fmt.Errorf("shard: no live shards of %q", r.Target())
}

// writeAll applies call to every replica, succeeding when at least one
// acks; a total failure returns the first error.
func writeAll(reps []*shard.Replica, call func(*shard.Replica) error) error {
	var firstErr error
	acked := false
	for _, rep := range reps {
		if err := call(rep); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acked = true
	}
	if !acked {
		return firstErr
	}
	return nil
}

// --- KV (cache tier) ---

func (k KV) shardedGet(ctx context.Context, key string) ([]byte, bool, error) {
	reps := k.Shards.Route(key)
	if len(reps) == 0 {
		return nil, false, noShards(k.Shards)
	}
	var missed []*shard.Replica
	var lastErr error
	for _, rep := range reps {
		var resp kv.GetResp
		if err := rep.Call(ctx, "Get", kv.GetReq{Key: key}, &resp); err != nil {
			lastErr = err
			continue
		}
		if !resp.Found {
			missed = append(missed, rep)
			continue
		}
		for _, m := range missed {
			// Best-effort, TTL-bounded (see the file comment on resurrection).
			m.Call(ctx, "Set", kv.SetReq{Key: key, Value: resp.Value, TTLNs: int64(repairTTL)}, nil) //nolint:errcheck
		}
		return resp.Value, true, nil
	}
	if len(missed) > 0 {
		// At least one replica answered authoritatively: it is a miss.
		return nil, false, nil
	}
	return nil, false, lastErr
}

func (k KV) shardedSet(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	reps := k.Shards.Route(key)
	if len(reps) == 0 {
		return noShards(k.Shards)
	}
	return writeAll(reps, func(rep *shard.Replica) error {
		return rep.Call(ctx, "Set", kv.SetReq{Key: key, Value: value, TTLNs: int64(ttl)}, nil)
	})
}

func (k KV) shardedDelete(ctx context.Context, key string) error {
	reps := k.Shards.Route(key)
	if len(reps) == 0 {
		return noShards(k.Shards)
	}
	return writeAll(reps, func(rep *shard.Replica) error {
		var resp kv.DeleteResp
		return rep.Call(ctx, "Delete", kv.DeleteReq{Key: key}, &resp)
	})
}

// shardedIncr applies the delta to every replica of the owner group (each
// keeps its own copy of the counter) and returns the first acked value.
// A replica that misses a delta diverges until the key expires or is
// rewritten — counters get no read-repair, matching the loose semantics
// cache-side counters already have under eviction.
func (k KV) shardedIncr(ctx context.Context, key string, delta int64) (int64, error) {
	reps := k.Shards.Route(key)
	if len(reps) == 0 {
		return 0, noShards(k.Shards)
	}
	var val int64
	got := false
	var firstErr error
	for _, rep := range reps {
		var resp kv.IncrResp
		if err := rep.Call(ctx, "Incr", kv.IncrReq{Key: key, Delta: delta}, &resp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !got {
			val, got = resp.Value, true
		}
	}
	if !got {
		return 0, firstErr
	}
	return val, nil
}

// MGet fetches a batch of keys in one round trip per backend, returning
// the found subset keyed by key. Single-backend mode issues one MGet RPC;
// sharded mode groups the keys by owning shard and fans one MGet out per
// shard concurrently (with per-shard replica fallback on transport
// errors), so a K-key batch costs at most one call per live shard instead
// of K calls. Batch reads skip read-repair — the point of the batch is
// bounding round trips, and a missed entry is re-fetchable by the caller.
func (k KV) MGet(ctx context.Context, keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	if k.Shards == nil {
		var resp kv.MGetResp
		if err := k.C.Call(ctx, "MGet", kv.MGetReq{Keys: keys}, &resp); err != nil {
			return nil, err
		}
		for i, key := range keys {
			if i < len(resp.Found) && resp.Found[i] {
				out[key] = resp.Values[i]
			}
		}
		return out, nil
	}
	byShard := make(map[string][]string)
	for _, key := range keys {
		owner := k.Shards.Owner(key)
		byShard[owner] = append(byShard[owner], key)
	}
	labels := make([]string, 0, len(byShard))
	for label := range byShard {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var mu sync.Mutex
	err := Parallel(len(labels), len(labels), func(i int) error {
		shardKeys := byShard[labels[i]]
		reps := k.Shards.GroupReplicas(labels[i])
		if len(reps) == 0 {
			return noShards(k.Shards)
		}
		var resp kv.MGetResp
		var callErr error
		for _, rep := range reps {
			resp = kv.MGetResp{}
			if callErr = rep.Call(ctx, "MGet", kv.MGetReq{Keys: shardKeys}, &resp); callErr == nil {
				break
			}
		}
		if callErr != nil {
			return callErr
		}
		mu.Lock()
		for j, key := range shardKeys {
			if j < len(resp.Found) && resp.Found[j] {
				out[key] = resp.Values[j]
			}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- DB (document-store tier) ---

func (d DB) shardedPut(ctx context.Context, collection string, doc docstore.Doc) error {
	reps := d.Shards.Route(doc.ID)
	if len(reps) == 0 {
		return noShards(d.Shards)
	}
	return writeAll(reps, func(rep *shard.Replica) error {
		return rep.Call(ctx, "Put", docstore.PutReq{Collection: collection, Doc: doc}, nil)
	})
}

func (d DB) shardedGet(ctx context.Context, collection, id string) (docstore.Doc, bool, error) {
	reps := d.Shards.Route(id)
	if len(reps) == 0 {
		return docstore.Doc{}, false, noShards(d.Shards)
	}
	var missed []*shard.Replica
	var lastErr error
	for _, rep := range reps {
		var resp docstore.GetResp
		if err := rep.Call(ctx, "Get", docstore.GetReq{Collection: collection, ID: id}, &resp); err != nil {
			lastErr = err
			continue
		}
		if !resp.Found {
			missed = append(missed, rep)
			continue
		}
		for _, m := range missed {
			m.Call(ctx, "Put", docstore.PutReq{Collection: collection, Doc: resp.Doc}, nil) //nolint:errcheck
		}
		return resp.Doc, true, nil
	}
	if len(missed) > 0 {
		return docstore.Doc{}, false, nil
	}
	return docstore.Doc{}, false, lastErr
}

func (d DB) shardedDocDelete(ctx context.Context, collection, id string) (bool, error) {
	reps := d.Shards.Route(id)
	if len(reps) == 0 {
		return false, noShards(d.Shards)
	}
	existed := false
	err := writeAll(reps, func(rep *shard.Replica) error {
		var resp docstore.DeleteResp
		if err := rep.Call(ctx, "Delete", docstore.DeleteReq{Collection: collection, ID: id}, &resp); err != nil {
			return err
		}
		if resp.Existed {
			existed = true
		}
		return nil
	})
	return existed, err
}

func (d DB) shardedListPrepend(ctx context.Context, collection, id, value string, max int, unique bool) (int, error) {
	reps := d.Shards.Route(id)
	if len(reps) == 0 {
		return 0, noShards(d.Shards)
	}
	length := 0
	got := false
	err := writeAll(reps, func(rep *shard.Replica) error {
		var resp docstore.ListPrependResp
		req := docstore.ListPrependReq{Collection: collection, ID: id, Value: value, Cap: int64(max), Unique: unique}
		if err := rep.Call(ctx, "ListPrepend", req, &resp); err != nil {
			return err
		}
		if !got {
			length, got = int(resp.Len), true
		}
		return nil
	})
	return length, err
}

// scatterFind fans one query out per live shard (with per-shard replica
// fallback) and concatenates the result sets. A document lives on exactly
// one shard — Put routes by ID — so the union has no duplicates; ordering
// and the global limit are reapplied by the caller.
func (d DB) scatterFind(ctx context.Context, method string, req any) ([]docstore.Doc, error) {
	sets := d.Shards.Scatter()
	if len(sets) == 0 {
		return nil, noShards(d.Shards)
	}
	var mu sync.Mutex
	var docs []docstore.Doc
	err := Parallel(len(sets), len(sets), func(i int) error {
		var resp docstore.FindResp
		var callErr error
		for _, rep := range sets[i] {
			resp = docstore.FindResp{}
			if callErr = rep.Call(ctx, method, req, &resp); callErr == nil {
				break
			}
		}
		if callErr != nil {
			return callErr
		}
		mu.Lock()
		docs = append(docs, resp.Docs...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return docs, nil
}

func (d DB) shardedFind(ctx context.Context, collection, field, value string, limit int) ([]docstore.Doc, error) {
	req := docstore.FindReq{Collection: collection, Field: field, Value: value, Limit: int64(limit)}
	docs, err := d.scatterFind(ctx, "Find", req)
	if err != nil {
		return nil, err
	}
	// Each shard returned its own top-limit sorted by ID; merge preserves
	// the single-store contract (ID ascending, then the global limit).
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	if limit > 0 && len(docs) > limit {
		docs = docs[:limit]
	}
	return docs, nil
}

func (d DB) shardedFindRange(ctx context.Context, collection, field string, min, max int64, limit int) ([]docstore.Doc, error) {
	req := docstore.FindRangeReq{Collection: collection, Field: field, Min: min, Max: max, Limit: int64(limit)}
	docs, err := d.scatterFind(ctx, "FindRange", req)
	if err != nil {
		return nil, err
	}
	// Newest-first across shards; ID descending breaks timestamp ties
	// deterministically regardless of shard interleaving.
	sort.Slice(docs, func(i, j int) bool {
		vi, vj := docs[i].Nums[field], docs[j].Nums[field]
		if vi != vj {
			return vi > vj
		}
		return docs[i].ID > docs[j].ID
	})
	if limit > 0 && len(docs) > limit {
		docs = docs[:limit]
	}
	return docs, nil
}
