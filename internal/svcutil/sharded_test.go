package svcutil_test

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rpc"
	"dsb/internal/shard"
	"dsb/internal/svcutil"
)

// bootKVShards starts a sharded kv tier on a fresh app and returns the
// routing client. Each (shard, replica) pair gets its own Cache — the
// replicas are converged only by write-all and read-repair.
func bootKVShards(t *testing.T, shards, replicas int) (*core.App, svcutil.KV) {
	t.Helper()
	app := core.NewApp("shardtest", core.Options{DisableTracing: true})
	t.Cleanup(func() { app.Close() })
	err := svcutil.StartShardReplicas(app, "store.kv", shards, replicas, func(s, r int) func(*rpc.Server) {
		return func(srv *rpc.Server) { kv.RegisterService(srv, kv.New(1<<20)) }
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := app.ShardedRPC("client", "store.kv")
	if err != nil {
		t.Fatal(err)
	}
	return app, svcutil.KV{Shards: router}
}

// TestStartShardReplicasAttachesMetadata is the registration contract:
// every instance of a sharded tier must carry its shard index in registry
// metadata, or routers cannot tell the service's replicas apart.
func TestStartShardReplicasAttachesMetadata(t *testing.T) {
	app, _ := bootKVShards(t, 3, 2)
	counts := make(map[string]int)
	for _, inst := range app.Registry.Instances("store.kv") {
		label, ok := inst.Meta[shard.MetaShard]
		if !ok {
			t.Fatalf("instance %s registered without a shard label", inst.Addr)
		}
		counts[label]++
	}
	for s := 0; s < 3; s++ {
		if got := counts[strconv.Itoa(s)]; got != 2 {
			t.Fatalf("shard %d has %d registered replicas, want 2", s, got)
		}
	}
}

// TestShardedKVRoundTrip exercises write-all/read-one across shards: every
// key set through the client must come back, and keys must actually spread
// over more than one shard.
func TestShardedKVRoundTrip(t *testing.T) {
	_, store := bootKVShards(t, 4, 2)
	ctx := context.Background()
	owners := make(map[string]bool)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := store.Set(ctx, key, []byte("v-"+key), 0); err != nil {
			t.Fatal(err)
		}
		owners[store.Shards.Owner(key)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("64 keys landed on %d shards, want spread", len(owners))
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, found, err := store.Get(ctx, key)
		if err != nil || !found || string(v) != "v-"+key {
			t.Fatalf("Get(%s) = %q, %v, %v", key, v, found, err)
		}
	}
	if err := store.Delete(ctx, "key-0"); err != nil {
		t.Fatal(err)
	}
	if _, found, err := store.Get(ctx, "key-0"); err != nil || found {
		t.Fatalf("deleted key still found (err=%v)", err)
	}
	if n, err := store.Incr(ctx, "ctr", 5); err != nil || n != 5 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	if n, err := store.Incr(ctx, "ctr", 2); err != nil || n != 7 {
		t.Fatalf("Incr = %d, %v (replicas diverged?)", n, err)
	}
}

// TestShardedKVReadRepair wipes a key from one replica directly (a replica
// restarted empty) and checks that reads keep succeeding via the sibling
// and that the wiped replica is repaired with a bounded TTL.
func TestShardedKVReadRepair(t *testing.T) {
	app, store := bootKVShards(t, 1, 2)
	ctx := context.Background()
	if err := store.Set(ctx, "hot", []byte("value"), 0); err != nil {
		t.Fatal(err)
	}

	stats := store.Shards.Stats()
	if len(stats) != 2 {
		t.Fatalf("want 2 replicas, got %v", stats)
	}
	wiped := stats[1].Addr
	direct := rpc.NewClient(app.Net, "store.kv", wiped)
	defer direct.Close()
	var del kv.DeleteResp
	if err := direct.Call(ctx, "Delete", kv.DeleteReq{Key: "hot"}, &del); err != nil || !del.Existed {
		t.Fatalf("direct delete: %v existed=%v", err, del.Existed)
	}

	// Enough reads to rotate the read head across both replicas: each must
	// find the value, with the wiped replica served by sibling fallback.
	for i := 0; i < 4; i++ {
		v, found, err := store.Get(ctx, "hot")
		if err != nil || !found || string(v) != "value" {
			t.Fatalf("read %d after wipe: %q, %v, %v", i, v, found, err)
		}
	}
	// Read-repair restored the entry on the wiped replica.
	var resp kv.GetResp
	if err := direct.Call(ctx, "Get", kv.GetReq{Key: "hot"}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || string(resp.Value) != "value" {
		t.Fatalf("wiped replica not repaired: %q, found=%v", resp.Value, resp.Found)
	}
}

// TestShardedKVMGet checks the batch path groups by owning shard and
// returns exactly the found subset.
func TestShardedKVMGet(t *testing.T) {
	_, store := bootKVShards(t, 4, 1)
	ctx := context.Background()
	var keys []string
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("mk-%d", i)
		keys = append(keys, key)
		if err := store.Set(ctx, key, []byte("v-"+key), 0); err != nil {
			t.Fatal(err)
		}
	}
	keys = append(keys, "absent-1", "absent-2")
	got, err := store.MGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("MGet returned %d entries, want 32", len(got))
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("mk-%d", i)
		if string(got[key]) != "v-"+key {
			t.Fatalf("MGet[%s] = %q", key, got[key])
		}
	}
	if _, ok := got["absent-1"]; ok {
		t.Fatal("MGet returned a missing key")
	}
}

// TestShardedDB exercises the docstore policies: point ops route by ID,
// Find/FindRange scatter to every shard and merge with the single-store
// ordering contract, ListPrepend applies to the whole replica set.
func TestShardedDB(t *testing.T) {
	app := core.NewApp("shardtest", core.Options{DisableTracing: true})
	t.Cleanup(func() { app.Close() })
	err := svcutil.StartShardReplicas(app, "store.db", 3, 2, func(s, r int) func(*rpc.Server) {
		return func(srv *rpc.Server) { docstore.RegisterService(srv, docstore.NewStore()) }
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := app.ShardedRPC("client", "store.db")
	if err != nil {
		t.Fatal(err)
	}
	db := svcutil.DB{Shards: router}
	ctx := context.Background()

	for i := 0; i < 30; i++ {
		doc := docstore.Doc{
			ID:     fmt.Sprintf("doc-%02d", i),
			Fields: map[string]string{"author": "u" + strconv.Itoa(i%3)},
			Nums:   map[string]int64{"ts": int64(1000 + i)},
			Body:   []byte(fmt.Sprintf("body-%d", i)),
		}
		if err := db.Put(ctx, "posts", doc); err != nil {
			t.Fatal(err)
		}
	}

	doc, found, err := db.Get(ctx, "posts", "doc-07")
	if err != nil || !found || string(doc.Body) != "body-7" {
		t.Fatalf("Get = %+v, %v, %v", doc, found, err)
	}

	// Find merges across shards sorted by ID ascending, limit applied
	// globally: u0 authors docs 0,3,6,...,27 — ten in all.
	docs, err := db.Find(ctx, "posts", "author", "u0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("Find limit: got %d docs", len(docs))
	}
	want := []string{"doc-00", "doc-03", "doc-06", "doc-09"}
	for i, d := range docs {
		if d.ID != want[i] {
			t.Fatalf("Find order: got %s at %d, want %s", d.ID, i, want[i])
		}
	}

	// FindRange merges newest-first.
	docs, err = db.FindRange(ctx, "posts", "ts", 1020, 1029, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("FindRange: got %d docs", len(docs))
	}
	for i, d := range docs {
		if wantID := fmt.Sprintf("doc-%02d", 29-i); d.ID != wantID {
			t.Fatalf("FindRange order: got %s at %d, want %s", d.ID, i, wantID)
		}
	}

	if n, err := db.ListPrepend(ctx, "timelines", "u0", "doc-29", 10); err != nil || n != 1 {
		t.Fatalf("ListPrepend = %d, %v", n, err)
	}
	if n, err := db.ListPrepend(ctx, "timelines", "u0", "doc-28", 10); err != nil || n != 2 {
		t.Fatalf("ListPrepend = %d, %v", n, err)
	}

	if existed, err := db.Delete(ctx, "posts", "doc-07"); err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if _, found, err := db.Get(ctx, "posts", "doc-07"); err != nil || found {
		t.Fatalf("deleted doc still found (err=%v)", err)
	}
}

// TestShardedKVLeaseFailover kills one replica of a leased tier and checks
// the client keeps serving: before eviction, reads that land on the dead
// head fall back to the sibling; after lease expiry the ring re-forms and
// routes around the corpse entirely.
func TestShardedKVLeaseFailover(t *testing.T) {
	const ttl = 80 * time.Millisecond
	app := core.NewApp("shardtest", core.Options{DisableTracing: true, LeaseTTL: ttl})
	t.Cleanup(func() { app.Close() })
	err := svcutil.StartShardReplicas(app, "store.kv", 2, 2, func(s, r int) func(*rpc.Server) {
		return func(srv *rpc.Server) { kv.RegisterService(srv, kv.New(1<<20)) }
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := app.ShardedRPC("client", "store.kv")
	if err != nil {
		t.Fatal(err)
	}
	store := svcutil.KV{Shards: router}
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if err := store.Set(ctx, fmt.Sprintf("key-%d", i), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}

	// Crash the first replica of shard 0: it stops heartbeating and hangs.
	victim := router.GroupReplicas("0")[0].Addr()
	for _, inst := range app.Instances("store.kv") {
		if inst.Addr == victim {
			inst.Kill()
		}
	}

	// Until eviction, calls that pick the corpse hang to their deadline and
	// fall back to the live sibling — reads still succeed, just slower.
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	_, _, _ = store.Get(shortCtx, "key-0") //nolint:errcheck // warms nothing; may hit either replica
	cancel()

	// After one TTL the registry evicts the corpse and the router drops it.
	deadline := time.Now().Add(ttl + 200*time.Millisecond)
	for {
		if len(router.GroupReplicas("0")) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still routes to killed replica: %v", router.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, found, err := store.Get(ctx, key); err != nil || !found {
			t.Fatalf("post-eviction Get(%s): found=%v err=%v", key, found, err)
		}
	}
}
