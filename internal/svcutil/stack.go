package svcutil

import (
	"context"
	"time"

	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/lb"
	"dsb/internal/mq"
	"dsb/internal/rpc"
	"dsb/internal/shard"
	"dsb/internal/transport"
)

// AppWiring is the slice of the composition root (core.App) that the shared
// service wiring drives: booting replicas, booting shard replicas, and
// building load-balanced or shard-routed clients. Declared here so svcutil
// never imports core.
type AppWiring interface {
	RPCStarter
	ShardStarter
	RPC(caller, target string, extra ...transport.Middleware) (*lb.Balanced, error)
	ShardedRPC(caller, target string, extra ...transport.Middleware) (*shard.Router, error)
}

// Definer is the slice of controlplane.AppSpawner that a Stack can route
// stateless-tier boots through: Define records how to build an instance of a
// service, Spawn starts one. Tiers booted this way are visible to the
// autoscaling controller, which can add and remove instances at runtime.
// Only index-independent registrations may go through a Definer — every
// spawned instance runs the same registration function.
type Definer interface {
	Define(service string, register func(*rpc.Server))
	Spawn(service string) (addr string, err error)
}

// Stack is the shared deployment wiring every application in the suite boots
// through. It holds the knobs that used to be copy-pasted into each app's
// constructor — shard/replica counts for the storage tiers, cache sizing,
// per-wire middleware, static replica counts for stateless tiers — and
// exposes the small vocabulary the constructors are written in: StartStores /
// StartCaches for the stateful tiers, Start / StartN for logic tiers, and
// Caller / DB / KV for clients that transparently pick load-balanced or
// shard-routed mode to match the layout.
type Stack struct {
	// App is the composition root (*core.App satisfies this).
	App AppWiring
	// Prefix namespaces every service this stack boots ("social.", "media.").
	Prefix string
	// Shards partitions every store/cache tier into this many consistent-hash
	// shards (default 1 = single-instance layout).
	Shards int
	// ShardReplicas is the replica count per storage shard (default 1).
	// Replicas converge by write-all and read-repair (see sharded.go).
	ShardReplicas int
	// CacheBytes bounds each cache tier booted by StartCaches (0 = unbounded).
	CacheBytes int64
	// Middleware is installed on every inter-tier client wire.
	Middleware []transport.Middleware
	// Replicable names the logic tiers safe to run multi-instance (state
	// external or derived per replica). Tiers absent from the set always boot
	// exactly one replica regardless of Replicas.
	Replicable map[string]bool
	// Replicas scales replicable tiers out at boot, keyed by tier name.
	Replicas map[string]int
	// BrokerShards partitions the broker tier booted by StartBroker into this
	// many consistent-hash shards — topics are partitioned by message key, so
	// one hot topic spreads across all of them (default 1 = single instance).
	BrokerShards int
	// BrokerReplicas is the replica count per broker shard (default 1).
	// Above 1, every publish is mirrored to the shard's other replicas before
	// it is acked, so un-acked messages survive a broker crash.
	BrokerReplicas int
	// Spawner, when set, receives every index-independent replicable tier
	// boot via Define+Spawn so the control plane can autoscale those tiers.
	Spawner Definer

	boot []func() error
}

func (st *Stack) shape() (shards, replicas int) {
	shards, replicas = st.Shards, st.ShardReplicas
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	return shards, replicas
}

// Sharded reports whether the storage tiers run in the sharded layout.
func (st *Stack) Sharded() bool {
	shards, replicas := st.shape()
	return shards > 1 || replicas > 1
}

// Name returns the fully-qualified service name for a tier.
func (st *Stack) Name(tier string) string { return st.Prefix + tier }

// StartStores boots one document-store tier per name. In the sharded layout
// each tier becomes Shards×ShardReplicas instances under the same service
// name, every (shard, replica) pair owning a *fresh* store — replicas
// converge only through write-all and read-repair — with the shard index in
// registry metadata for the routers. Otherwise each tier is one instance.
func (st *Stack) StartStores(names ...string) error {
	shards, replicas := st.shape()
	for _, name := range names {
		if st.Sharded() {
			err := StartShardReplicas(st.App, st.Name(name), shards, replicas, func(int, int) func(*rpc.Server) {
				store := docstore.NewStore()
				return func(s *rpc.Server) { docstore.RegisterService(s, store) }
			})
			if err != nil {
				return err
			}
			continue
		}
		store := docstore.NewStore()
		if _, err := st.App.StartRPC(st.Name(name), func(s *rpc.Server) {
			docstore.RegisterService(s, store)
		}); err != nil {
			return err
		}
	}
	return nil
}

// StartCaches boots one kv cache tier per name, sharded exactly like
// StartStores when the stack runs the sharded layout.
func (st *Stack) StartCaches(names ...string) error {
	shards, replicas := st.shape()
	for _, name := range names {
		if st.Sharded() {
			err := StartShardReplicas(st.App, st.Name(name), shards, replicas, func(int, int) func(*rpc.Server) {
				cache := kv.New(st.CacheBytes)
				return func(s *rpc.Server) { kv.RegisterService(s, cache) }
			})
			if err != nil {
				return err
			}
			continue
		}
		cache := kv.New(st.CacheBytes)
		if _, err := st.App.StartRPC(st.Name(name), func(s *rpc.Server) {
			kv.RegisterService(s, cache)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (st *Stack) brokerShape() (shards, replicas int) {
	shards, replicas = st.BrokerShards, st.BrokerReplicas
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	return shards, replicas
}

// BrokerSharded reports whether the broker tier runs partitioned/replicated.
func (st *Stack) BrokerSharded() bool {
	shards, replicas := st.brokerShape()
	return shards > 1 || replicas > 1
}

// StartBroker queues a message-broker tier for boot, serving the mq RPC
// interface under the stack's prefix: one instance by default, or
// BrokerShards×BrokerReplicas instances under shard.MetaShard labels —
// topics partitioned by message key across shards, each shard's group
// queues mirrored across its replicas (see mq.Partitioned for the
// publish/mirror/failover contract). configure — where topics are declared
// and consumer groups subscribed — runs per broker instance at boot time,
// before any producer or consumer tier starts; running it on every
// instance is what lets mirrors accept copies for the same groups their
// primaries fan out to. The returned Cluster is the composition root's
// white-box handle (aggregate lag, drain loops); instances register on it
// as they boot.
func (st *Stack) StartBroker(name string, configure func(*mq.Broker)) *mq.Cluster {
	cluster := mq.NewCluster()
	shards, replicas := st.brokerShape()
	if !st.BrokerSharded() {
		broker := mq.NewBroker()
		cluster.Add(broker)
		st.boot = append(st.boot, func() error {
			if configure != nil {
				configure(broker)
			}
			_, err := st.App.StartRPC(st.Name(name), func(s *rpc.Server) {
				mq.RegisterService(s, broker)
			})
			return err
		})
		return cluster
	}
	st.boot = append(st.boot, func() error {
		return StartShardReplicas(st.App, st.Name(name), shards, replicas, func(int, int) func(*rpc.Server) {
			broker := mq.NewBroker()
			if configure != nil {
				configure(broker)
			}
			cluster.Add(broker)
			return func(s *rpc.Server) { mq.RegisterService(s, broker) }
		})
	})
	return cluster
}

// MQ builds a typed broker client from one tier to the broker tier, in
// whichever mode the deployment runs: a single-instance Client, or a
// Partitioned client over the broker shard router. Acks ride the one-way
// fast path automatically when the underlying wire supports it.
func (st *Stack) MQ(caller, target string) mq.Bus {
	if !st.BrokerSharded() {
		return mq.Client{C: st.Caller(caller, target)}
	}
	router, err := st.App.ShardedRPC(st.Name(caller), st.Name(target), st.Middleware...)
	if err != nil {
		panic(err)
	}
	return mq.NewPartitioned(router)
}

// Caller builds a load-balanced client from one tier to another. Wiring
// errors panic: they are deterministic composition bugs (a typo'd service
// name), not runtime conditions, and every constructor treated them that way
// before the extraction.
func (st *Stack) Caller(caller, target string) Caller {
	c, err := st.App.RPC(st.Name(caller), st.Name(target), st.Middleware...)
	if err != nil {
		panic(err)
	}
	return c
}

// DB wires a service to a document-store tier in whichever mode the
// deployment runs: a load-balanced caller for the single-instance layout, a
// consistent-hash shard router for the sharded one. The typed client keeps
// one method surface either way, so services never know which layout they
// run on.
func (st *Stack) DB(caller, target string) DB {
	if !st.Sharded() {
		return DB{C: st.Caller(caller, target)}
	}
	router, err := st.App.ShardedRPC(st.Name(caller), st.Name(target), st.Middleware...)
	if err != nil {
		panic(err)
	}
	return DB{Shards: router}
}

// KV is the cache-tier counterpart of DB.
func (st *Stack) KV(caller, target string) KV {
	if !st.Sharded() {
		return KV{C: st.Caller(caller, target)}
	}
	router, err := st.App.ShardedRPC(st.Name(caller), st.Name(target), st.Middleware...)
	if err != nil {
		panic(err)
	}
	return KV{Shards: router}
}

// StartN queues a logic tier for boot with per-replica registration (the
// replica index feeds identity derivation, e.g. unique-ID worker numbers).
// The replica count is Replicas[name] when the tier is in Replicable, else 1.
// Index-dependent tiers never route through the Spawner — spawned instances
// cannot carry distinct identity.
func (st *Stack) StartN(name string, register func(i int) func(*rpc.Server)) {
	n := st.replicaCount(name)
	st.boot = append(st.boot, func() error {
		return StartReplicas(st.App, st.Name(name), n, register)
	})
}

// Start queues an index-independent logic tier for boot. When a Spawner is
// configured and the tier is replicable, the registration is Defined there
// and each boot replica Spawned, so the control plane can scale the tier.
func (st *Stack) Start(name string, register func(*rpc.Server)) {
	n := st.replicaCount(name)
	full := st.Name(name)
	if st.Spawner != nil && st.Replicable[name] {
		st.boot = append(st.boot, func() error {
			st.Spawner.Define(full, register)
			for i := 0; i < n; i++ {
				if _, err := st.Spawner.Spawn(full); err != nil {
					return err
				}
			}
			return nil
		})
		return
	}
	st.boot = append(st.boot, func() error {
		return StartReplicas(st.App, full, n, func(int) func(*rpc.Server) { return register })
	})
}

func (st *Stack) replicaCount(name string) int {
	n := 1
	if st.Replicable[name] {
		if r := st.Replicas[name]; r > n {
			n = r
		}
	}
	return n
}

// Boot runs the queued tier boots in the order they were declared (the
// declaration order must respect the dependency graph so every client
// resolves) and clears the queue.
func (st *Stack) Boot() error {
	for _, b := range st.boot {
		if err := b(); err != nil {
			return err
		}
	}
	st.boot = nil
	return nil
}

// NonCriticalBudget bounds each call to a degradable downstream when
// graceful degradation is enabled. Without a bound, a *partitioned* (as
// opposed to fast-failing) tier would hang the call until the request's
// whole deadline expired, so the degraded fallback would always arrive too
// late for the caller; with it, a hung hop costs at most this much before
// the fallback is served. Normal in-process calls finish in microseconds,
// so the budget only bites when the hop is genuinely sick.
const NonCriticalBudget = 40 * time.Millisecond

// CallBounded invokes a degradable downstream under NonCriticalBudget when
// degrade is on, and transparently when it is off (fail-hard mode keeps the
// caller's full deadline semantics).
func CallBounded(ctx context.Context, degrade bool, c Caller, method string, req, resp any) error {
	if !degrade {
		return c.Call(ctx, method, req, resp)
	}
	bctx, cancel := context.WithTimeout(ctx, NonCriticalBudget)
	defer cancel()
	return c.Call(bctx, method, req, resp)
}
