// Package svcutil carries the small amount of shared plumbing the
// application services use: typed RPC handler registration (the hand-written
// half of what Thrift would generate) and typed clients for the cache and
// document-store tiers.
package svcutil

import (
	"context"
	"time"

	"dsb/internal/codec"
	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rpc"
	"dsb/internal/shard"
	"dsb/internal/transport"
)

// Caller is the client surface services use to talk to a downstream tier;
// both *rpc.Client and *lb.Balanced satisfy it. The definition now lives in
// internal/transport, shared by every layer; this alias keeps the services'
// historical import path working.
type Caller = transport.Caller

// RPCStarter is the slice of core.App that boots replicas; declared here so
// svcutil does not import the composition root.
type RPCStarter interface {
	StartRPC(service string, register func(*rpc.Server)) (string, error)
}

// StartReplicas boots n interchangeable replicas of one *stateless*
// service tier, calling register(i) to build each replica's registration
// function — replicas that need distinct worker identity (a unique-ID
// worker number) derive it from i. n < 1 starts one replica. The replicas
// register without instance metadata, so balancers treat them as one
// anonymous pool; a tier holding per-instance state booted this way would
// silently scatter it across replicas with nothing to route by. Stateful
// tiers go through StartShardReplicas instead, which attaches each
// replica's shard index to its registry entry so shard routers can group
// the pool into replica sets.
func StartReplicas(app RPCStarter, service string, n int, register func(i int) func(*rpc.Server)) error {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if _, err := app.StartRPC(service, register(i)); err != nil {
			return err
		}
	}
	return nil
}

// Handle registers a typed handler: the payload is decoded into Req, and
// the returned Resp is encoded as the reply. A nil Resp sends an empty
// reply body. Replies encode into a pooled buffer that the RPC dispatcher
// recycles once the reply frame is written, so a typed handler's encode
// path allocates nothing for registered (codecgen) response types.
func Handle[Req, Resp any](srv *rpc.Server, method string, fn func(ctx *rpc.Ctx, req *Req) (*Resp, error)) {
	srv.Handle(method, func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		var req Req
		if len(payload) > 0 {
			if err := codec.Unmarshal(payload, &req); err != nil {
				return nil, rpc.Errorf(rpc.CodeBadRequest, "%s.%s: decode: %v", ctx.Service, method, err)
			}
		}
		resp, err := fn(ctx, &req)
		if err != nil {
			return nil, err
		}
		if resp == nil {
			return nil, nil
		}
		if _, ok := any(resp).(codec.Message); ok {
			// Registered type: the pointer dispatches straight to its
			// generated marshaler (same bytes as the value encoding, no
			// interface boxing).
			return ctx.PooledReply(resp)
		}
		// Unregistered type: encode the value, not the pointer — a pointer
		// would take the reflect pointer plan and grow a nil-flag byte.
		return ctx.PooledReply(*resp)
	})
}

// KV is a typed client for a cache tier exposed via kv.RegisterService.
// It runs in one of two modes: with C set, every call goes to that single
// (possibly load-balanced) backend, the original wrapper behavior; with
// Shards set, keys route through the consistent-hash ring to the owning
// replica set with read-one/write-all semantics and read-repair on
// fallback (see sharded.go). Exactly one of C and Shards should be set.
type KV struct {
	C      Caller
	Shards *shard.Router
}

// Get fetches a key; found is false on miss.
func (k KV) Get(ctx context.Context, key string) (value []byte, found bool, err error) {
	if k.Shards != nil {
		return k.shardedGet(ctx, key)
	}
	var resp kv.GetResp
	if err := k.C.Call(ctx, "Get", kv.GetReq{Key: key}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// Set stores a key with a TTL (0 = no expiry).
func (k KV) Set(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	if k.Shards != nil {
		return k.shardedSet(ctx, key, value, ttl)
	}
	return k.C.Call(ctx, "Set", kv.SetReq{Key: key, Value: value, TTLNs: int64(ttl)}, nil)
}

// Delete removes a key (cache invalidation).
func (k KV) Delete(ctx context.Context, key string) error {
	if k.Shards != nil {
		return k.shardedDelete(ctx, key)
	}
	var resp kv.DeleteResp
	return k.C.Call(ctx, "Delete", kv.DeleteReq{Key: key}, &resp)
}

// Incr adjusts a counter and returns the new value.
func (k KV) Incr(ctx context.Context, key string, delta int64) (int64, error) {
	if k.Shards != nil {
		return k.shardedIncr(ctx, key, delta)
	}
	var resp kv.IncrResp
	if err := k.C.Call(ctx, "Incr", kv.IncrReq{Key: key, Delta: delta}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// DB is a typed client for a document-store tier exposed via
// docstore.RegisterService. Like KV it is dual-mode: C for the single
// backend path, Shards for consistent-hash routing with replica sets —
// point ops route by document ID, Find/FindRange scatter to every shard
// and merge (see sharded.go).
type DB struct {
	C      Caller
	Shards *shard.Router
}

// Put stores a document.
func (d DB) Put(ctx context.Context, collection string, doc docstore.Doc) error {
	if d.Shards != nil {
		return d.shardedPut(ctx, collection, doc)
	}
	return d.C.Call(ctx, "Put", docstore.PutReq{Collection: collection, Doc: doc}, nil)
}

// Get fetches a document by ID.
func (d DB) Get(ctx context.Context, collection, id string) (docstore.Doc, bool, error) {
	if d.Shards != nil {
		return d.shardedGet(ctx, collection, id)
	}
	var resp docstore.GetResp
	if err := d.C.Call(ctx, "Get", docstore.GetReq{Collection: collection, ID: id}, &resp); err != nil {
		return docstore.Doc{}, false, err
	}
	return resp.Doc, resp.Found, nil
}

// Find queries an indexed string field.
func (d DB) Find(ctx context.Context, collection, field, value string, limit int) ([]docstore.Doc, error) {
	if d.Shards != nil {
		return d.shardedFind(ctx, collection, field, value, limit)
	}
	var resp docstore.FindResp
	err := d.C.Call(ctx, "Find", docstore.FindReq{Collection: collection, Field: field, Value: value, Limit: int64(limit)}, &resp)
	return resp.Docs, err
}

// FindRange queries an indexed numeric field, newest-first.
func (d DB) FindRange(ctx context.Context, collection, field string, min, max int64, limit int) ([]docstore.Doc, error) {
	if d.Shards != nil {
		return d.shardedFindRange(ctx, collection, field, min, max, limit)
	}
	var resp docstore.FindResp
	err := d.C.Call(ctx, "FindRange", docstore.FindRangeReq{Collection: collection, Field: field, Min: min, Max: max, Limit: int64(limit)}, &resp)
	return resp.Docs, err
}

// Delete removes a document.
func (d DB) Delete(ctx context.Context, collection, id string) (bool, error) {
	if d.Shards != nil {
		return d.shardedDocDelete(ctx, collection, id)
	}
	var resp docstore.DeleteResp
	err := d.C.Call(ctx, "Delete", docstore.DeleteReq{Collection: collection, ID: id}, &resp)
	return resp.Existed, err
}
