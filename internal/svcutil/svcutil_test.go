package svcutil

import (
	"context"
	"testing"
	"time"

	"dsb/internal/docstore"
	"dsb/internal/kv"
	"dsb/internal/rpc"
)

type addReq struct{ A, B int64 }
type addResp struct{ Sum int64 }

func TestHandleTyped(t *testing.T) {
	n := rpc.NewMem()
	s := rpc.NewServer("math")
	Handle(s, "Add", func(ctx *rpc.Ctx, req *addReq) (*addResp, error) {
		return &addResp{Sum: req.A + req.B}, nil
	})
	Handle(s, "Nop", func(ctx *rpc.Ctx, req *struct{}) (*struct{}, error) {
		return nil, nil
	})
	Handle(s, "Fail", func(ctx *rpc.Ctx, req *addReq) (*addResp, error) {
		return nil, rpc.Errorf(rpc.CodeConflict, "nope")
	})
	addr, err := s.Start(n, "math:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := rpc.NewClient(n, "math", addr)
	defer c.Close()
	ctx := context.Background()

	var resp addResp
	if err := c.Call(ctx, "Add", addReq{A: 2, B: 3}, &resp); err != nil || resp.Sum != 5 {
		t.Fatalf("Add = %+v, %v", resp, err)
	}
	// Nil request payload decodes into the zero request.
	if err := c.Call(ctx, "Nop", nil, nil); err != nil {
		t.Fatalf("Nop: %v", err)
	}
	if err := c.Call(ctx, "Fail", addReq{}, nil); !rpc.IsCode(err, rpc.CodeConflict) {
		t.Fatalf("Fail: %v", err)
	}
	// Garbage payload produces a coded bad-request.
	if _, err := c.CallRaw(ctx, "Add", []byte{0xFF}); !rpc.IsCode(err, rpc.CodeBadRequest) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestKVAndDBWrappers(t *testing.T) {
	n := rpc.NewMem()

	kvSrv := rpc.NewServer("mc")
	kv.RegisterService(kvSrv, kv.New(0))
	kvAddr, err := kvSrv.Start(n, "mc:0")
	if err != nil {
		t.Fatal(err)
	}
	defer kvSrv.Close()

	dbSrv := rpc.NewServer("db")
	docstore.RegisterService(dbSrv, docstore.NewStore())
	dbAddr, err := dbSrv.Start(n, "db:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	ctx := context.Background()
	cache := KV{C: rpc.NewClient(n, "mc", kvAddr)}
	if err := cache.Set(ctx, "k", []byte("v"), time.Minute); err != nil {
		t.Fatal(err)
	}
	v, found, err := cache.Get(ctx, "k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, found, err)
	}
	if nVal, err := cache.Incr(ctx, "n", 7); err != nil || nVal != 7 {
		t.Fatalf("Incr = %d, %v", nVal, err)
	}
	if err := cache.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cache.Get(ctx, "k"); found {
		t.Fatal("deleted key found")
	}

	db := DB{C: rpc.NewClient(n, "db", dbAddr)}
	doc := docstore.Doc{ID: "d1", Fields: map[string]string{"f": "v"}, Nums: map[string]int64{"n": 5}, Body: []byte("b")}
	if err := db.Put(ctx, "c", doc); err != nil {
		t.Fatal(err)
	}
	got, found, err := db.Get(ctx, "c", "d1")
	if err != nil || !found || string(got.Body) != "b" {
		t.Fatalf("Get = %+v, %v, %v", got, found, err)
	}
	if docs, err := db.Find(ctx, "c", "f", "v", 10); err != nil || len(docs) != 1 {
		t.Fatalf("Find = %d, %v", len(docs), err)
	}
	if docs, err := db.FindRange(ctx, "c", "n", 0, 10, 10); err != nil || len(docs) != 1 {
		t.Fatalf("FindRange = %d, %v", len(docs), err)
	}
	existed, err := db.Delete(ctx, "c", "d1")
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
}
