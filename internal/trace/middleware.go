package trace

import (
	"context"
	"strconv"

	"dsb/internal/rest"
	"dsb/internal/rpc"
)

// ClientInterceptor instruments outgoing RPC and REST calls: it opens a
// client span as a child of the span in ctx, injects the span identity into
// the call headers, and records the client-observed duration (which
// includes network and kernel processing on both ends).
func ClientInterceptor(t *Tracer, service string) rpc.ClientInterceptor {
	return func(ctx context.Context, method string, headers map[string]string, invoke func(context.Context) error) error {
		parent, _ := FromContext(ctx)
		span := t.StartSpan(service, method, KindClient, parent)
		span.Context().Inject(headers)
		span.Annotate("payload", strconv.Itoa(len(headers))) // header count as a cheap size proxy
		err := invoke(NewContext(ctx, span.Context()))
		span.SetError(err)
		span.Finish()
		return err
	}
}

// ServerInterceptor instruments incoming RPC requests: it extracts the
// parent span from headers, opens a server span, and stores the span
// context in the request context so handlers' downstream calls nest
// underneath it.
func ServerInterceptor(t *Tracer) rpc.ServerInterceptor {
	return func(ctx *rpc.Ctx, payload []byte, next rpc.Handler) ([]byte, error) {
		parent, _ := Extract(ctx.Headers)
		span := t.StartSpan(ctx.Service, ctx.Method, KindServer, parent)
		if span != nil {
			ctx.Context = NewContext(ctx.Context, span.Context())
		}
		resp, err := next(ctx, payload)
		span.SetError(err)
		span.Finish()
		return resp, err
	}
}

// RESTServerInterceptor is ServerInterceptor for REST services.
func RESTServerInterceptor(t *Tracer) rest.Interceptor {
	return func(ctx *rest.Ctx, body []byte, next rest.Handler) (any, error) {
		headers := map[string]string{
			HeaderTrace: ctx.Header(HeaderTrace),
			HeaderSpan:  ctx.Header(HeaderSpan),
		}
		parent, _ := Extract(headers)
		op := ctx.Request.Method + " " + ctx.Request.URL.Path
		span := t.StartSpan(ctx.Service, op, KindServer, parent)
		if span != nil {
			ctx.Context = NewContext(ctx.Context, span.Context())
		}
		out, err := next(ctx, body)
		span.SetError(err)
		span.Finish()
		return out, err
	}
}
