package trace

import (
	"context"
	"strconv"

	"dsb/internal/rest"
	"dsb/internal/rpc"
	"dsb/internal/transport"
)

// ClientMiddleware instruments outgoing calls on the shared transport
// chain, for RPC and REST clients alike: it opens a client span as a child
// of the span in ctx, injects the span identity into the call headers, and
// records the client-observed duration (which includes network and kernel
// processing on both ends). The live span rides in the context, so inner
// middleware (retry, hedge, breaker) can annotate it.
func ClientMiddleware(t *Tracer, service string) transport.Middleware {
	return func(next transport.Invoker) transport.Invoker {
		return func(ctx context.Context, call *transport.Call) error {
			parent, _ := FromContext(ctx)
			span := t.StartSpan(service, call.Method, KindClient, parent)
			span.Context().Inject(call.HeaderMap())
			span.Annotate("payload", strconv.Itoa(len(call.Payload)))
			ctx = ContextWithSpan(NewContext(ctx, span.Context()), span)
			err := next(ctx, call)
			span.SetError(err)
			span.Finish()
			return err
		}
	}
}

// ServerInterceptor instruments incoming RPC requests: it extracts the
// parent span from headers, opens a server span, and stores the span (and
// its context) in the request context so handlers' downstream calls nest
// underneath it.
func ServerInterceptor(t *Tracer) rpc.ServerInterceptor {
	return func(ctx *rpc.Ctx, payload []byte, next rpc.Handler) ([]byte, error) {
		parent, _ := Extract(ctx.Headers)
		span := t.StartSpan(ctx.Service, ctx.Method, KindServer, parent)
		if span != nil {
			ctx.Context = ContextWithSpan(NewContext(ctx.Context, span.Context()), span)
		}
		resp, err := next(ctx, payload)
		span.SetError(err)
		span.Finish()
		return resp, err
	}
}

// RESTServerInterceptor is ServerInterceptor for REST services.
func RESTServerInterceptor(t *Tracer) rest.Interceptor {
	return func(ctx *rest.Ctx, body []byte, next rest.Handler) (any, error) {
		headers := map[string]string{
			HeaderTrace: ctx.Header(HeaderTrace),
			HeaderSpan:  ctx.Header(HeaderSpan),
		}
		parent, _ := Extract(headers)
		op := ctx.Request.Method + " " + ctx.Request.URL.Path
		span := t.StartSpan(ctx.Service, op, KindServer, parent)
		if span != nil {
			ctx.Context = ContextWithSpan(NewContext(ctx.Context, span.Context()), span)
		}
		out, err := next(ctx, body)
		span.SetError(err)
		span.Finish()
		return out, err
	}
}
