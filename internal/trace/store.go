package trace

import (
	"sort"
	"sync"
	"time"

	"dsb/internal/metrics"
)

// Collector receives finished spans asynchronously (like the Zipkin
// collector) and writes them to a Store. Submission never blocks request
// processing: if the buffer is full the span is dropped and counted, which
// keeps the tracing overhead on end-to-end latency negligible — the paper
// reports <0.1% and the overhead test asserts the same property.
type Collector struct {
	store   *Store
	ch      chan envelope
	dropped metrics.Counter
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  bool
}

// envelope carries either a span or a flush barrier.
type envelope struct {
	span Span
	sync chan struct{} // non-nil: flush barrier, close instead of storing
}

// NewCollector starts a collector feeding store.
func NewCollector(store *Store, buffer int) *Collector {
	if buffer <= 0 {
		buffer = 4096
	}
	c := &Collector{store: store, ch: make(chan envelope, buffer)}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for e := range c.ch {
			if e.sync != nil {
				close(e.sync)
				continue
			}
			store.add(e.span)
		}
	}()
	return c
}

// Submit enqueues a span, dropping it if the collector is saturated or
// already closed. Spans can legitimately finish during shutdown — an
// async consumer's in-flight call completing as the app tears down — so a
// late span counts as dropped rather than panicking the process.
func (c *Collector) Submit(s Span) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		c.dropped.Inc()
		return
	}
	select {
	case c.ch <- envelope{span: s}:
	default:
		c.dropped.Inc()
	}
}

// Flush blocks until every span submitted before the call has been written
// to the store, so callers can query traces mid-run.
func (c *Collector) Flush() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return
	}
	done := make(chan struct{})
	select {
	case c.ch <- envelope{sync: done}:
		<-done
	default:
		// Saturated; nothing stronger we can promise.
	}
}

// Dropped returns the number of spans lost to backpressure.
func (c *Collector) Dropped() int64 { return c.dropped.Value() }

// Close drains buffered spans into the store and stops the collector.
func (c *Collector) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Store is the centralized trace database. All methods are safe for
// concurrent use with ongoing collection.
type Store struct {
	mu     sync.Mutex
	traces map[TraceID][]Span
	order  []TraceID // insertion order of first span per trace
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{traces: make(map[TraceID][]Span)}
}

func (st *Store) add(s Span) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, seen := st.traces[s.TraceID]; !seen {
		st.order = append(st.order, s.TraceID)
	}
	st.traces[s.TraceID] = append(st.traces[s.TraceID], s)
}

// Len returns the number of traces stored.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.traces)
}

// TraceIDs returns trace IDs in arrival order.
func (st *Store) TraceIDs() []TraceID {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceID, len(st.order))
	copy(out, st.order)
	return out
}

// Spans returns a copy of the spans of one trace, sorted by start time.
func (st *Store) Spans(id TraceID) []Span {
	st.mu.Lock()
	spans := st.traces[id]
	out := make([]Span, len(spans))
	copy(out, spans)
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Node is a span with its resolved children, forming the request tree.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree assembles the span tree of a trace. Spans whose parent was dropped
// are attached to the root-most span. Returns nil for unknown traces.
func (st *Store) Tree(id TraceID) *Node {
	spans := st.Spans(id)
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[SpanID]*Node, len(spans))
	for _, s := range spans {
		nodes[s.SpanID] = &Node{Span: s}
	}
	var root *Node
	var orphans []*Node
	for _, n := range nodes {
		if n.Span.Parent == 0 {
			if root == nil || n.Span.Start.Before(root.Span.Start) {
				root = n
			}
			continue
		}
		if p, ok := nodes[n.Span.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			orphans = append(orphans, n)
		}
	}
	if root == nil {
		// All spans have missing parents (sampled tail); pick the earliest.
		earliest := spans[0]
		root = nodes[earliest.SpanID]
	}
	for _, o := range orphans {
		if o != root {
			root.Children = append(root.Children, o)
		}
	}
	sortTree(root)
	return root
}

func sortTree(n *Node) {
	sort.Slice(n.Children, func(i, j int) bool {
		return n.Children[i].Span.Start.Before(n.Children[j].Span.Start)
	})
	for _, c := range n.Children {
		sortTree(c)
	}
}

// ServiceLatencies aggregates server-span latencies per service across all
// traces, the store's equivalent of "per-microservice latency at RPC
// granularity".
func (st *Store) ServiceLatencies() map[string]*metrics.Histogram {
	st.mu.Lock()
	all := make([]Span, 0, 256)
	for _, spans := range st.traces {
		all = append(all, spans...)
	}
	st.mu.Unlock()
	out := make(map[string]*metrics.Histogram)
	for _, s := range all {
		if s.Kind != KindServer {
			continue
		}
		h, ok := out[s.Service]
		if !ok {
			h = metrics.NewHistogram()
			out[s.Service] = h
		}
		h.RecordDuration(s.Duration)
	}
	return out
}

// NetworkBreakdown computes, per service, total time spent in network
// processing vs application processing across all traces. For each
// client-span → child server-span pair, network time is the client-observed
// duration minus the server's processing time; the server time is
// application processing attributed to the callee service.
type NetworkBreakdown struct {
	Application time.Duration
	Network     time.Duration
}

// NetworkVsApplication aggregates the breakdown per callee service.
func (st *Store) NetworkVsApplication() map[string]NetworkBreakdown {
	st.mu.Lock()
	byTrace := make(map[TraceID][]Span, len(st.traces))
	for id, spans := range st.traces {
		cp := make([]Span, len(spans))
		copy(cp, spans)
		byTrace[id] = cp
	}
	st.mu.Unlock()

	out := make(map[string]NetworkBreakdown)
	for _, spans := range byTrace {
		servers := make(map[SpanID]Span) // parent (client span id) -> server span
		for _, s := range spans {
			if s.Kind == KindServer && s.Parent != 0 {
				servers[s.Parent] = s
			}
		}
		for _, s := range spans {
			if s.Kind != KindClient {
				continue
			}
			srv, ok := servers[s.SpanID]
			if !ok {
				continue
			}
			net := s.Duration - srv.Duration
			if net < 0 {
				net = 0
			}
			b := out[srv.Service]
			b.Network += net
			b.Application += srv.Duration
			out[srv.Service] = b
		}
	}
	return out
}

// CriticalPath returns the chain of spans that determines the end-to-end
// latency of a trace: starting from the root, repeatedly descend into the
// child whose finish time is latest. Used to identify which microservice
// is the bottleneck of a request.
func (st *Store) CriticalPath(id TraceID) []Span {
	root := st.Tree(id)
	if root == nil {
		return nil
	}
	var path []Span
	n := root
	for {
		path = append(path, n.Span)
		if len(n.Children) == 0 {
			return path
		}
		latest := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Span.Start.Add(c.Span.Duration).After(latest.Span.Start.Add(latest.Span.Duration)) {
				latest = c
			}
		}
		n = latest
	}
}

// Reset clears all stored traces.
func (st *Store) Reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.traces = make(map[TraceID][]Span)
	st.order = nil
}
