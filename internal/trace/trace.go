// Package trace implements the suite's distributed tracing system, the role
// Dapper/Zipkin play in DeathStarBench: every RPC and REST request is
// timestamped on arrival and departure at each microservice, spans carrying
// the same trace ID are associated into end-to-end request trees, and
// traces land in a centralized queryable store (the paper uses Cassandra;
// ours is an in-memory store with the same query surface).
//
// The convention is Dapper's: the caller opens a *client* span, propagates
// (trace ID, span ID) in message headers, and the callee opens a *server*
// span whose parent is the client span. The difference between a client
// span and its child server span is time spent in the network and kernel
// stack — the quantity Figures 3 and 15 of the paper are built from.
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies an end-to-end request.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Span kinds.
const (
	KindClient   = "client"
	KindServer   = "server"
	KindInternal = "internal"
)

// Header keys used for context propagation across RPC and REST hops.
const (
	HeaderTrace   = "dsb-trace"
	HeaderSpan    = "dsb-span"
	HeaderSampled = "dsb-sampled"
)

// Span is a finished span as recorded in the store.
type Span struct {
	TraceID   TraceID
	SpanID    SpanID
	Parent    SpanID // zero for root spans
	Service   string
	Operation string
	Kind      string
	Start     time.Time
	Duration  time.Duration
	Err       string
	// Annotations carry measurement tags, e.g. payload sizes.
	Annotations map[string]string
}

// SpanContext is the propagated identity of an in-flight span. Dropped
// reports the sampling decision made at the trace root: spans of a dropped
// trace keep propagating identity (so the decision survives every hop) but
// are never submitted to the collector.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Dropped bool
}

// Valid reports whether the context identifies a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Inject writes the span context into an outgoing header map.
func (sc SpanContext) Inject(headers map[string]string) {
	headers[HeaderTrace] = strconv.FormatUint(uint64(sc.TraceID), 16)
	headers[HeaderSpan] = strconv.FormatUint(uint64(sc.SpanID), 16)
	if sc.Dropped {
		headers[HeaderSampled] = "0"
	}
}

// Extract reads a span context from incoming headers.
func Extract(headers map[string]string) (SpanContext, bool) {
	t, ok := headers[HeaderTrace]
	if !ok {
		return SpanContext{}, false
	}
	s := headers[HeaderSpan]
	tid, err1 := strconv.ParseUint(t, 16, 64)
	sid, err2 := strconv.ParseUint(s, 16, 64)
	if err1 != nil || err2 != nil || tid == 0 {
		return SpanContext{}, false
	}
	return SpanContext{
		TraceID: TraceID(tid),
		SpanID:  SpanID(sid),
		Dropped: headers[HeaderSampled] == "0",
	}, true
}

type ctxKey struct{}

// NewContext returns ctx carrying sc, so nested calls become children.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the current span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying the live span itself (in addition to
// its propagated identity), so code deeper in the call path can annotate it
// — the resilience middlewares use this to tag spans with retry counts,
// hedge wins, and breaker rejections.
func ContextWithSpan(ctx context.Context, s *ActiveSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the live span in ctx, or nil.
func SpanFromContext(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(spanKey{}).(*ActiveSpan)
	return s
}

// Annotate tags the live span in ctx, if any. Its signature matches
// transport.AnnotateFunc so it can be wired straight into the resilience
// layer's config.
func Annotate(ctx context.Context, key, value string) {
	SpanFromContext(ctx).Annotate(key, value)
}

// Tracer creates spans and submits them to a collector. The zero value is
// unusable; use NewTracer. A nil *Tracer is a valid no-op tracer, so
// services can be wired with tracing disabled at zero cost.
type Tracer struct {
	collector   *Collector
	now         func() time.Time
	idBase      uint64
	idCounter   atomic.Uint64
	sampleMille uint32 // per-trace sampling rate in 1/1000ths (1000 = all)
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithClock injects a clock, used by tests and virtual-time experiments.
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// WithSampleRate keeps the given fraction of new traces (head-based
// sampling); the root's decision propagates to every downstream span. The
// default is 1.0 (trace everything), matching the paper's deployments.
func WithSampleRate(rate float64) TracerOption {
	return func(t *Tracer) {
		if rate < 0 {
			rate = 0
		}
		if rate > 1 {
			rate = 1
		}
		t.sampleMille = uint32(rate * 1000)
	}
}

// NewTracer returns a tracer feeding the given collector.
func NewTracer(c *Collector, opts ...TracerOption) *Tracer {
	t := &Tracer{collector: c, now: time.Now, idBase: rand.Uint64() | 1, sampleMille: 1000}
	for _, o := range opts {
		o(t)
	}
	return t
}

// nextID produces process-unique non-zero IDs without global locking.
func (t *Tracer) nextID() uint64 {
	// Mixing a per-process random base with a counter keeps IDs unique in
	// one process and collision-unlikely across processes.
	n := t.idCounter.Add(1)
	id := (t.idBase * 0x9E3779B97F4A7C15) ^ (n * 0xBF58476D1CE4E5B9)
	if id == 0 {
		id = 1
	}
	return id
}

// ActiveSpan is an in-flight span; Finish records it.
type ActiveSpan struct {
	tracer  *Tracer
	span    Span
	dropped bool
	mu      sync.Mutex
	done    bool
}

// StartSpan opens a span. If parent is invalid, a new trace is started and
// the tracer's sampling decision is made; spans of dropped traces still
// carry identity downstream but are never submitted.
func (t *Tracer) StartSpan(service, operation, kind string, parent SpanContext) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{tracer: t}
	s.span.Service = service
	s.span.Operation = operation
	s.span.Kind = kind
	s.span.Start = t.now()
	s.span.SpanID = SpanID(t.nextID())
	if parent.Valid() {
		s.span.TraceID = parent.TraceID
		s.span.Parent = parent.SpanID
		s.dropped = parent.Dropped
	} else {
		id := t.nextID()
		s.span.TraceID = TraceID(id)
		if t.sampleMille < 1000 {
			// Deterministic per-trace decision from the trace ID.
			s.dropped = uint32(id%1000) >= t.sampleMille
		}
	}
	return s
}

// Context returns the span's propagation identity. Safe on nil.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID, Dropped: s.dropped}
}

// Annotate attaches a key/value measurement tag. Safe on nil.
func (s *ActiveSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.span.Annotations == nil {
		s.span.Annotations = make(map[string]string, 4)
	}
	s.span.Annotations[key] = value
}

// SetError records an error on the span. Safe on nil.
func (s *ActiveSpan) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.span.Err = err.Error()
	s.mu.Unlock()
}

// Finish stamps the duration and submits the span. Idempotent; safe on nil.
func (s *ActiveSpan) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.span.Duration = s.tracer.now().Sub(s.span.Start)
	span := s.span
	dropped := s.dropped
	s.mu.Unlock()
	if !dropped {
		s.tracer.collector.Submit(span)
	}
}
