package trace

import (
	"context"
	"errors"
	"testing"
	"time"

	"dsb/internal/rpc"
)

// fixedClock is a controllable clock for deterministic span timing.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracer() (*Tracer, *Store, *Collector, *fixedClock) {
	clock := &fixedClock{t: time.Unix(1000, 0)}
	store := NewStore()
	col := NewCollector(store, 1024)
	tr := NewTracer(col, WithClock(clock.now))
	return tr, store, col, clock
}

func TestSpanLifecycle(t *testing.T) {
	tr, store, col, clock := newTestTracer()
	root := tr.StartSpan("frontend", "ComposePost", KindServer, SpanContext{})
	clock.advance(5 * time.Millisecond)
	child := tr.StartSpan("frontend", "text.Process", KindClient, root.Context())
	clock.advance(2 * time.Millisecond)
	child.Finish()
	clock.advance(time.Millisecond)
	root.Finish()
	col.Close()

	if store.Len() != 1 {
		t.Fatalf("traces = %d, want 1", store.Len())
	}
	id := store.TraceIDs()[0]
	spans := store.Spans(id)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Operation != "ComposePost" {
		t.Fatalf("spans not sorted by start: %v", spans[0].Operation)
	}
	if spans[0].Duration != 8*time.Millisecond {
		t.Fatalf("root duration = %v", spans[0].Duration)
	}
	if spans[1].Parent != spans[0].SpanID {
		t.Fatal("child not parented to root")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr, store, col, _ := newTestTracer()
	s := tr.StartSpan("svc", "op", KindServer, SpanContext{})
	s.Finish()
	s.Finish()
	col.Close()
	if got := len(store.Spans(store.TraceIDs()[0])); got != 1 {
		t.Fatalf("double finish recorded %d spans", got)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("svc", "op", KindServer, SpanContext{})
	s.Annotate("k", "v")
	s.SetError(errors.New("x"))
	if s.Context().Valid() {
		t.Fatal("nil tracer span context should be invalid")
	}
	s.Finish() // must not panic
}

func TestInjectExtract(t *testing.T) {
	sc := SpanContext{TraceID: 0xABCD, SpanID: 0x1234}
	h := map[string]string{}
	sc.Inject(h)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("Extract = %+v, %v", got, ok)
	}
	if _, ok := Extract(map[string]string{}); ok {
		t.Fatal("Extract on empty headers should fail")
	}
	if _, ok := Extract(map[string]string{HeaderTrace: "zz", HeaderSpan: "1"}); ok {
		t.Fatal("Extract on garbage should fail")
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 7, SpanID: 8}
	ctx := NewContext(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("FromContext on empty ctx should fail")
	}
}

func TestUniqueIDs(t *testing.T) {
	tr, _, col, _ := newTestTracer()
	defer col.Close()
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		s := tr.StartSpan("svc", "op", KindInternal, SpanContext{})
		if seen[s.Context().SpanID] {
			t.Fatalf("duplicate span id after %d spans", i)
		}
		seen[s.Context().SpanID] = true
	}
}

func TestTreeAssembly(t *testing.T) {
	tr, store, col, clock := newTestTracer()
	root := tr.StartSpan("nginx", "GET /", KindServer, SpanContext{})
	clock.advance(time.Millisecond)
	c1 := tr.StartSpan("nginx", "compose.Call", KindClient, root.Context())
	s1 := tr.StartSpan("compose", "Call", KindServer, c1.Context())
	clock.advance(2 * time.Millisecond)
	c2 := tr.StartSpan("compose", "store.Put", KindClient, s1.Context())
	s2 := tr.StartSpan("store", "Put", KindServer, c2.Context())
	clock.advance(3 * time.Millisecond)
	s2.Finish()
	c2.Finish()
	s1.Finish()
	c1.Finish()
	root.Finish()
	col.Close()

	tree := store.Tree(store.TraceIDs()[0])
	if tree == nil || tree.Span.Service != "nginx" || tree.Span.Kind != KindServer {
		t.Fatalf("bad root: %+v", tree)
	}
	if len(tree.Children) != 1 {
		t.Fatalf("root children = %d", len(tree.Children))
	}
	// nginx client -> compose server -> compose client -> store server
	depth := 0
	for n := tree; len(n.Children) > 0; n = n.Children[0] {
		depth++
	}
	if depth != 4 {
		t.Fatalf("tree depth = %d, want 4", depth)
	}
	if store.Tree(TraceID(999)) != nil {
		t.Fatal("unknown trace should return nil tree")
	}
}

func TestNetworkVsApplication(t *testing.T) {
	tr, store, col, clock := newTestTracer()
	// Client span lasts 10ms; nested server span lasts 6ms => 4ms network.
	c := tr.StartSpan("caller", "svc.Op", KindClient, SpanContext{})
	clock.advance(2 * time.Millisecond) // network out
	s := tr.StartSpan("svc", "Op", KindServer, c.Context())
	clock.advance(6 * time.Millisecond) // application
	s.Finish()
	clock.advance(2 * time.Millisecond) // network back
	c.Finish()
	col.Close()

	bd := store.NetworkVsApplication()
	got := bd["svc"]
	if got.Application != 6*time.Millisecond {
		t.Fatalf("app = %v", got.Application)
	}
	if got.Network != 4*time.Millisecond {
		t.Fatalf("net = %v", got.Network)
	}
}

func TestCriticalPath(t *testing.T) {
	tr, store, col, clock := newTestTracer()
	root := tr.StartSpan("fe", "Req", KindServer, SpanContext{})
	// Two parallel children: fast (1ms) and slow (5ms). Critical path must
	// pass through the slow one.
	fast := tr.StartSpan("fast", "F", KindServer, root.Context())
	slow := tr.StartSpan("slow", "S", KindServer, root.Context())
	clock.advance(time.Millisecond)
	fast.Finish()
	clock.advance(4 * time.Millisecond)
	slow.Finish()
	root.Finish()
	col.Close()

	path := store.CriticalPath(store.TraceIDs()[0])
	if len(path) != 2 {
		t.Fatalf("path len = %d", len(path))
	}
	if path[1].Service != "slow" {
		t.Fatalf("critical path chose %s", path[1].Service)
	}
	if store.CriticalPath(TraceID(12345)) != nil {
		t.Fatal("unknown trace critical path should be nil")
	}
}

func TestServiceLatencies(t *testing.T) {
	tr, store, col, clock := newTestTracer()
	for i := 0; i < 10; i++ {
		s := tr.StartSpan("svc", "Op", KindServer, SpanContext{})
		clock.advance(time.Millisecond)
		s.Finish()
		// Client spans are excluded from service latency.
		c := tr.StartSpan("svc", "Op", KindClient, SpanContext{})
		clock.advance(time.Millisecond)
		c.Finish()
	}
	col.Close()
	lat := store.ServiceLatencies()
	if lat["svc"].Count() != 10 {
		t.Fatalf("latency count = %d, want 10 (server spans only)", lat["svc"].Count())
	}
}

func TestCollectorDropsWhenSaturated(t *testing.T) {
	store := NewStore()
	col := NewCollector(store, 1)
	// Stall the store by submitting a burst without giving the drain
	// goroutine a chance; some spans must drop rather than block.
	for i := 0; i < 10000; i++ {
		col.Submit(Span{TraceID: TraceID(i + 1), SpanID: SpanID(i + 1)})
	}
	col.Close()
	if col.Dropped() == 0 {
		t.Log("no drops observed (drain kept up); acceptable but unusual")
	}
	if store.Len() == 0 {
		t.Fatal("store is empty")
	}
}

func TestStoreReset(t *testing.T) {
	_, store, col, _ := newTestTracer()
	col.Submit(Span{TraceID: 1, SpanID: 1})
	col.Close()
	store.Reset()
	if store.Len() != 0 || len(store.TraceIDs()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestRPCIntegration verifies spans flow across a real RPC boundary and the
// server span nests under the client span.
func TestRPCIntegration(t *testing.T) {
	store := NewStore()
	col := NewCollector(store, 1024)
	tr := NewTracer(col)

	n := rpc.NewMem()
	s := rpc.NewServer("backend")
	s.Use(ServerInterceptor(tr))
	s.Handle("Do", func(ctx *rpc.Ctx, payload []byte) ([]byte, error) {
		if _, ok := FromContext(ctx); !ok {
			t.Error("no span context inside handler")
		}
		return nil, nil
	})
	addr, err := s.Start(n, "backend:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := rpc.NewClient(n, "backend", addr, rpc.WithMiddleware(ClientMiddleware(tr, "frontend")))
	defer c.Close()
	if err := c.Call(context.Background(), "Do", nil, nil); err != nil {
		t.Fatal(err)
	}
	col.Close()

	if store.Len() != 1 {
		t.Fatalf("traces = %d, want 1", store.Len())
	}
	spans := store.Spans(store.TraceIDs()[0])
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2 (client+server)", len(spans))
	}
	var client, server Span
	for _, sp := range spans {
		switch sp.Kind {
		case KindClient:
			client = sp
		case KindServer:
			server = sp
		}
	}
	if server.Parent != client.SpanID {
		t.Fatal("server span not child of client span")
	}
	if client.Duration < server.Duration {
		t.Fatalf("client span (%v) should cover server span (%v)", client.Duration, server.Duration)
	}
}

func TestSamplingDropsTraces(t *testing.T) {
	store := NewStore()
	col := NewCollector(store, 1<<14)
	tr := NewTracer(col, WithSampleRate(0))
	for i := 0; i < 100; i++ {
		root := tr.StartSpan("svc", "op", KindServer, SpanContext{})
		child := tr.StartSpan("svc2", "op2", KindClient, root.Context())
		child.Finish()
		root.Finish()
	}
	col.Close()
	if store.Len() != 0 {
		t.Fatalf("rate-0 tracer stored %d traces", store.Len())
	}
}

func TestSamplingKeepsFraction(t *testing.T) {
	store := NewStore()
	col := NewCollector(store, 1<<16)
	tr := NewTracer(col, WithSampleRate(0.5))
	const n = 2000
	for i := 0; i < n; i++ {
		root := tr.StartSpan("svc", "op", KindServer, SpanContext{})
		root.Finish()
	}
	col.Close()
	kept := store.Len()
	if kept < n*35/100 || kept > n*65/100 {
		t.Fatalf("rate-0.5 kept %d of %d", kept, n)
	}
}

func TestSamplingDecisionPropagatesViaHeaders(t *testing.T) {
	store := NewStore()
	col := NewCollector(store, 1<<14)
	tr := NewTracer(col, WithSampleRate(0))
	root := tr.StartSpan("svc", "op", KindServer, SpanContext{})
	// Cross a process boundary: inject into headers, extract on the far
	// side, and start a child there.
	headers := map[string]string{}
	root.Context().Inject(headers)
	remote, ok := Extract(headers)
	if !ok || !remote.Dropped {
		t.Fatalf("dropped flag lost across headers: %+v, %v", remote, ok)
	}
	child := tr.StartSpan("remote", "op", KindServer, remote)
	child.Finish()
	root.Finish()
	col.Close()
	if store.Len() != 0 {
		t.Fatalf("dropped trace's remote child was stored")
	}
	// Sampled traces do not set the header.
	tr2 := NewTracer(NewCollector(NewStore(), 16), WithSampleRate(1))
	h2 := map[string]string{}
	tr2.StartSpan("svc", "op", KindServer, SpanContext{}).Context().Inject(h2)
	if h2[HeaderSampled] == "0" {
		t.Fatal("sampled trace marked dropped")
	}
}
