package transport

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is the cause carried by breaker rejections; detect it with
// IsBreakerOpen. The rejection itself is a CodeUnavailable error, so load
// balancers fail the call over to another replica.
var ErrBreakerOpen = errors.New("circuit breaker open")

// IsBreakerOpen reports whether err is a circuit-breaker rejection.
func IsBreakerOpen(err error) bool { return errors.Is(err, ErrBreakerOpen) }

// BreakerConfig tunes a circuit breaker. The zero value gets sane defaults
// from Breaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips a closed breaker
	// open (default 5).
	Failures int
	// Cooldown is how long an open breaker rejects calls before admitting a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Probes is the number of consecutive probe successes in half-open
	// needed to close again (default 1); any probe failure re-opens.
	Probes int
	// SlowThreshold, when non-zero, counts a call that ran longer than it as
	// a failure when the call either completed (slow success) or was
	// canceled because a sibling hedge attempt outran it (Call.Outrun). A
	// cancellation that arrives from further up the chain stays neutral: an
	// ancestor rescuing the request says nothing about THIS replica, only an
	// attempt losing to its own direct peer does. This latency-outlier
	// signal is what catches the paper's Fig 22c slow servers, which never
	// return errors, only tail latency — and the outrun gate keeps latency
	// cascading up from a deeper slow server from charging every healthy
	// replica above it.
	SlowThreshold time.Duration
	// NeutralDeadline, when set, makes CodeDeadline outcomes neutral instead
	// of failures. In a deep chain a spent budget indicts the whole subtree
	// below the callee, not the adjacent replica, so charging it to the
	// next hop trips healthy replicas whenever anything below them is slow;
	// mid-chain clients relying on the outrun signal for slow-replica
	// attribution should set this. Leaf clients, where the callee does all
	// the work, should leave deadline failures counting.
	NeutralDeadline bool
	// MaxEjected caps how many replicas of one target may be held open at
	// once (Envoy's max_ejection_percent, as a count). It takes effect when
	// the per-replica breakers of a target are built through
	// ResilienceConfig.BackendFactory, which gives them a shared ledger; a
	// breaker that cannot get an ejection slot stays closed. The cap stops
	// latency that cascades up from a deeper slow server from ejecting an
	// entire healthy tier. Zero means no cap.
	MaxEjected int

	Stats    *Stats
	Annotate AnnotateFunc

	now    func() time.Time // test hook
	ledger *ejectionLedger  // shared per target by BackendFactory
}

// ejectionLedger bounds simultaneous open breakers across one target's
// replicas.
type ejectionLedger struct {
	mu   sync.Mutex
	open int
	cap  int
}

func (l *ejectionLedger) tryEject() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.open >= l.cap {
		return false
	}
	l.open++
	return true
}

func (l *ejectionLedger) restore() {
	l.mu.Lock()
	l.open--
	l.mu.Unlock()
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Failures <= 0 {
		cfg.Failures = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateNames are the human-readable states reported by the probe
// returned from BreakerWithProbe, in the order of the state constants.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // a half-open probe is in flight
}

// allow decides whether a call may proceed, advancing open→half-open after
// the cooldown.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.successes = 0
		b.probing = true
		if b.cfg.Stats != nil {
			b.cfg.Stats.BreakerHalfOpened.Inc()
		}
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one observed outcome back into the state machine.
func (b *breaker) record(call *Call, err error, elapsed time.Duration) {
	canceled := err != nil && errors.Is(err, context.Canceled)
	slow := b.cfg.SlowThreshold > 0 && elapsed >= b.cfg.SlowThreshold &&
		(!canceled || call.Outrun())
	failure := slow || FailureSignal(err)
	if failure && !slow && b.cfg.NeutralDeadline && IsCode(err, CodeDeadline) {
		failure = false
	}
	// A cancellation that is not a direct hedge loss — or a neutralized
	// deadline — says nothing about this replica: neutral.
	neutral := !failure && err != nil && (canceled || IsCode(err, CodeDeadline))

	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if failure {
			b.failures++
			if b.failures >= b.cfg.Failures {
				b.trip()
			}
		} else if !neutral {
			b.failures = 0
		}
	case breakerHalfOpen:
		b.probing = false
		if failure {
			b.trip()
		} else if !neutral {
			b.successes++
			if b.successes >= b.cfg.Probes {
				b.state = breakerClosed
				b.failures = 0
				if b.cfg.ledger != nil {
					b.cfg.ledger.restore()
				}
				if b.cfg.Stats != nil {
					b.cfg.Stats.BreakerClosed.Inc()
				}
			}
		}
	default:
		// Calls admitted before the trip may land while open; ignore them.
	}
}

// trip moves to open; caller holds b.mu. A closed breaker must first claim
// an ejection slot from the shared ledger (half-open already holds one); if
// the target is at its ejection cap the breaker stays closed and just
// resets its failure streak.
func (b *breaker) trip() {
	if b.state == breakerClosed && b.cfg.ledger != nil && !b.cfg.ledger.tryEject() {
		b.failures = 0
		return
	}
	b.state = breakerOpen
	b.failures = 0
	b.openedAt = b.cfg.now()
	if b.cfg.Stats != nil {
		b.cfg.Stats.BreakerOpened.Inc()
	}
}

// Breaker returns a circuit-breaker middleware guarding one target. Closed
// it passes calls through counting consecutive failures; tripped open it
// rejects instantly with CodeUnavailable (cause ErrBreakerOpen) so the
// caller fails over; after Cooldown it admits single half-open probes and
// closes again once Probes of them succeed. Install one instance per
// replica (see ResilienceConfig.BackendMiddleware) so a slow instance is
// ejected without condemning its healthy peers.
func Breaker(cfg BreakerConfig) Middleware {
	mw, _ := BreakerWithProbe(cfg)
	return mw
}

// BreakerWithProbe is Breaker plus a live state probe ("closed", "open",
// "half-open") for health snapshots — lb.Balanced surfaces it through
// per-backend stats so controllers and experiments can see ejections
// without reaching into transport internals.
func BreakerWithProbe(cfg BreakerConfig) (Middleware, func() string) {
	cfg = cfg.withDefaults()
	br := &breaker{cfg: cfg}
	probe := func() string {
		br.mu.Lock()
		defer br.mu.Unlock()
		return breakerStateNames[br.state]
	}
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) error {
			if !br.allow() {
				if cfg.Stats != nil {
					cfg.Stats.BreakerRejected.Inc()
				}
				if cfg.Annotate != nil {
					cfg.Annotate(ctx, "breaker.rejected", call.Target)
				}
				return WrapCode(CodeUnavailable, ErrBreakerOpen,
					"transport: %s.%s: %v", call.Target, call.Method, ErrBreakerOpen)
			}
			start := cfg.now()
			err := next(ctx, call)
			br.record(call, err, cfg.now().Sub(start))
			return err
		}
	}, probe
}
