package transport

import (
	"context"
	"time"
)

// BudgetConfig tunes per-hop deadline budgeting. The zero value gets sane
// defaults from DeadlineBudget.
type BudgetConfig struct {
	// Fraction of the caller's remaining deadline granted to this call
	// (default 0.9). Each hop reserves the complement for its own
	// post-processing, so budgets shrink monotonically as a request
	// descends the service graph and every tier still has time to handle a
	// downstream timeout gracefully.
	Fraction float64
	// Floor is the minimum budget worth granting (default 100µs); when the
	// remaining budget is below it the call fails fast with CodeDeadline
	// instead of burning a doomed downstream round trip.
	Floor time.Duration
	// Max caps the granted budget (0 = no cap). A per-attempt cap bounds
	// how long one slow replica can hold a request, letting retries,
	// hedges, and the breaker's failure counter react quickly.
	Max time.Duration
	// Default is the budget installed when the caller has no deadline at
	// all (0 = leave the context unbounded).
	Default time.Duration

	Stats    *Stats
	Annotate AnnotateFunc
}

func (cfg BudgetConfig) withDefaults() BudgetConfig {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		cfg.Fraction = 0.9
	}
	if cfg.Floor <= 0 {
		cfg.Floor = 100 * time.Microsecond
	}
	return cfg
}

// DeadlineBudget returns a middleware that installs a shrunken per-hop
// deadline on the call's context. The tightened deadline propagates to the
// server via DeadlineHeader (written by the terminal invoker from the
// context), so a leaf tier observes a strictly tighter budget than the
// root — the mechanism that stops abandoned work from cascading down the
// graph.
func DeadlineBudget(cfg BudgetConfig) Middleware {
	cfg = cfg.withDefaults()
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) error {
			dl, ok := ctx.Deadline()
			if !ok {
				if cfg.Default <= 0 {
					return next(ctx, call)
				}
				dctx, cancel := context.WithTimeout(ctx, cfg.Default)
				defer cancel()
				return next(dctx, call)
			}
			remaining := time.Until(dl)
			if remaining < cfg.Floor {
				if cfg.Stats != nil {
					cfg.Stats.DeadlineExhausted.Inc()
				}
				return WrapCode(CodeDeadline, context.DeadlineExceeded,
					"transport: no deadline budget left for %s.%s (%v remaining)",
					call.Target, call.Method, remaining)
			}
			budget := time.Duration(float64(remaining) * cfg.Fraction)
			if budget < cfg.Floor {
				budget = cfg.Floor
			}
			if cfg.Max > 0 && budget > cfg.Max {
				budget = cfg.Max
			}
			if cfg.Stats != nil {
				cfg.Stats.DeadlineTruncated.Inc()
			}
			if cfg.Annotate != nil {
				cfg.Annotate(ctx, "budget."+call.Target, budget.String())
			}
			bctx, cancel := context.WithDeadline(ctx, time.Now().Add(budget))
			defer cancel()
			return next(bctx, call)
		}
	}
}
