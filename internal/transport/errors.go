package transport

import (
	"context"
	"errors"
	"fmt"
)

// Well-known application error codes, mirroring the small set of RPC
// failure classes the suite's services distinguish. They live here (rather
// than in the rpc package, which aliases them) so the resilience layer can
// classify failures without depending on a specific protocol stack.
const (
	CodeInternal     = 1
	CodeNotFound     = 2
	CodeBadRequest   = 3
	CodeUnauthorized = 4
	CodeUnavailable  = 5 // overload / rate limited / circuit breaker open
	CodeConflict     = 6
	CodeDeadline     = 7
	// CodeOverloaded is an admission-control shed: a HEALTHY replica refused
	// the request before doing any work because its queue is full or the
	// remaining deadline budget cannot be met. It is retryable at another
	// replica (a less loaded peer may accept) but is not a failure signal —
	// shedding is the replica protecting itself, and charging it to breakers
	// would eject the exact capacity an overloaded tier still has.
	CodeOverloaded = 8
)

// Error is an application-level error carried across the wire with a code.
type Error struct {
	Code int
	Msg  string

	// cause distinguishes local failure modes that share a code: a call
	// abandoned because the caller's context was canceled (a winning hedge,
	// a departed client) unwraps to context.Canceled, a spent budget to
	// context.DeadlineExceeded, a breaker rejection to ErrBreakerOpen.
	cause error
}

// Errorf constructs a coded error.
func Errorf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// WrapCode constructs a coded error that preserves cause for errors.Is
// inspection.
func WrapCode(code int, cause error, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...), cause: cause}
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Msg) }

// Unwrap exposes the cause, if any.
func (e *Error) Unwrap() error { return e.cause }

// ErrorCode extracts the application code from err, or CodeInternal when
// err is not an *Error.
func ErrorCode(err error) int {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// IsCode reports whether err carries the given application code.
func IsCode(err error, code int) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}

// NotFoundf is shorthand for the most common coded error in the services.
func NotFoundf(format string, args ...any) *Error {
	return Errorf(CodeNotFound, format, args...)
}

// Retryable reports whether err is safe to re-issue, on the same or another
// replica: transport-level failures (the connection died before any coded
// reply arrived, so a reachable server never saw or never answered the
// request), CodeUnavailable rejections (overload shedding, breaker
// open — another replica may accept), and CodeOverloaded admission sheds
// (the replica did no work; a peer may have capacity). Coded application
// errors must not be retried here (idempotency is the application's
// concern), and neither are spent deadlines or cancellations, which
// retrying only makes worse.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code == CodeUnavailable || e.Code == CodeOverloaded
	}
	return true
}

// FailureSignal reports whether err indicates an unhealthy server — the
// signal the circuit breaker accumulates: transport failures, unavailable
// rejections, and spent deadlines (a server too slow to answer inside its
// budget). Cancellations are neutral (the caller or a winning hedge gave
// up, saying nothing about the server), and other coded application errors
// count as healthy — the server was responsive enough to reject properly.
// CodeOverloaded sheds are explicitly healthy: admission control answering
// "not now" instantly is the opposite of a dead replica, and breakers that
// ejected shedding replicas would amplify the overload onto the survivors.
func FailureSignal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code == CodeUnavailable || e.Code == CodeDeadline
	}
	return true
}
