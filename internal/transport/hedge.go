package transport

import (
	"context"
	"time"

	"dsb/internal/metrics"
)

// HedgeConfig tunes request hedging. The zero value gets sane defaults from
// Hedge.
type HedgeConfig struct {
	// Delay is the static hedge delay floor (default 1ms): if the primary
	// attempt has not returned after it, a secondary attempt is issued and
	// the first response wins.
	Delay time.Duration
	// BudgetFraction, when non-zero, scales the delay to that fraction of
	// the call's remaining deadline budget (never below Delay). In a chain
	// with per-hop deadline budgets this nests the hedges correctly: deeper
	// hops hold tighter budgets, so they hedge sooner, the rescue closest to
	// a slow server wins first, and upstream primaries finish before their
	// own (larger) delays fire — no redundant upstream hedges.
	BudgetFraction float64
	// Quantile, when non-zero, adapts the delay upward to the given
	// percentile of recently observed successful-call latencies once
	// MinSamples have accumulated — e.g. 95 hedges only the slowest ~5% of
	// calls, the classic tail-at-scale policy that bounds extra load.
	Quantile float64
	// MinSamples gates the adaptive delay (default 64).
	MinSamples int
	// MaxHedges bounds the extra attempts per call (default 1). Further
	// hedges are staggered by the same delay.
	MaxHedges int

	Stats    *Stats
	Annotate AnnotateFunc
}

func (cfg HedgeConfig) withDefaults() HedgeConfig {
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 64
	}
	if cfg.MaxHedges <= 0 {
		cfg.MaxHedges = 1
	}
	return cfg
}

// Hedge returns a hedged-requests middleware: when the primary attempt is
// slower than the hedge delay, a second attempt races it on a fresh clone
// of the call (below a load balancer this lands on another replica) and the
// first successful response wins; the loser is canceled. Hedging converts
// the tail of the latency distribution into a small amount of extra load —
// the counter to the paper's finding that one slow server on any critical
// path collapses end-to-end goodput. One middleware instance owns one
// latency tracker; install a fresh instance per target.
func Hedge(cfg HedgeConfig) Middleware {
	cfg = cfg.withDefaults()
	hist := metrics.NewHistogram()
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) error {
			delay := cfg.Delay
			if cfg.BudgetFraction > 0 {
				if dl, ok := ctx.Deadline(); ok {
					if d := time.Duration(float64(time.Until(dl)) * cfg.BudgetFraction); d > delay {
						delay = d
					}
				}
			}
			if cfg.Quantile > 0 && hist.Count() >= int64(cfg.MinSamples) {
				if q := hist.PercentileDuration(cfg.Quantile); q > delay {
					delay = q
				}
			}

			hctx, cancel := context.WithCancel(ctx)
			defer cancel() // reap the losing attempt

			type result struct {
				att    *Call
				err    error
				hedged bool
			}
			results := make(chan result, cfg.MaxHedges+1)
			attempts := make([]*Call, 0, cfg.MaxHedges+1)
			launch := func(hedged bool) {
				att := call.Clone()
				attempts = append(attempts, att)
				go func() {
					start := time.Now()
					err := next(hctx, att)
					if err == nil {
						hist.RecordDuration(time.Since(start))
					}
					results <- result{att, err, hedged}
				}()
			}

			launch(false)
			launched, inflight := 1, 1
			timer := time.NewTimer(delay)
			defer timer.Stop()
			var firstErr error
			for {
				select {
				case r := <-results:
					inflight--
					if r.err == nil {
						call.Reply = r.att.Reply
						call.StreamBody = r.att.StreamBody
						// Mark the still-inflight losers before cancel fires
						// (the deferred cancel runs after this), so their
						// breakers see the outrun flag when they unwind.
						for _, att := range attempts {
							if att != r.att {
								att.MarkOutrun()
							}
						}
						if r.hedged {
							if cfg.Stats != nil {
								cfg.Stats.HedgeWins.Inc()
							}
							if cfg.Annotate != nil {
								cfg.Annotate(ctx, "hedge.won", call.Target)
							}
						}
						return nil
					}
					if firstErr == nil {
						firstErr = r.err
					}
					if inflight == 0 {
						// Every launched attempt failed. Failure handling is
						// the retry layer's job, not the hedge's.
						return firstErr
					}
				case <-timer.C:
					if launched > cfg.MaxHedges {
						break
					}
					if cfg.Stats != nil {
						cfg.Stats.Hedges.Inc()
					}
					launch(true)
					launched++
					inflight++
					if launched <= cfg.MaxHedges {
						timer.Reset(delay)
					}
				}
			}
		}
	}
}
