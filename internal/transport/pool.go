package transport

import "sync"

// Pooled buffers and call descriptors for the wire hot path. The RPC layer
// moves payload bytes through here so a steady request stream recirculates
// a small working set of buffers instead of allocating per call.
//
// Ownership rules (see DESIGN.md "wire speed"):
//
//   - AcquireBuf hands out exclusive ownership; exactly one ReleaseBuf (or
//     none — dropping a buffer on the floor is safe, it just falls back to
//     the garbage collector) per acquired buffer.
//   - ReleaseBuf must only be called once the contents are dead: after a
//     decode (the codec never aliases its input) or after the bytes were
//     copied to the wire.
//   - Never release a slice you do not own end-to-end; a sub-slice of
//     someone else's buffer poisons the pool.

const (
	// maxPooledBuf bounds a recyclable buffer so one jumbo payload does not
	// pin megabytes in the pool.
	maxPooledBuf = 64 << 10
	// maxPoolEntries bounds the freelist.
	maxPoolEntries = 64
	// minBufCap is the smallest capacity AcquireBuf mints, so tiny first
	// requests do not seed the pool with useless slivers.
	minBufCap = 512
)

var bufPool struct {
	mu   sync.Mutex
	free [][]byte
}

// AcquireBuf returns a zero-length buffer with at least hint spare capacity
// when freshly minted; a recycled buffer may be smaller (append will grow it
// once, after which the grown buffer recirculates).
func AcquireBuf(hint int) []byte {
	bufPool.mu.Lock()
	if n := len(bufPool.free); n > 0 {
		b := bufPool.free[n-1]
		bufPool.free[n-1] = nil
		bufPool.free = bufPool.free[:n-1]
		bufPool.mu.Unlock()
		return b
	}
	bufPool.mu.Unlock()
	if hint < minBufCap {
		hint = minBufCap
	}
	if hint > maxPooledBuf {
		hint = maxPooledBuf
	}
	return make([]byte, 0, hint)
}

// ReleaseBuf returns a buffer to the pool. nil and oversized buffers are
// dropped. The caller must not touch b afterwards.
func ReleaseBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.mu.Lock()
	if len(bufPool.free) < maxPoolEntries {
		bufPool.free = append(bufPool.free, b)
	}
	bufPool.mu.Unlock()
}

var callPool = sync.Pool{New: func() any { return new(Call) }}

// AcquireCall returns a pooled call descriptor for one invocation. Release
// it with ReleaseCall once the invoke chain has returned AND any reply
// bytes have been detached — hedge stragglers only ever hold Clones, so the
// original is safe to release the moment the chain returns.
func AcquireCall(target, method string) *Call {
	c := callPool.Get().(*Call)
	c.Target, c.Method = target, method
	return c
}

// ReleaseCall recycles a call descriptor obtained from AcquireCall. The
// header map is retained (cleared) across uses so a deadline-stamping caller
// allocates it once per pooled descriptor, not once per call.
func ReleaseCall(c *Call) {
	c.Target, c.Method = "", ""
	c.Payload, c.Reply = nil, nil
	c.Body = nil
	c.Addr = ""
	c.OneWay, c.Stream = false, false
	c.StreamBody = nil
	clear(c.Headers)
	c.outrun.Store(false)
	callPool.Put(c)
}
