package transport

// ResilienceConfig bundles the tail-tolerance middleware stack. A nil
// sub-config disables that middleware; NewResilience returns the
// all-defaults bundle. Stats and Annotate, when set, are pushed down into
// every sub-config that has not set its own.
//
// The stack splits across two levels of the call path:
//
//   - Stack() — per-target middlewares installed on the load-balanced
//     client, outermost first: deadline budget (shrink the hop's budget),
//     retry (re-issue retryable failures, re-picking a replica), hedge
//     (race a second replica after the hedge delay).
//   - BackendMiddleware() — per-replica middlewares installed on each
//     backend's client: the circuit breaker, one instance per replica, so
//     a slow or dead instance is ejected individually and its rejections
//     (CodeUnavailable) fail over to healthy peers.
type ResilienceConfig struct {
	Budget  *BudgetConfig
	Retry   *RetryConfig
	Hedge   *HedgeConfig
	Breaker *BreakerConfig

	// Stats receives counters from every middleware in the bundle that does
	// not carry its own.
	Stats *Stats
	// Annotate receives span annotations from every middleware in the
	// bundle that does not carry its own (usually trace.Annotate).
	Annotate AnnotateFunc
}

// NewResilience returns the full default bundle: deadline budgets, retries,
// hedging, and per-replica breakers, all at their default tunings.
func NewResilience() *ResilienceConfig {
	return &ResilienceConfig{
		Budget:  &BudgetConfig{},
		Retry:   &RetryConfig{},
		Hedge:   &HedgeConfig{},
		Breaker: &BreakerConfig{},
		Stats:   &Stats{},
	}
}

// Stack returns a fresh per-target middleware chain, outermost first:
// deadline budget → retry → hedge. Every invocation creates new middleware
// state (retry budget, hedge latency tracker), so call it once per target.
func (cfg *ResilienceConfig) Stack() []Middleware {
	if cfg == nil {
		return nil
	}
	var mws []Middleware
	if cfg.Budget != nil {
		b := *cfg.Budget
		cfg.fill(&b.Stats, &b.Annotate)
		mws = append(mws, DeadlineBudget(b))
	}
	if cfg.Retry != nil {
		r := *cfg.Retry
		cfg.fill(&r.Stats, &r.Annotate)
		mws = append(mws, Retry(r))
	}
	if cfg.Hedge != nil {
		h := *cfg.Hedge
		cfg.fill(&h.Stats, &h.Annotate)
		mws = append(mws, Hedge(h))
	}
	return mws
}

// BackendMiddleware returns a fresh per-replica middleware chain (the
// circuit breaker); call it once per backend address so replicas trip
// independently.
func (cfg *ResilienceConfig) BackendMiddleware() []Middleware {
	if cfg == nil || cfg.Breaker == nil {
		return nil
	}
	b := *cfg.Breaker
	cfg.fill(&b.Stats, &b.Annotate)
	return []Middleware{Breaker(b)}
}

// BackendFactory returns a per-replica middleware factory for one target,
// suitable for lb.WithBackendMiddleware. Each replica gets its own breaker,
// but all breakers of the target share one ejection ledger when
// Breaker.MaxEjected is set, so at most that many replicas can be held open
// at once. Call it once per target so the ledger is not shared across
// targets.
func (cfg *ResilienceConfig) BackendFactory() func(addr string) []Middleware {
	if cfg == nil || cfg.Breaker == nil {
		return func(string) []Middleware { return nil }
	}
	b := *cfg.Breaker
	cfg.fill(&b.Stats, &b.Annotate)
	if b.MaxEjected > 0 {
		b.ledger = &ejectionLedger{cap: b.MaxEjected}
	}
	return func(string) []Middleware { return []Middleware{Breaker(b)} }
}

// InstrumentedBackendFactory is BackendFactory plus a per-replica breaker
// state probe, matching lb.WithBackendInstrument: the balancer surfaces the
// probe in its per-backend stats. The ledger-sharing semantics are the same
// as BackendFactory's.
func (cfg *ResilienceConfig) InstrumentedBackendFactory() func(addr string) ([]Middleware, func() string) {
	if cfg == nil || cfg.Breaker == nil {
		return func(string) ([]Middleware, func() string) { return nil, nil }
	}
	b := *cfg.Breaker
	cfg.fill(&b.Stats, &b.Annotate)
	if b.MaxEjected > 0 {
		b.ledger = &ejectionLedger{cap: b.MaxEjected}
	}
	return func(string) ([]Middleware, func() string) {
		mw, probe := BreakerWithProbe(b)
		return []Middleware{mw}, probe
	}
}

func (cfg *ResilienceConfig) fill(stats **Stats, annotate *AnnotateFunc) {
	if *stats == nil {
		*stats = cfg.Stats
	}
	if *annotate == nil {
		*annotate = cfg.Annotate
	}
}
