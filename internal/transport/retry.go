package transport

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// RetryConfig tunes the retry middleware. The zero value gets sane defaults
// from Retry.
type RetryConfig struct {
	// Attempts is the total attempt cap including the first (default 3).
	Attempts int
	// BaseDelay seeds the exponential backoff (default 500µs): retry i
	// waits a uniformly random ("full jitter") duration in
	// [0, min(MaxDelay, BaseDelay·2^i)].
	BaseDelay time.Duration
	// MaxDelay caps a single backoff (default 50ms).
	MaxDelay time.Duration
	// BudgetRatio refills the token-bucket retry budget by this many tokens
	// per successful call (default 0.1, i.e. at most ~10% extra load from
	// retries in steady state); BudgetBurst caps the bucket (default 10).
	// Under a full outage the bucket drains and retries stop, so the retry
	// layer cannot amplify the very overload it is reacting to.
	BudgetRatio float64
	BudgetBurst float64

	Stats    *Stats
	Annotate AnnotateFunc
}

func (cfg RetryConfig) withDefaults() RetryConfig {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 500 * time.Microsecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	if cfg.BudgetRatio <= 0 {
		cfg.BudgetRatio = 0.1
	}
	if cfg.BudgetBurst <= 0 {
		cfg.BudgetBurst = 10
	}
	return cfg
}

// retryBudget is a token bucket refilled by successes, spent by retries.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

func (b *retryBudget) success() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Retry returns a middleware that re-issues retryable failures (see
// Retryable) with exponential backoff plus full jitter, gated by a
// token-bucket retry budget. Each attempt runs on a fresh clone of the
// call, so header mutations and replies never leak between attempts. One
// middleware instance owns one budget; install a fresh instance per target.
func Retry(cfg RetryConfig) Middleware {
	cfg = cfg.withDefaults()
	budget := &retryBudget{tokens: cfg.BudgetBurst, cap: cfg.BudgetBurst, ratio: cfg.BudgetRatio}
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) error {
			for attempt := 0; ; attempt++ {
				att := call.Clone()
				err := next(ctx, att)
				if err == nil {
					call.Reply = att.Reply
					call.StreamBody = att.StreamBody
					budget.success()
					if attempt > 0 && cfg.Annotate != nil {
						cfg.Annotate(ctx, "retry.attempts", strconv.Itoa(attempt+1))
					}
					return nil
				}
				if attempt+1 >= cfg.Attempts || !Retryable(err) || ctx.Err() != nil {
					return err
				}
				// Admission sheds are free: the replica rejected before doing
				// any work, so the retry adds no amplification — it just moves
				// the request to a peer with capacity. Charging sheds to the
				// budget would drain it exactly when an overloaded tier is
				// redirecting load toward its remaining healthy replicas.
				if !IsCode(err, CodeOverloaded) && !budget.take() {
					if cfg.Stats != nil {
						cfg.Stats.RetryBudgetExhausted.Inc()
					}
					return err
				}
				if cfg.Stats != nil {
					cfg.Stats.Retries.Inc()
				}
				ceil := min(cfg.MaxDelay, cfg.BaseDelay<<attempt)
				backoff := time.Duration(rand.Int64N(int64(ceil) + 1))
				timer := time.NewTimer(backoff)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return err
				}
			}
		}
	}
}
