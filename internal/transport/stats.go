package transport

import "dsb/internal/metrics"

// Stats aggregates the resilience layer's counters so experiment drivers
// and operators can attribute tail savings: how many retries were issued,
// how often a hedge beat the primary attempt, and how the circuit breakers
// moved. One Stats value is typically shared by every middleware of one
// application (see core.App); all fields are safe for concurrent use. A nil
// *Stats disables accounting at zero cost.
type Stats struct {
	// Retries counts retry attempts actually issued (not first attempts).
	Retries metrics.Counter
	// RetryBudgetExhausted counts retries suppressed by an empty token
	// bucket — the backstop against retry storms amplifying an outage.
	RetryBudgetExhausted metrics.Counter

	// Hedges counts hedged (secondary) attempts issued.
	Hedges metrics.Counter
	// HedgeWins counts calls where a hedged attempt returned first — the
	// requests rescued from the tail.
	HedgeWins metrics.Counter

	// BreakerOpened / BreakerHalfOpened / BreakerClosed count state
	// transitions across all breakers sharing this Stats.
	BreakerOpened     metrics.Counter
	BreakerHalfOpened metrics.Counter
	BreakerClosed     metrics.Counter
	// BreakerRejected counts calls refused outright by an open breaker.
	BreakerRejected metrics.Counter

	// DeadlineTruncated counts calls whose context deadline was shrunk by
	// the per-hop budget; DeadlineExhausted counts calls failed locally
	// because no usable budget remained.
	DeadlineTruncated metrics.Counter
	DeadlineExhausted metrics.Counter
}
