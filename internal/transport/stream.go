package transport

import (
	"context"
	"errors"
	"fmt"
	"io"

	"dsb/internal/codec"
)

// StreamConn is the raw wire surface of one open stream: the terminal
// invoker sets it on a streaming Call, and the typed Stream wraps it. Both
// directions carry opaque payload frames under per-direction flow-control
// windows; the semantics (who sends, who receives, when to half-close) are
// the method contract's business, not the transport's.
type StreamConn interface {
	// Send writes one item frame, blocking while the peer's receive window
	// is exhausted. It fails once the stream is torn down or half-closed.
	Send(payload []byte) error
	// CloseSend half-closes the local send side: the peer's Recv drains
	// whatever is in flight and then sees io.EOF. Receiving stays open.
	CloseSend() error
	// Recv returns the next item from the peer, io.EOF after a clean end,
	// or the peer's coded error. Items already received are always drained
	// before an end condition is reported.
	Recv() ([]byte, error)
	// Cancel aborts the stream from this side: parked Sends and Recvs wake,
	// and the peer observes the abort. Safe to call more than once.
	Cancel()
}

// Stream is the typed view of an open stream, encoding items with the wire
// codec the way Caller.Call encodes unary bodies. The zero item decode
// contract matches Call: pass nil to skip decoding.
type Stream struct {
	raw    StreamConn
	target string
	method string
}

// NewStream wraps a raw stream conn; clients construct it after their
// middleware chain has populated Call.StreamBody.
func NewStream(raw StreamConn, target, method string) *Stream {
	return &Stream{raw: raw, target: target, method: method}
}

// Raw exposes the underlying stream conn (tests, byte-level adopters).
func (s *Stream) Raw() StreamConn { return s.raw }

// Send encodes v and writes one item frame.
func (s *Stream) Send(v any) error {
	payload, err := codec.Marshal(v)
	if err != nil {
		return fmt.Errorf("transport: marshal %s.%s stream item: %w", s.target, s.method, err)
	}
	return s.raw.Send(payload)
}

// Recv decodes the next item into v (nil v discards the payload). It
// returns io.EOF after the peer's clean end, or the peer's coded error.
func (s *Stream) Recv(v any) error {
	payload, err := s.raw.Recv()
	if err != nil {
		return err
	}
	if v == nil {
		return nil
	}
	if err := codec.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("transport: unmarshal %s.%s stream item: %w", s.target, s.method, err)
	}
	return nil
}

// CloseSend half-closes the send side; the peer's Recv sees io.EOF.
func (s *Stream) CloseSend() error { return s.raw.CloseSend() }

// Cancel aborts the stream from this side.
func (s *Stream) Cancel() { s.raw.Cancel() }

// IsStreamEnd reports whether a Recv error is the clean end-of-stream.
func IsStreamEnd(err error) bool { return errors.Is(err, io.EOF) }

// Streamer is the optional streaming extension of Caller. *rpc.Client,
// *lb.Balanced, and *shard.Replica implement it; adopters type-assert and
// fall back to their unary path (long-poll consume, per-sample calls) when
// the underlying caller is a fake or an older transport.
type Streamer interface {
	Stream(ctx context.Context, method string, req any) (*Stream, error)
}

// OpenStream is the shared client-side open path: it marshals the initial
// request, runs the caller's composed middleware chain with Call.Stream
// set — so tracing, breakers, retries, and fault injection all observe the
// streaming hop like any other — and wraps the StreamConn the terminal
// invoker attached. addr pins the call to one replica ("" for balanced
// callers). ctx governs the whole stream's lifetime, not just the open:
// cancellation tears the stream down.
func OpenStream(ctx context.Context, invoke Invoker, target, addr, method string, req any) (*Stream, error) {
	var payload []byte
	if req != nil {
		var err error
		payload, err = codec.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("transport: marshal %s.%s: %w", target, method, err)
		}
	}
	call := NewCall(target, method, payload)
	call.Addr = addr
	call.Stream = true
	if err := invoke(ctx, call); err != nil {
		return nil, err
	}
	if call.StreamBody == nil {
		return nil, Errorf(CodeInternal, "transport: %s.%s: terminal invoker opened no stream", target, method)
	}
	return NewStream(call.StreamBody, target, method), nil
}
