// Package transport owns the unified client call path shared by the RPC
// and REST stacks: the Call descriptor every outgoing request flows
// through, the composable Middleware chain both protocols accept (tracing,
// metrics, fault injection, and the resilience layer all plug in here), and
// the coded error model the suite's services speak on the wire.
//
// The resilience layer is the production counterpart to the paper's
// tail-at-scale findings (Fig 22c: ≥1% slow servers drives microservice
// goodput to ~0 at scale; Fig 17: backpressure autoscalers cannot fix). It
// provides per-hop deadline budgets that shrink as a request descends the
// service graph, retries with exponential backoff gated by a token-bucket
// retry budget, per-replica circuit breakers with latency-outlier
// detection, and hedged requests that race a second replica after a
// configurable delay. See ResilienceConfig for the bundle.
package transport

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// DeadlineHeader carries the absolute call deadline (unix nanoseconds) so
// downstream tiers stop working on requests the client has abandoned. Both
// the RPC and REST transports propagate it.
const DeadlineHeader = "dsb-deadline"

// EncodeDeadline renders an absolute deadline for the DeadlineHeader.
func EncodeDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// ParseDeadline decodes a DeadlineHeader value.
func ParseDeadline(v string) (time.Time, bool) {
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Call describes one outgoing client call as it flows through the
// middleware chain down to the wire exchange. Middlewares may mutate
// headers (tracing injects span identity this way) and read the reply after
// the inner invoker returns.
type Call struct {
	// Target is the downstream service name, for errors, tracing, and
	// per-target middleware state.
	Target string
	// Method is the invoked operation: an RPC method name such as
	// "ComposePost", or "VERB /path" for REST.
	Method string
	// Payload is the encoded request body (nil for bodyless calls).
	Payload []byte
	// Body, when non-nil, is the typed request value and takes precedence
	// over Payload: the terminal invoker encodes it directly into the
	// connection writer's buffer (through the codec fast path for registered
	// types), so no intermediate encoded []byte exists per call and
	// middleware never forces a re-encode. Because hedged and retried
	// attempts re-encode at the wire, the caller must not mutate the value
	// Body points to until the call — including any still-running hedge
	// attempts, which share it via Clone — has completed.
	Body any
	// Headers are propagated to the server. The map is lazily allocated —
	// use SetHeader or HeaderMap; a call with no deadline, tracing, or
	// custom metadata never allocates it.
	Headers map[string]string
	// Reply is the raw reply payload, set by the terminal invoker on
	// success.
	Reply []byte

	// Addr is the replica address this call is pinned to, when routing is
	// per-replica (the shard router stamps it before running the chain).
	// Load-balanced calls leave it empty — the replica is picked under the
	// chain, not above it. Fault rules use it to target a single replica.
	Addr string

	// OneWay marks a fire-and-forget call: the terminal invoker completes at
	// send and the server never writes a reply frame, so Reply stays nil and
	// post-send failures surface through server-side stats rather than to the
	// caller. It is a call option, not a separate path — the call still flows
	// through the full middleware chain, so stats, breakers, and fault
	// injection observe every one-way hop exactly like a synchronous one.
	OneWay bool

	// Stream marks a streaming call: the terminal invoker opens a stream
	// instead of exchanging one reply, setting StreamBody on success and
	// leaving Reply nil. Like OneWay it is a call option — the open runs
	// through the full middleware chain, so stats, breakers, retries, and
	// fault injection observe streaming hops; what they time and retry is
	// the open, the stream body then lives past the chain's return.
	Stream bool
	// StreamBody is the open stream, set by the terminal invoker when
	// Stream is true (the streaming counterpart of Reply).
	StreamBody StreamConn

	// outrun is set by the hedge middleware when this attempt lost to a
	// sibling: a peer replica proved the work completes fast, so the loser's
	// replica — not the request — was the slow party. The breaker reads it
	// to attribute slowness to the right replica (see BreakerConfig).
	outrun atomic.Bool
}

// NewCall builds a call descriptor.
func NewCall(target, method string, payload []byte) *Call {
	return &Call{Target: target, Method: method, Payload: payload}
}

// Header returns a header value, or "".
func (c *Call) Header(key string) string { return c.Headers[key] }

// SetHeader sets a propagated header, allocating the map on first use.
func (c *Call) SetHeader(key, value string) {
	if c.Headers == nil {
		c.Headers = make(map[string]string, 4)
	}
	c.Headers[key] = value
}

// HeaderMap returns the (lazily allocated) header map for bulk injection,
// e.g. trace-context propagation.
func (c *Call) HeaderMap() map[string]string {
	if c.Headers == nil {
		c.Headers = make(map[string]string, 4)
	}
	return c.Headers
}

// MarkOutrun flags this attempt as having been outrun by a sibling hedge
// attempt. Set before the loser is canceled, so the flag is visible when
// the canceled attempt unwinds through the breaker.
func (c *Call) MarkOutrun() { c.outrun.Store(true) }

// Outrun reports whether a sibling hedge attempt won against this one.
func (c *Call) Outrun() bool { return c.outrun.Load() }

// Clone returns an independent copy for a parallel or repeated attempt.
// Hedging and retries clone the call so concurrent attempts never share the
// header map or the reply slot; the payload (and the typed Body, when set)
// is shared read-only.
func (c *Call) Clone() *Call {
	cp := &Call{Target: c.Target, Method: c.Method, Payload: c.Payload, Body: c.Body, Addr: c.Addr, OneWay: c.OneWay, Stream: c.Stream}
	if c.Headers != nil {
		cp.Headers = make(map[string]string, len(c.Headers))
		for k, v := range c.Headers {
			cp.Headers[k] = v
		}
	}
	return cp
}

// Invoker performs one call attempt: the terminal invoker is the wire
// exchange (pick a connection, frame the request, await the reply), and
// each middleware wraps the next invoker down.
type Invoker func(ctx context.Context, call *Call) error

// Middleware wraps an Invoker. Chains are composed once at client
// construction — not per call — so an empty chain costs nothing on the hot
// path. Middlewares must be safe for concurrent use; per-call state belongs
// on the Call (cloned per attempt), per-target state inside the middleware
// closure.
type Middleware func(next Invoker) Invoker

// Chain composes middlewares into one; mws[0] is outermost.
func Chain(mws ...Middleware) Middleware {
	return func(next Invoker) Invoker {
		return Build(next, mws...)
	}
}

// Build wraps terminal with mws, mws[0] outermost, and returns the composed
// invoker. Clients call this once at construction.
func Build(terminal Invoker, mws ...Middleware) Invoker {
	inv := terminal
	for i := len(mws) - 1; i >= 0; i-- {
		inv = mws[i](inv)
	}
	return inv
}

// Caller is the typed client surface services use to talk to a downstream
// tier; *rpc.Client, *lb.Balanced, and test fakes satisfy it. (Promoted
// from svcutil so every layer shares one definition.)
type Caller interface {
	Call(ctx context.Context, method string, req, resp any) error
	Target() string
}

// OneWayCaller is the optional fire-and-forget extension of Caller.
// *rpc.Client and *lb.Balanced implement it; typed clients with a
// naturally idempotent method (e.g. the broker's Ack under at-least-once
// delivery) type-assert for it and fall back to a synchronous Call when the
// underlying caller is a fake or an older transport.
type OneWayCaller interface {
	CallOneWay(ctx context.Context, method string, req any) error
}

// AnnotateFunc records a key/value on the active trace span in ctx, if any.
// The resilience middlewares receive one (usually trace.Annotate) so retry
// counts, hedge wins, and breaker transitions are attributable per request
// in the trace store.
type AnnotateFunc func(ctx context.Context, key, value string)

// Delay returns a middleware that sleeps for d before each call, used in
// live mode to model a slow link (e.g. the cloud↔edge wifi hop in the
// Swarm application).
func Delay(d time.Duration) Middleware {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call) error {
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				return ctx.Err()
			}
			return next(ctx, call)
		}
	}
}
