package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next Invoker) Invoker {
			return func(ctx context.Context, call *Call) error {
				order = append(order, name+"-pre")
				err := next(ctx, call)
				order = append(order, name+"-post")
				return err
			}
		}
	}
	terminal := func(ctx context.Context, call *Call) error {
		order = append(order, "terminal")
		call.Reply = []byte("ok")
		return nil
	}
	inv := Build(terminal, mw("a"), mw("b"))
	call := NewCall("svc", "M", nil)
	if err := inv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-pre", "b-pre", "terminal", "b-post", "a-post"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if string(call.Reply) != "ok" {
		t.Fatalf("reply = %q", call.Reply)
	}
}

func TestCallLazyHeadersAndClone(t *testing.T) {
	call := NewCall("svc", "M", []byte("req"))
	if call.Headers != nil {
		t.Fatal("headers allocated up front")
	}
	cp := call.Clone()
	if cp.Headers != nil {
		t.Fatal("clone allocated headers")
	}
	call.SetHeader("k", "v")
	cp2 := call.Clone()
	cp2.SetHeader("k", "other")
	if call.Header("k") != "v" {
		t.Fatal("clone shares header map with original")
	}
	if &call.Payload[0] != &cp2.Payload[0] {
		t.Fatal("clone copied the payload; it should share it read-only")
	}
}

func TestDeadlineCodec(t *testing.T) {
	want := time.Unix(0, 1234567890)
	got, ok := ParseDeadline(EncodeDeadline(want))
	if !ok || !got.Equal(want) {
		t.Fatalf("roundtrip = %v, %v", got, ok)
	}
	if _, ok := ParseDeadline("bogus"); ok {
		t.Fatal("parsed garbage")
	}
}

func TestRetryableAndFailureSignal(t *testing.T) {
	cases := []struct {
		err       error
		retryable bool
		failure   bool
	}{
		{nil, false, false},
		{errors.New("conn lost"), true, true},
		{context.Canceled, false, false},
		{context.DeadlineExceeded, false, true},
		{Errorf(CodeNotFound, "nope"), false, false},
		{Errorf(CodeUnavailable, "shed"), true, true},
		{Errorf(CodeDeadline, "late"), false, true},
		{WrapCode(CodeDeadline, context.Canceled, "hedge loser"), false, false},
		{WrapCode(CodeDeadline, context.DeadlineExceeded, "spent"), false, true},
		{WrapCode(CodeUnavailable, ErrBreakerOpen, "open"), true, true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.retryable)
		}
		if got := FailureSignal(c.err); got != c.failure {
			t.Errorf("FailureSignal(%v) = %v, want %v", c.err, got, c.failure)
		}
	}
}

func TestDeadlineBudgetShrinks(t *testing.T) {
	var inner time.Duration
	stats := &Stats{}
	inv := Build(func(ctx context.Context, call *Call) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatal("no deadline inside budget")
		}
		inner = time.Until(dl)
		return nil
	}, DeadlineBudget(BudgetConfig{Fraction: 0.5, Stats: stats}))

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := inv(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
	if inner <= 0 || inner > 600*time.Millisecond {
		t.Fatalf("budget = %v, want ~500ms", inner)
	}
	if stats.DeadlineTruncated.Value() != 1 {
		t.Fatalf("DeadlineTruncated = %d", stats.DeadlineTruncated.Value())
	}
}

func TestDeadlineBudgetFailsFastWhenSpent(t *testing.T) {
	stats := &Stats{}
	called := false
	inv := Build(func(ctx context.Context, call *Call) error {
		called = true
		return nil
	}, DeadlineBudget(BudgetConfig{Floor: 10 * time.Millisecond, Stats: stats}))

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := inv(ctx, NewCall("svc", "M", nil))
	if !IsCode(err, CodeDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want CodeDeadline wrapping DeadlineExceeded", err)
	}
	if called {
		t.Fatal("doomed call was still issued")
	}
	if stats.DeadlineExhausted.Value() != 1 {
		t.Fatalf("DeadlineExhausted = %d", stats.DeadlineExhausted.Value())
	}
}

func TestDeadlineBudgetDefault(t *testing.T) {
	inv := Build(func(ctx context.Context, call *Call) error {
		if _, ok := ctx.Deadline(); !ok {
			t.Fatal("Default did not install a deadline")
		}
		return nil
	}, DeadlineBudget(BudgetConfig{Default: time.Second}))
	if err := inv(context.Background(), NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestRetrySucceedsAfterTransportFailures(t *testing.T) {
	stats := &Stats{}
	var attempts atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		if attempts.Add(1) < 3 {
			return errors.New("conn lost")
		}
		call.Reply = []byte("ok")
		return nil
	}, Retry(RetryConfig{Attempts: 3, BaseDelay: time.Microsecond, Stats: stats}))

	call := NewCall("svc", "M", nil)
	if err := inv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	if string(call.Reply) != "ok" {
		t.Fatalf("reply = %q, want ok (copied from the winning attempt)", call.Reply)
	}
	if got := stats.Retries.Value(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestRetryStopsOnApplicationError(t *testing.T) {
	var attempts atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		attempts.Add(1)
		return Errorf(CodeNotFound, "nope")
	}, Retry(RetryConfig{Attempts: 5, BaseDelay: time.Microsecond}))
	if err := inv(context.Background(), NewCall("svc", "M", nil)); !IsCode(err, CodeNotFound) {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (application errors must not retry)", attempts.Load())
	}
}

func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	stats := &Stats{}
	var attempts atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		attempts.Add(1)
		return errors.New("down")
	}, Retry(RetryConfig{Attempts: 2, BaseDelay: time.Microsecond, BudgetRatio: 0.1, BudgetBurst: 3, Stats: stats}))

	// Never a success, so the bucket starts at burst (3) and never refills:
	// only the first 3 calls may retry.
	for i := 0; i < 10; i++ {
		inv(context.Background(), NewCall("svc", "M", nil)) //nolint:errcheck
	}
	if got := stats.Retries.Value(); got != 3 {
		t.Fatalf("Retries = %d, want 3 (budget-capped)", got)
	}
	if got := stats.RetryBudgetExhausted.Value(); got != 7 {
		t.Fatalf("RetryBudgetExhausted = %d, want 7", got)
	}
	if attempts.Load() != 13 {
		t.Fatalf("attempts = %d, want 13", attempts.Load())
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	stats := &Stats{}
	var mode atomic.Int32 // 0 = fail, 1 = succeed
	inv := Build(func(ctx context.Context, call *Call) error {
		if mode.Load() == 0 {
			return errors.New("down")
		}
		return nil
	}, Breaker(BreakerConfig{Failures: 3, Cooldown: time.Second, Probes: 2, Stats: stats, now: clock}))

	ctx := context.Background()
	// Trip it: 3 consecutive failures.
	for i := 0; i < 3; i++ {
		if err := inv(ctx, NewCall("svc", "M", nil)); err == nil {
			t.Fatal("want failure")
		}
	}
	if stats.BreakerOpened.Value() != 1 {
		t.Fatalf("BreakerOpened = %d", stats.BreakerOpened.Value())
	}
	// Open: rejects instantly with a retryable CodeUnavailable.
	err := inv(ctx, NewCall("svc", "M", nil))
	if !IsBreakerOpen(err) || !IsCode(err, CodeUnavailable) || !Retryable(err) {
		t.Fatalf("open-state err = %v", err)
	}
	if stats.BreakerRejected.Value() != 1 {
		t.Fatalf("BreakerRejected = %d", stats.BreakerRejected.Value())
	}

	// After cooldown: half-open admits probes; server recovered.
	now = now.Add(2 * time.Second)
	mode.Store(1)
	if err := inv(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if stats.BreakerHalfOpened.Value() != 1 {
		t.Fatalf("BreakerHalfOpened = %d", stats.BreakerHalfOpened.Value())
	}
	if err := inv(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if stats.BreakerClosed.Value() != 1 {
		t.Fatalf("BreakerClosed = %d (two probe successes should close)", stats.BreakerClosed.Value())
	}
	// Closed again: calls flow.
	if err := inv(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	stats := &Stats{}
	inv := Build(func(ctx context.Context, call *Call) error {
		return errors.New("still down")
	}, Breaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Stats: stats, now: clock}))

	ctx := context.Background()
	inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // trips
	now = now.Add(2 * time.Second)
	inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // failed probe re-trips
	if stats.BreakerOpened.Value() != 2 {
		t.Fatalf("BreakerOpened = %d, want 2", stats.BreakerOpened.Value())
	}
	if !IsBreakerOpen(inv(ctx, NewCall("svc", "M", nil))) {
		t.Fatal("breaker should be open again")
	}
}

func TestBreakerSlowCallCountsAsFailure(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	stats := &Stats{}
	inv := Build(func(ctx context.Context, call *Call) error {
		advance(10 * time.Millisecond) // slower than the threshold, but succeeds
		return nil
	}, Breaker(BreakerConfig{Failures: 2, SlowThreshold: time.Millisecond, Stats: stats, now: clock}))

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := inv(ctx, NewCall("svc", "M", nil)); err != nil {
			t.Fatal(err)
		}
	}
	if stats.BreakerOpened.Value() != 1 {
		t.Fatal("slow-but-successful calls should trip the breaker")
	}
}

func TestHedgeRescuesSlowPrimary(t *testing.T) {
	stats := &Stats{}
	var calls atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		if calls.Add(1) == 1 {
			// Slow primary: parks until canceled by the hedge's win.
			<-ctx.Done()
			return WrapCode(CodeDeadline, ctx.Err(), "canceled: %v", ctx.Err())
		}
		call.Reply = []byte("from-hedge")
		return nil
	}, Hedge(HedgeConfig{Delay: time.Millisecond, Stats: stats}))

	call := NewCall("svc", "M", nil)
	if err := inv(context.Background(), call); err != nil {
		t.Fatal(err)
	}
	if string(call.Reply) != "from-hedge" {
		t.Fatalf("reply = %q", call.Reply)
	}
	if stats.Hedges.Value() != 1 || stats.HedgeWins.Value() != 1 {
		t.Fatalf("Hedges = %d, HedgeWins = %d, want 1/1", stats.Hedges.Value(), stats.HedgeWins.Value())
	}
}

func TestHedgeAllAttemptsFailReturnsFirstError(t *testing.T) {
	first := errors.New("primary down")
	var calls atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		if calls.Add(1) == 1 {
			return first
		}
		return errors.New("hedge down too")
	}, Hedge(HedgeConfig{Delay: time.Nanosecond}))
	// The primary fails instantly; no hedge needs to launch for the error to
	// surface, but either way the first error wins.
	if err := inv(context.Background(), NewCall("svc", "M", nil)); !errors.Is(err, first) {
		t.Fatalf("err = %v, want %v", err, first)
	}
}

func TestResilienceStackWiring(t *testing.T) {
	cfg := NewResilience()
	if len(cfg.Stack()) != 3 {
		t.Fatalf("Stack = %d middlewares, want 3", len(cfg.Stack()))
	}
	if len(cfg.BackendMiddleware()) != 1 {
		t.Fatalf("BackendMiddleware = %d, want 1", len(cfg.BackendMiddleware()))
	}
	cfg.Hedge = nil
	cfg.Breaker = nil
	if len(cfg.Stack()) != 2 || len(cfg.BackendMiddleware()) != 0 {
		t.Fatal("nil sub-configs should disable their middleware")
	}
}

func TestDelayHonorsContext(t *testing.T) {
	inv := Build(func(ctx context.Context, call *Call) error {
		t.Fatal("canceled call reached the terminal")
		return nil
	}, Delay(time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := inv(ctx, NewCall("svc", "M", nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestBreakerOutrunAttribution is the slow-replica attribution contract: a
// canceled call charges the breaker only when the cancellation is a direct
// hedge loss (a sibling outran it); a cancellation from further up the
// chain is neutral, however slow the call looked.
func TestBreakerOutrunAttribution(t *testing.T) {
	// Neutral: parent cancel, no hedge involved.
	stats := &Stats{}
	parked := Build(func(ctx context.Context, call *Call) error {
		<-ctx.Done()
		return ctx.Err()
	}, Breaker(BreakerConfig{Failures: 1, SlowThreshold: time.Millisecond, Stats: stats}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if err := parked(ctx, NewCall("svc", "M", nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if stats.BreakerOpened.Value() != 0 {
		t.Fatal("ancestor cancellation must not charge the breaker")
	}

	// Charged: the same slow call loses to a sibling hedge attempt.
	stats = &Stats{}
	var calls atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	},
		Hedge(HedgeConfig{Delay: 5 * time.Millisecond, Stats: stats}),
		Breaker(BreakerConfig{Failures: 1, SlowThreshold: time.Millisecond, Stats: stats}))
	if err := inv(context.Background(), NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
	// The loser records asynchronously after the hedge returns.
	deadline := time.Now().Add(2 * time.Second)
	for stats.BreakerOpened.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("outrun loser never charged the breaker")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerNeutralDeadline checks the mid-chain tuning: CodeDeadline
// outcomes neither charge the breaker nor clear its failure streak.
func TestBreakerNeutralDeadline(t *testing.T) {
	stats := &Stats{}
	var mode atomic.Int32 // 0 = deadline error, 1 = transport error
	inv := Build(func(ctx context.Context, call *Call) error {
		if mode.Load() == 0 {
			return Errorf(CodeDeadline, "budget spent downstream")
		}
		return errors.New("conn reset")
	}, Breaker(BreakerConfig{Failures: 2, NeutralDeadline: true, Stats: stats}))

	ctx := context.Background()
	mode.Store(1)
	inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // failure 1 of 2
	mode.Store(0)
	for i := 0; i < 5; i++ {
		inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // neutral
	}
	if stats.BreakerOpened.Value() != 0 {
		t.Fatal("neutralized deadlines must not charge the breaker")
	}
	mode.Store(1)
	inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // failure 2 of 2
	if stats.BreakerOpened.Value() != 1 {
		t.Fatal("deadline outcomes must not clear the failure streak either")
	}
}

// TestBreakerEjectionCapSharedLedger: replicas built through BackendFactory
// share an ejection ledger; with MaxEjected 1 the second breaker cannot
// trip while the first holds the slot, and claims it once the first closes.
func TestBreakerEjectionCapSharedLedger(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	stats := &Stats{}
	cfg := &ResilienceConfig{
		Breaker: &BreakerConfig{Failures: 1, Cooldown: time.Second, MaxEjected: 1, now: clock},
		Stats:   stats,
	}
	factory := cfg.BackendFactory()
	var aDown, bDown atomic.Bool
	mk := func(down *atomic.Bool, mws []Middleware) Invoker {
		return Build(func(ctx context.Context, call *Call) error {
			if down.Load() {
				return errors.New("down")
			}
			return nil
		}, mws...)
	}
	invA, invB := mk(&aDown, factory("a")), mk(&bDown, factory("b"))

	ctx := context.Background()
	aDown.Store(true)
	bDown.Store(true)
	invA(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // trips A
	if stats.BreakerOpened.Value() != 1 {
		t.Fatalf("BreakerOpened = %d, want 1", stats.BreakerOpened.Value())
	}
	// B fails repeatedly but the target is at its ejection cap: it must stay
	// closed and keep admitting calls rather than rejecting.
	for i := 0; i < 3; i++ {
		if err := invB(ctx, NewCall("svc", "M", nil)); IsBreakerOpen(err) {
			t.Fatal("capped breaker must not reject")
		}
	}
	if stats.BreakerOpened.Value() != 1 {
		t.Fatal("second trip should have been blocked by the ejection cap")
	}
	// A recovers and closes on its half-open probe, freeing the slot; B's
	// next failure claims it.
	aDown.Store(false)
	now = now.Add(2 * time.Second)
	if err := invA(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	invB(ctx, NewCall("svc", "M", nil)) //nolint:errcheck // trips B
	if stats.BreakerOpened.Value() != 2 {
		t.Fatalf("BreakerOpened = %d, want 2 after slot freed", stats.BreakerOpened.Value())
	}
	if !IsBreakerOpen(invB(ctx, NewCall("svc", "M", nil))) {
		t.Fatal("B should now be open")
	}
}

// TestHedgeBudgetFractionDelay: with a deadline on the context, the hedge
// delay scales to BudgetFraction of the remaining budget instead of the
// static floor, so a moderately slow call under a generous deadline does
// not hedge at all.
func TestHedgeBudgetFractionDelay(t *testing.T) {
	mkInv := func(stats *Stats) Invoker {
		return Build(func(ctx context.Context, call *Call) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		}, Hedge(HedgeConfig{Delay: time.Millisecond, BudgetFraction: 0.5, Stats: stats}))
	}

	stats := &Stats{}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if err := mkInv(stats)(ctx, NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
	if stats.Hedges.Value() != 0 {
		t.Fatalf("Hedges = %d; 20ms < half of a 400ms budget, must not hedge", stats.Hedges.Value())
	}

	// No deadline: the static floor applies and the same call hedges.
	stats = &Stats{}
	if err := mkInv(stats)(context.Background(), NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
	if stats.Hedges.Value() == 0 {
		t.Fatal("without a deadline the 1ms floor should have hedged")
	}
}

// An admission-control shed (CodeOverloaded) is retryable — another replica
// may have capacity — but must not consume retry-budget tokens: the shedding
// replica did no work, so the retry adds no amplification. If sheds drained
// the bucket, clients of an overloaded tier would lose the very tokens they
// need to route around real failures.
func TestRetryOverloadShedDoesNotConsumeBudget(t *testing.T) {
	stats := &Stats{}
	var attempts atomic.Int64
	inv := Build(func(ctx context.Context, call *Call) error {
		if attempts.Add(1)%2 == 1 {
			return Errorf(CodeOverloaded, "queue full")
		}
		return nil
	}, Retry(RetryConfig{Attempts: 3, BaseDelay: time.Microsecond, BudgetRatio: 0.001, BudgetBurst: 1, Stats: stats}))

	// Every call sheds once then succeeds on the free retry. With a burst of
	// 1 and a negligible refill ratio, a budget-charged retry path could
	// afford roughly one retry total; the shed-exempt path affords them all.
	for i := 0; i < 10; i++ {
		if err := inv(context.Background(), NewCall("svc", "M", nil)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := stats.Retries.Value(); got != 10 {
		t.Fatalf("Retries = %d, want 10 (sheds retry for free)", got)
	}
	if got := stats.RetryBudgetExhausted.Value(); got != 0 {
		t.Fatalf("RetryBudgetExhausted = %d, want 0", got)
	}

	// Transport failures still pay: same shape, but the budget gates them.
	stats = &Stats{}
	var n atomic.Int64
	inv = Build(func(ctx context.Context, call *Call) error {
		if n.Add(1)%2 == 1 {
			return errors.New("conn lost")
		}
		return nil
	}, Retry(RetryConfig{Attempts: 3, BaseDelay: time.Microsecond, BudgetRatio: 0.001, BudgetBurst: 1, Stats: stats}))
	for i := 0; i < 10; i++ {
		inv(context.Background(), NewCall("svc", "M", nil)) //nolint:errcheck
	}
	if got := stats.RetryBudgetExhausted.Value(); got == 0 {
		t.Fatal("transport failures must still consume the retry budget")
	}
}

// A replica that sheds under admission control is healthy — the breaker must
// not accumulate sheds and eject it, or an overloaded tier would lose its
// remaining capacity to its own self-protection.
func TestBreakerIgnoresOverloadShed(t *testing.T) {
	stats := &Stats{}
	var mode atomic.Int32 // 0 = shed, 1 = hard failure
	inv := Build(func(ctx context.Context, call *Call) error {
		if mode.Load() == 0 {
			return Errorf(CodeOverloaded, "no deadline budget")
		}
		return Errorf(CodeUnavailable, "down")
	}, Breaker(BreakerConfig{Failures: 3, Stats: stats}))

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := inv(ctx, NewCall("svc", "M", nil)); !IsCode(err, CodeOverloaded) {
			t.Fatalf("call %d: err = %v, want the shed to pass through", i, err)
		}
	}
	if got := stats.BreakerOpened.Value(); got != 0 {
		t.Fatalf("BreakerOpened = %d after 20 sheds, want 0", got)
	}

	// Real unavailability still trips it.
	mode.Store(1)
	for i := 0; i < 3; i++ {
		inv(ctx, NewCall("svc", "M", nil)) //nolint:errcheck
	}
	if err := inv(ctx, NewCall("svc", "M", nil)); !IsBreakerOpen(err) {
		t.Fatalf("err = %v, want breaker open after real failures", err)
	}
}

// The overload code is retryable at another replica but never a failure
// signal, and it survives a wrap.
func TestOverloadClassification(t *testing.T) {
	err := Errorf(CodeOverloaded, "shed")
	if !Retryable(err) {
		t.Fatal("CodeOverloaded must be retryable (a peer may have capacity)")
	}
	if FailureSignal(err) {
		t.Fatal("CodeOverloaded must not be a failure signal (the replica is healthy)")
	}
	wrapped := fmt.Errorf("hop: %w", err)
	if !IsCode(wrapped, CodeOverloaded) || !Retryable(wrapped) || FailureSignal(wrapped) {
		t.Fatalf("wrapped shed misclassified: %v", wrapped)
	}
}

func TestBreakerWithProbeReportsState(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	mw, probe := BreakerWithProbe(BreakerConfig{Failures: 1, Cooldown: time.Second, now: clock})
	var mode atomic.Int32 // 0 = fail, 1 = succeed
	inv := Build(func(ctx context.Context, call *Call) error {
		if mode.Load() == 0 {
			return errors.New("down")
		}
		return nil
	}, mw)

	if got := probe(); got != "closed" {
		t.Fatalf("initial state = %q", got)
	}
	inv(context.Background(), NewCall("svc", "M", nil)) //nolint:errcheck
	if got := probe(); got != "open" {
		t.Fatalf("state after trip = %q", got)
	}
	now = now.Add(2 * time.Second)
	mode.Store(1)
	if err := inv(context.Background(), NewCall("svc", "M", nil)); err != nil {
		t.Fatal(err)
	}
	if got := probe(); got != "closed" {
		t.Fatalf("state after probe success = %q", got)
	}
}
