package dsb

import (
	"fmt"

	"dsb/internal/core"
	"dsb/internal/graph"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/media"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/services/swarm"
)

// Version identifies the suite release.
const Version = "1.0.0"

// AppInfo describes one end-to-end application in the suite.
type AppInfo struct {
	// Name is the identifier used by cmd/dsbload and the experiments.
	Name string
	// Description summarizes the application's scope.
	Description string
	// Protocols lists the inter-service communication styles.
	Protocols string
}

// Apps enumerates the suite's end-to-end applications, in paper order.
func Apps() []AppInfo {
	return []AppInfo{
		{"social", "broadcast-style social network with uni-directional follows", "REST+RPC"},
		{"media", "movie browsing, reviewing, renting, and streaming", "REST+RPC"},
		{"ecommerce", "Sockshop-style store with a serialized order pipeline", "REST+RPC"},
		{"banking", "payments, lending, mortgages, cards, wealth management", "RPC"},
		{"swarm", "drone-swarm coordination, edge and cloud placements", "REST+RPC"},
	}
}

// Boot starts the named application on a fresh in-memory deployment and
// returns the composition root (close it when done) plus an app-specific
// handle: *socialnetwork.SocialNetwork, *media.Media, *ecommerce.Ecommerce,
// *banking.Banking, or *swarm.Swarm.
func Boot(name string) (*core.App, any, error) {
	app := core.NewApp(name, core.Options{})
	var handle any
	var err error
	switch name {
	case "social":
		handle, err = socialnetwork.New(app, socialnetwork.Config{})
	case "media":
		handle, err = media.New(app, media.Config{})
	case "ecommerce":
		handle, err = ecommerce.New(app, ecommerce.Config{})
	case "banking":
		handle, err = banking.New(app, banking.Config{})
	case "swarm":
		handle, err = swarm.New(app, swarm.Config{})
	default:
		err = fmt.Errorf("dsb: unknown application %q", name)
	}
	if err != nil {
		app.Close()
		return nil, nil, err
	}
	return app, handle, nil
}

// Topology returns the simulation dependency graph for the named
// application (the input to the evaluation stack).
func Topology(name string) (*graph.App, error) {
	switch name {
	case "social":
		return graph.SocialNetwork(), nil
	case "media":
		return graph.MediaService(), nil
	case "ecommerce":
		return graph.Ecommerce(), nil
	case "banking":
		return graph.Banking(), nil
	case "swarm":
		return graph.SwarmCloud(), nil
	default:
		return nil, fmt.Errorf("dsb: unknown application %q", name)
	}
}
