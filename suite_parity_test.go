package dsb_test

import (
	"context"
	"testing"
	"time"

	"dsb/internal/core"
	"dsb/internal/services/banking"
	"dsb/internal/services/ecommerce"
	"dsb/internal/services/media"
	"dsb/internal/services/socialnetwork"
	"dsb/internal/services/swarm"
	"dsb/internal/shard"
)

const (
	parityShards   = 2
	parityReplicas = 2
	parityLeaseTTL = 150 * time.Millisecond
)

// TestSuiteParity boots each of the five applications through the shared
// svcutil.Stack wiring — sharded stateful tiers (2x2) under registry
// health leases — and asserts the live-stack invariants every app now
// shares: shard labels in the registry metadata, lease heartbeats keeping
// the serving set alive across several TTLs, and a Degraded flag that is
// present and false on a healthy probe of the app's degradable read.
func TestSuiteParity(t *testing.T) {
	cases := []struct {
		name string
		// storeTier is one representative sharded stateful tier.
		storeTier string
		// boot starts the app on the shared registry and returns a healthy
		// probe of the degradable read, reporting its Degraded flag.
		boot func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error)
	}{
		{
			name:      "social",
			storeTier: "social.db-posts",
			boot: func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error) {
				sn, err := socialnetwork.New(app, socialnetwork.Config{
					Shards: parityShards, ShardReplicas: parityReplicas,
				})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				return func(ctx context.Context) (bool, error) {
					var resp socialnetwork.ReadTimelineResp
					err := sn.ReadTimeline.Call(ctx, "Read", socialnetwork.ReadTimelineReq{User: "nobody", Limit: 5}, &resp)
					return resp.Degraded, err
				}
			},
		},
		{
			name:      "media",
			storeTier: "media.db-reviews",
			boot: func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error) {
				md, err := media.New(app, media.Config{
					Shards: parityShards, ShardReplicas: parityReplicas,
				})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				if err := md.SeedMovie(media.Movie{ID: "mv-1", Title: "Heat", Year: 1995, Genre: "crime"},
					"a heist crew and a detective circle each other",
					[]media.CastMember{{MovieID: "mv-1", Actor: "A. Actor", Role: "lead"}}, nil); err != nil {
					t.Fatalf("seed: %v", err)
				}
				return func(ctx context.Context) (bool, error) {
					var page media.MoviePage
					err := md.Frontend.Do(ctx, "GET", "/movies/Heat", nil, &page)
					return page.Degraded, err
				}
			},
		},
		{
			name:      "ecommerce",
			storeTier: "ecom.db-catalogue",
			boot: func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error) {
				ec, err := ecommerce.New(app, ecommerce.Config{
					Shards: parityShards, ShardReplicas: parityReplicas,
				})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				t.Cleanup(ec.Close)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := ec.User.Call(ctx, "Register", ecommerce.RegisterUserReq{Username: "pat", Password: "pw"}, nil); err != nil {
					t.Fatalf("seed: %v", err)
				}
				var login ecommerce.LoginResp
				if err := ec.User.Call(ctx, "Login", ecommerce.LoginReq{Username: "pat", Password: "pw"}, &login); err != nil {
					t.Fatalf("seed: %v", err)
				}
				return func(ctx context.Context) (bool, error) {
					var rec ecommerce.RecommendationsBody
					err := ec.Frontend.Do(ctx, "GET", "/recommend?token="+login.Token, nil, &rec)
					return rec.Degraded, err
				}
			},
		},
		{
			name:      "banking",
			storeTier: "bank.db-accounts",
			boot: func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error) {
				bk, err := banking.New(app, banking.Config{
					Shards: parityShards, ShardReplicas: parityReplicas,
				})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				token, _, err := bk.Onboard("pat", 9_000_000, 120_000)
				if err != nil {
					t.Fatalf("seed: %v", err)
				}
				return func(ctx context.Context) (bool, error) {
					var sum banking.SummaryBody
					err := bk.Frontend.Do(ctx, "GET", "/summary?token="+token, nil, &sum)
					return sum.Degraded, err
				}
			},
		},
		{
			name:      "swarm",
			storeTier: "swarm.db-telemetry",
			boot: func(t *testing.T, app *core.App) func(ctx context.Context) (bool, error) {
				sw, err := swarm.New(app, swarm.Config{
					Placement: swarm.Edge, Drones: 1, WorldSize: 16, Seed: 11,
					WifiRTT: 200 * time.Microsecond,
					Shards:  parityShards, ShardReplicas: parityReplicas,
				})
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				// Deterministic target pick: smallest (Y, X).
				var target swarm.Point
				first := true
				for p := range sw.World.Targets {
					if first || p.Y < target.Y || (p.Y == target.Y && p.X < target.X) {
						target = p
						first = false
					}
				}
				if first {
					t.Fatal("world has no targets")
				}
				return func(ctx context.Context) (bool, error) {
					res, err := sw.Drones[0].FlyTo(ctx, target)
					return res.Degraded, err
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := core.NewApp("parity-"+tc.name, core.Options{LeaseTTL: parityLeaseTTL})
			t.Cleanup(func() { app.Close() })
			probe := tc.boot(t, app)

			// Shard metadata: the stateful tier runs shards x replicas
			// instances, every one labelled with its shard index, each
			// label carried by exactly one replica set.
			want := parityShards * parityReplicas
			instances := app.Registry.Instances(tc.storeTier)
			if len(instances) != want {
				t.Fatalf("%s has %d instances, want %d", tc.storeTier, len(instances), want)
			}
			labels := make(map[string]int)
			for _, inst := range instances {
				label, ok := inst.Meta[shard.MetaShard]
				if !ok || label == "" {
					t.Fatalf("instance %s carries no %s metadata", inst.Addr, shard.MetaShard)
				}
				labels[label]++
			}
			if len(labels) != parityShards {
				t.Fatalf("%s shard labels = %v, want %d distinct", tc.storeTier, labels, parityShards)
			}
			for label, n := range labels {
				if n != parityReplicas {
					t.Fatalf("shard %s has %d replicas, want %d", label, n, parityReplicas)
				}
			}

			// Lease heartbeats: the serving set survives several TTLs —
			// an instance that stopped renewing would have been evicted.
			time.Sleep(3 * parityLeaseTTL)
			if got := len(app.Registry.Lookup(tc.storeTier)); got != want {
				t.Fatalf("after 3x lease TTL %s serves %d addrs, want %d (heartbeat lapsed)", tc.storeTier, got, want)
			}

			// Degradation flag: present on the degradable read and false
			// while every dependency is healthy.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			degraded, err := probe(ctx)
			if err != nil {
				t.Fatalf("healthy probe: %v", err)
			}
			if degraded {
				t.Fatal("healthy probe reported Degraded")
			}
		})
	}
}
