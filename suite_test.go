package dsb_test

import (
	"testing"

	"dsb"
	"dsb/internal/services/socialnetwork"
)

func TestAppsEnumeration(t *testing.T) {
	apps := dsb.Apps()
	if len(apps) != 5 {
		t.Fatalf("apps = %d", len(apps))
	}
	for _, a := range apps {
		if a.Name == "" || a.Description == "" || a.Protocols == "" {
			t.Fatalf("incomplete app info: %+v", a)
		}
		if _, err := dsb.Topology(a.Name); err != nil {
			t.Fatalf("topology %s: %v", a.Name, err)
		}
	}
	if _, err := dsb.Topology("ghost"); err == nil {
		t.Fatal("ghost topology resolved")
	}
}

func TestBootEveryApp(t *testing.T) {
	for _, info := range dsb.Apps() {
		app, handle, err := dsb.Boot(info.Name)
		if err != nil {
			t.Fatalf("boot %s: %v", info.Name, err)
		}
		if handle == nil {
			t.Fatalf("boot %s: nil handle", info.Name)
		}
		if len(app.Registry.Services()) == 0 {
			t.Fatalf("boot %s: empty registry", info.Name)
		}
		if info.Name == "social" {
			if _, ok := handle.(*socialnetwork.SocialNetwork); !ok {
				t.Fatalf("social handle has type %T", handle)
			}
		}
		app.Close()
	}
	if _, _, err := dsb.Boot("ghost"); err == nil {
		t.Fatal("ghost app booted")
	}
}
